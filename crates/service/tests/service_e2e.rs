//! End-to-end service tests against a real daemon on an ephemeral
//! port: report parity with a local scan, typed rejection of every
//! malformed-input class, deterministic admission-control behavior,
//! and graceful drain.
//!
//! Parity is the headline guarantee: a report fetched through the
//! protocol must be **byte-identical** — serialized mismatches and the
//! full meter — to what `saintdroid scan` (a plain local
//! `SaintDroid::run`) produces for the same `.sapk` bytes. Timing
//! fields naturally differ and are excluded, exactly as in the batch
//! engine's parity suite.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_ir::{codec, Apk};
use saint_service::{Client, ClientError, ServerConfig};
use saintdroid::{Report, SaintDroid, ScanEngine};

fn corpus_and_framework() -> (Vec<Apk>, Arc<AndroidFramework>) {
    let mut cfg = RealWorldConfig::small();
    cfg.apps = 8;
    let fw = Arc::new(AndroidFramework::with_scale(&cfg.synth));
    let corpus = RealWorldCorpus::new(cfg);
    let apks = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
    (apks, fw)
}

fn start_server(fw: &Arc<AndroidFramework>, cfg: &ServerConfig) -> saint_service::ServerHandle {
    let engine = ScanEngine::new(Arc::clone(fw));
    engine.prewarm();
    saint_service::start(engine, cfg).expect("bind ephemeral port")
}

fn ephemeral(mut cfg: ServerConfig) -> ServerConfig {
    cfg.listen = "127.0.0.1:0".to_string();
    cfg
}

#[test]
fn submitted_reports_are_byte_identical_to_local_scan() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            jobs: 2,
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();

    let local_tool = SaintDroid::new(Arc::clone(&fw));
    let mut client = Client::connect(&addr).expect("connect");
    for apk in &apks {
        let sapk = codec::encode_apk(apk);
        let response = client
            .scan_sapk(&sapk, Some(120_000))
            .expect("scan succeeds");
        let local: Report = local_tool.run(apk);

        assert_eq!(response.report.package, local.package);
        // Byte-identical findings: compare the serialized form, not
        // just structural equality.
        assert_eq!(
            serde_json::to_string(&response.report.mismatches).unwrap(),
            serde_json::to_string(&local.mismatches).unwrap(),
            "{}: service findings diverged from local scan",
            local.package
        );
        assert_eq!(
            serde_json::to_string(&response.report.meter).unwrap(),
            serde_json::to_string(&local.meter).unwrap(),
            "{}: service meter diverged from local scan",
            local.package
        );
        // The response mirrors the CLI exit-code contract.
        let expected_code = if local.is_clean() { 0 } else { 2 };
        assert_eq!(response.exit_code, expected_code);
    }

    // The warm engine actually shared framework work across requests.
    let status = client.status().expect("status");
    assert_eq!(status.jobs_served, apks.len() as u64);
    let class = status.class_cache.expect("warm engine carries a cache");
    assert!(
        class.hits > 0,
        "8 similar apps through one warm engine must hit the class cache"
    );

    client.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn malformed_inputs_get_typed_errors_and_daemon_survives() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(&fw, &ephemeral(ServerConfig::default()));
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Not JSON at all.
    let raw = client.raw_roundtrip("this is not json").expect("reply");
    assert!(raw.contains("\"malformed\""), "{raw}");
    // JSON, but not a protocol message.
    let raw = client.raw_roundtrip("[1,2,3]").expect("reply");
    assert!(raw.contains("\"malformed\""), "{raw}");
    // Unknown kind.
    let raw = client
        .raw_roundtrip(r#"{"v":1,"kind":"frobnicate"}"#)
        .expect("reply");
    assert!(raw.contains("\"malformed\""), "{raw}");
    // Wrong protocol version.
    let raw = client
        .raw_roundtrip(r#"{"v":99,"kind":"status"}"#)
        .expect("reply");
    assert!(raw.contains("\"unsupported_version\""), "{raw}");
    // Scan with invalid base64.
    let raw = client
        .raw_roundtrip(r#"{"v":1,"kind":"scan","package_b64":"!!!not-base64!!!"}"#)
        .expect("reply");
    assert!(raw.contains("\"bad_package\""), "{raw}");
    // Scan with valid base64 that is not a SAPK container.
    let garbage = saint_service::protocol::base64_encode(b"definitely not a sapk");
    let raw = client
        .raw_roundtrip(&format!(
            r#"{{"v":1,"kind":"scan","package_b64":"{garbage}"}}"#
        ))
        .expect("reply");
    assert!(raw.contains("\"bad_package\""), "{raw}");

    // After all that abuse, the same connection still serves a real
    // scan.
    let sapk = codec::encode_apk(&apks[0]);
    let response = client.scan_sapk(&sapk, Some(120_000)).expect("scan");
    assert_eq!(response.report.package, apks[0].manifest.package);

    let mut admin = Client::connect(&addr).expect("connect");
    admin.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn oversized_request_is_rejected_without_killing_daemon() {
    let (apks, fw) = corpus_and_framework();
    // A deliberately tiny line limit so a real package blows past it.
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            max_line_bytes: 512,
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let sapk = codec::encode_apk(&apks[0]);
    assert!(
        sapk.len() > 512,
        "test premise: the package exceeds the limit"
    );
    match client.scan_sapk(&sapk, Some(120_000)) {
        Err(ClientError::Rejected(err)) => assert_eq!(err.code, "too_large"),
        other => panic!("expected too_large rejection, got {other:?}"),
    }

    // The oversized line cost that connection its framing, but the
    // daemon is alive: a fresh connection serves status fine.
    let mut fresh = Client::connect(&addr).expect("reconnect");
    let status = fresh.status().expect("status after oversized request");
    assert_eq!(status.jobs_served, 0);

    fresh.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn zero_depth_queue_rejects_with_busy() {
    let (apks, fw) = corpus_and_framework();
    // queue_depth 0 closes admission entirely: every scan is a
    // deterministic `busy` — the typed burst-overflow response.
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            jobs: 1,
            queue_depth: 0,
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let sapk = codec::encode_apk(&apks[0]);
    match client.scan_sapk(&sapk, Some(120_000)) {
        Err(ClientError::Rejected(err)) => assert_eq!(err.code, "busy"),
        other => panic!("expected busy rejection, got {other:?}"),
    }
    let status = client.status().expect("daemon alive after rejection");
    assert_eq!(status.rejected_busy, 1);
    assert_eq!(status.queue_capacity, 0);

    client.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn concurrent_burst_never_kills_daemon_and_every_reply_is_typed() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            jobs: 1,
            queue_depth: 2,
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();

    // 8 concurrent submissions against one worker and two queue slots:
    // some succeed, overflow gets `busy` — never a hang, never a dead
    // daemon.
    let outcomes: Vec<&'static str> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                let apk = &apks[i % apks.len()];
                s.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let sapk = codec::encode_apk(apk);
                    match client.scan_sapk(&sapk, Some(120_000)) {
                        Ok(_) => "scan",
                        Err(ClientError::Rejected(err)) if err.code == "busy" => "busy",
                        Err(other) => panic!("untyped burst outcome: {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let served = outcomes.iter().filter(|o| **o == "scan").count();
    assert!(served >= 1, "at least one burst member must be served");

    let mut client = Client::connect(&addr).expect("connect");
    let status = client.status().expect("daemon alive after burst");
    assert_eq!(status.jobs_served, served as u64);

    client.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn zero_deadline_times_out_with_typed_error() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(&fw, &ephemeral(ServerConfig::default()));
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let sapk = codec::encode_apk(&apks[0]);
    match client.scan_sapk(&sapk, Some(0)) {
        Err(ClientError::Rejected(err)) => assert_eq!(err.code, "timeout"),
        other => panic!("expected timeout rejection, got {other:?}"),
    }
    // The daemon survives the expired deadline and keeps serving.
    let response = client.scan_sapk(&sapk, Some(120_000)).expect("scan");
    assert_eq!(response.report.package, apks[0].manifest.package);

    client.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn metrics_request_reports_warm_cache_and_drained_queue() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            jobs: 2,
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // First scan: cold caches populate, registry starts counting.
    let sapk = codec::encode_apk(&apks[0]);
    client.scan_sapk(&sapk, Some(120_000)).expect("first scan");
    let cold = client.metrics().expect("metrics after first scan");
    assert_eq!(cold.counter("apps_scanned"), Some(1));

    // Second scan of the same package: warm path. The class cache must
    // show hits, and every cache lookup is exactly one hit or miss.
    client.scan_sapk(&sapk, Some(120_000)).expect("second scan");
    let warm = client.metrics().expect("metrics after second scan");
    assert_eq!(warm.counter("apps_scanned"), Some(2));
    let class = warm
        .class_cache
        .as_ref()
        .expect("warm engine carries a cache");
    assert!(
        class.hits > 0,
        "second scan of the same package must hit the class cache"
    );
    assert_eq!(class.hits + class.misses, class.lookups);

    // One scan_total span per job served, and the queue is fully
    // drained: depth and active both back to zero.
    let scan_total = warm.phase("scan_total").expect("phase always present");
    assert_eq!(scan_total.count, 2);
    assert!(scan_total.total_ns > 0);
    let queue = warm.queue.as_ref().expect("daemon reports its queue");
    assert_eq!(queue.depth, 0, "queue must be drained after replies");
    assert_eq!(queue.active, 0, "no job may still be running");
    assert_eq!(queue.served, 2);

    // Counters only ever grow across requests.
    for (c0, c1) in cold.counters.iter().zip(&warm.counters) {
        assert_eq!(c0.name, c1.name);
        assert!(c1.value >= c0.value, "counter {} went backwards", c0.name);
    }

    // Wrong protocol version on a metrics request: typed error, daemon
    // stays up and keeps answering versioned metrics requests.
    let raw = client
        .raw_roundtrip(r#"{"v":99,"kind":"metrics"}"#)
        .expect("reply");
    assert!(raw.contains("\"unsupported_version\""), "{raw}");
    let after = client.metrics().expect("daemon alive after bad version");
    assert_eq!(after.counter("apps_scanned"), Some(2));

    client.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn delta_verb_reuses_warm_artifacts_and_stays_byte_identical() {
    let (apks, fw) = corpus_and_framework();
    let store = std::env::temp_dir().join(format!("saint-delta-e2e-{}", std::process::id()));
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            jobs: 2,
            delta_dir: Some(store.clone()),
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();
    let local_tool = SaintDroid::new(Arc::clone(&fw));
    let mut client = Client::connect(&addr).expect("connect");

    let sapk = codec::encode_apk(&apks[0]);
    let local: Report = local_tool.run(&apks[0]);

    // Cold: every class-group is a miss, the store is populated.
    let cold = client.delta_sapk(&sapk, Some(120_000)).expect("cold delta");
    let cold_delta = cold.delta.expect("store-backed daemon reports reuse");
    assert!(!cold_delta.app_hit, "first sighting cannot hit the app key");
    assert_eq!(cold_delta.hits + cold_delta.misses, cold_delta.classes_seen);

    // Warm: the whole-app fast path answers from the store.
    let warm = client.delta_sapk(&sapk, Some(120_000)).expect("warm delta");
    let warm_delta = warm.delta.expect("delta accounting present");
    assert!(warm_delta.app_hit, "unchanged rescan must hit the app key");
    assert_eq!(warm_delta.reanalyzed, 0);

    // Both answers are byte-identical to a plain local scan.
    for (label, resp) in [("cold", &cold), ("warm", &warm)] {
        assert_eq!(
            serde_json::to_string(&resp.report.mismatches).unwrap(),
            serde_json::to_string(&local.mismatches).unwrap(),
            "{label} delta findings diverged from local scan"
        );
        assert_eq!(
            serde_json::to_string(&resp.report.meter).unwrap(),
            serde_json::to_string(&local.meter).unwrap(),
            "{label} delta meter diverged from local scan"
        );
    }

    client.shutdown().expect("shutdown ack");
    handle.wait();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn delta_verb_without_a_store_degrades_to_a_plain_scan() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(&fw, &ephemeral(ServerConfig::default()));
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let sapk = codec::encode_apk(&apks[0]);
    let response = client.delta_sapk(&sapk, Some(120_000)).expect("delta");
    assert!(
        response.delta.is_none(),
        "a daemon without --delta-dir answers a plain full scan"
    );
    assert_eq!(response.report.package, apks[0].manifest.package);

    client.shutdown().expect("shutdown ack");
    handle.wait();
}

#[test]
fn shutdown_drains_and_joins_all_threads() {
    let (apks, fw) = corpus_and_framework();
    let handle = start_server(
        &fw,
        &ephemeral(ServerConfig {
            jobs: 2,
            window: 4,
            ..ServerConfig::default()
        }),
    );
    let addr = handle.addr().to_string();

    // Serve something first so the drain has real state behind it.
    let mut client = Client::connect(&addr).expect("connect");
    let sapk = codec::encode_apk(&apks[0]);
    client.scan_sapk(&sapk, Some(120_000)).expect("scan");

    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(ack.jobs_served, 1);
    // Every acceptor and worker joins: the daemon exits cleanly.
    handle.wait();
}

/// A DSD-enabled daemon serves reports byte-identical to a local
/// DSD-enabled scan, advertises its detector set in `status`, and
/// enforces the request-side `detectors` assertion with a typed
/// `detector_mismatch` on both the fast (scan) and slow (delta)
/// parse paths.
#[test]
fn dsd_daemon_matches_local_scan_and_checks_detector_assertions() {
    use saint_service::protocol::{self, ScanRequest};
    use saintdroid::DetectorSet;

    let fw = Arc::new(AndroidFramework::curated());
    let engine =
        ScanEngine::from_tool(SaintDroid::new(Arc::clone(&fw)).with_detectors(DetectorSet::all()));
    engine.prewarm();
    let handle = saint_service::start(engine, &ephemeral(ServerConfig::default()))
        .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let status = client.status().expect("status");
    assert_eq!(
        status.detectors.as_deref(),
        Some("api,apc,prm,dsd"),
        "the daemon advertises its detector families"
    );

    let local_tool = SaintDroid::new(Arc::clone(&fw)).with_detectors(DetectorSet::all());
    let apps = saint_corpus::planted_suite();
    for app in &apps {
        let sapk = codec::encode_apk(&app.apk);
        let response = client
            .scan_sapk(&sapk, Some(120_000))
            .expect("scan succeeds");
        let local: Report = local_tool.run(&app.apk);
        assert_eq!(
            serde_json::to_string(&response.report.mismatches).unwrap(),
            serde_json::to_string(&local.mismatches).unwrap(),
            "{}: daemon findings diverged from local DSD scan",
            app.name
        );
    }
    // The planted corpus actually exercised the DSD family end to end.
    let overuse = apps.iter().find(|a| a.name == "Planted-Overuse").unwrap();
    let local = local_tool.run(&overuse.apk);
    assert!(!local.is_clean(), "test premise: planted overuse fires");

    let sapk = codec::encode_apk(&overuse.apk);
    // A matching assertion is served normally (fast parse path).
    let line = protocol::to_line(&ScanRequest::new(&sapk, Some(120_000)).with_detectors("all"));
    let raw = client.raw_roundtrip(line.trim_end()).expect("reply");
    assert!(raw.contains("\"exit_code\""), "asserted scan served: {raw}");
    // A stale AMD-era assertion is refused, typed (fast parse path).
    let line = protocol::to_line(&ScanRequest::new(&sapk, None).with_detectors("amd"));
    let raw = client.raw_roundtrip(line.trim_end()).expect("reply");
    assert!(raw.contains("\"detector_mismatch\""), "{raw}");
    // Same check on the slow parse path (the `delta` verb never takes
    // the zero-copy fast path).
    let line = protocol::to_line(
        &ScanRequest::new(&sapk, None)
            .with_detectors("amd")
            .into_delta(),
    );
    let raw = client.raw_roundtrip(line.trim_end()).expect("reply");
    assert!(raw.contains("\"detector_mismatch\""), "{raw}");
    // An unparseable spec is refused, not guessed at.
    let line = protocol::to_line(&ScanRequest::new(&sapk, None).with_detectors("warp-drive"));
    let raw = client.raw_roundtrip(line.trim_end()).expect("reply");
    assert!(raw.contains("\"detector_mismatch\""), "{raw}");

    // The daemon survived every rejection and still serves.
    client.scan_sapk(&sapk, Some(120_000)).expect("still alive");

    client.shutdown().expect("shutdown ack");
    handle.wait();
}
