//! Fault-injection e2e against a live daemon: five injected panics —
//! one per pipeline stage, including a worker kill in the queue
//! hand-off — each cost exactly one request a typed `internal` answer,
//! after which every request is served with reports byte-identical to
//! the fault-free run, `scans_panicked` reads 5, the supervisor
//! respawned at least one worker, and the worker pool is back at full
//! strength.
//!
//! Fault state is process-global, so the whole scenario is one
//! `#[test]` function (separate integration-test binaries are separate
//! processes and cannot interfere).

use std::sync::Arc;
use std::time::{Duration, Instant};

use saint_adf::AndroidFramework;
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_faults::FaultPoint;
use saint_ir::{codec, Apk};
use saint_obs::MetricsRegistry;
use saint_service::{
    protocol::error_code, scan_with_retries, Client, ClientError, RetryPolicy, ServerConfig,
};
use saintdroid::ScanEngine;

const JOBS: usize = 2;
const DEADLINE: Option<u64> = Some(120_000);

fn corpus_and_framework() -> (Vec<Apk>, Arc<AndroidFramework>) {
    let mut cfg = RealWorldConfig::small();
    cfg.apps = 3;
    let fw = Arc::new(AndroidFramework::with_scale(&cfg.synth));
    let corpus = RealWorldCorpus::new(cfg);
    let apks = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
    (apks, fw)
}

/// The byte-parity fingerprint: serialized report, timing excluded by
/// zeroing the only field that varies run-to-run.
fn fingerprint(report: &saintdroid::Report) -> String {
    let mut stable = report.clone();
    stable.duration = Duration::ZERO;
    serde_json::to_string(&stable).expect("reports serialize")
}

fn expect_internal(err: ClientError, phase: &str) {
    match err {
        ClientError::Rejected(e) => {
            assert_eq!(e.code, error_code::INTERNAL, "wrong code: {e:?}");
            assert_eq!(e.phase.as_deref(), Some(phase), "wrong phase: {e:?}");
        }
        other => panic!("expected a typed internal rejection, got {other}"),
    }
}

#[test]
fn daemon_survives_five_injected_panics_with_byte_identical_reports() {
    saint_faults::reset();
    let (apks, fw) = corpus_and_framework();
    let engine = ScanEngine::new(Arc::clone(&fw));
    engine.prewarm();
    let handle = saint_service::start(
        engine,
        &ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            jobs: JOBS,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    let sapks: Vec<Vec<u8>> = apks.iter().map(codec::encode_apk).collect();

    // Fault-free pass: the parity baseline.
    let mut client = Client::connect(&addr).expect("connect");
    let baseline: Vec<String> = sapks
        .iter()
        .map(|sapk| {
            let resp = client.scan_sapk(sapk, DEADLINE).expect("fault-free scan");
            fingerprint(&resp.report)
        })
        .collect();

    // A truncated container is a *typed* decode failure (not a panic):
    // `bad_package` pointing at the offending byte.
    match client.scan_sapk(&sapks[0][..10.min(sapks[0].len())], DEADLINE) {
        Err(ClientError::Rejected(e)) => {
            assert_eq!(e.code, error_code::BAD_PACKAGE);
            assert!(e.offset.is_some(), "decode errors carry an offset: {e:?}");
            assert!(e.offset.unwrap() <= 10);
        }
        other => panic!("expected bad_package, got {other:?}"),
    }

    // Five injected panics, one per pipeline stage. Requests go one at
    // a time, so each armed countdown fires in exactly the request
    // submitted next.
    let stages = [
        (FaultPoint::Decode, "decode"),
        (FaultPoint::Explore, "explore"),
        (FaultPoint::DetectInvocation, "detect_invocation"),
        (FaultPoint::DetectPermission, "detect_permission"),
        (FaultPoint::QueueHandoff, "queue_handoff"),
    ];
    for (point, phase) in stages {
        saint_faults::arm(point, 1);
        let err = Client::connect(&addr)
            .expect("connect")
            .scan_sapk(&sapks[0], DEADLINE)
            .expect_err("armed request reports the injected panic");
        expect_internal(err, phase);
        assert_eq!(saint_faults::remaining(point), 0, "{point:?} never fired");
    }

    // Every subsequent request is served, byte-identical to the
    // fault-free run — the daemon lost nothing but the five poisoned
    // requests.
    let mut client = Client::connect(&addr).expect("reconnect");
    for (sapk, expected) in sapks.iter().zip(&baseline) {
        let resp = client.scan_sapk(sapk, DEADLINE).expect("post-fault scan");
        assert_eq!(&fingerprint(&resp.report), expected, "report drifted");
    }

    // The self-healing evidence: all five panics counted, at least one
    // worker respawned (the queue_handoff kill), and the pool is back
    // at full strength. The supervisor polls every 25 ms, so give the
    // respawn a bounded moment.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.status().expect("status");
        if status.scan_workers == JOBS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "worker pool never restored: {} of {JOBS} live",
            status.scan_workers
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.counter("scans_panicked"), Some(5));
    assert!(metrics.counter("workers_respawned").unwrap_or(0) >= 1);

    // Client-side retry against the live daemon: an injected internal
    // error is transient, so one retry turns it back into a report.
    let registry = MetricsRegistry::new();
    saint_faults::arm(FaultPoint::DetectInvocation, 1);
    let (resp, retries) = scan_with_retries(
        &addr,
        &sapks[1],
        DEADLINE,
        RetryPolicy {
            base: Duration::from_millis(5),
            ..RetryPolicy::new(3)
        },
        Some(&registry),
    )
    .expect("retry recovers from a transient internal error");
    assert_eq!(retries, 1);
    assert_eq!(&fingerprint(&resp.report), &baseline[1]);
    assert_eq!(registry.counter(saint_obs::Counter::ClientRetries), 1);

    let final_status = Client::connect(&addr)
        .expect("connect")
        .shutdown()
        .expect("graceful shutdown");
    assert!(final_status.draining || final_status.jobs_served > 0);
    handle.wait();
    saint_faults::reset();
}
