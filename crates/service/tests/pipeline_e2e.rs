//! Pipelined end-to-end tests against a real daemon on an ephemeral
//! port, booted the way production boots: frozen framework image
//! attached. N concurrent clients each keep M scans in flight on one
//! connection; every report must be **byte-identical** — serialized
//! mismatches and the full meter — to what the in-process batch engine
//! produces for the same packages, and the reactor's gauges must
//! settle back to zero once the pipelines drain.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::{RealWorldConfig, RealWorldCorpus};
use saint_ir::{codec, Apk};
use saint_service::{Client, PipelinedClient, ServerConfig};
use saintdroid::{Report, ScanEngine};

fn corpus_and_framework() -> (Vec<Apk>, Arc<AndroidFramework>) {
    let mut cfg = RealWorldConfig::small();
    cfg.apps = 8;
    let fw = Arc::new(AndroidFramework::with_scale(&cfg.synth));
    let corpus = RealWorldCorpus::new(cfg);
    let apks = (0..corpus.len()).map(|i| corpus.get(i).apk).collect();
    (apks, fw)
}

/// Boots a daemon the production way: frozen framework image compiled
/// to a temp file and attached (no mining at startup), engine
/// prewarmed off the image. Returns the handle and the image path so
/// the caller can clean up.
fn start_frozen_server(
    fw: &Arc<AndroidFramework>,
    mut cfg: ServerConfig,
) -> (saint_service::ServerHandle, std::path::PathBuf) {
    cfg.listen = "127.0.0.1:0".to_string();
    let image = std::env::temp_dir().join(format!(
        "saint_pipeline_e2e_{}_{:p}.sfrz",
        std::process::id(),
        &cfg
    ));
    std::fs::write(&image, saint_frozen::freeze_framework(fw)).expect("write frozen image");
    let engine = ScanEngine::new(Arc::clone(fw));
    engine
        .attach_frozen(&image)
        .expect("attach frozen framework image");
    engine.prewarm();
    let handle = saint_service::start(engine, &cfg).expect("bind ephemeral port");
    (handle, image)
}

/// The parity digest: serialized mismatches plus serialized meter —
/// the same byte-level comparison `service_e2e` applies, minus the
/// timing fields that naturally differ.
fn digest(report: &Report) -> String {
    format!(
        "{}|{}|{}",
        report.package,
        serde_json::to_string(&report.mismatches).expect("mismatches serialize"),
        serde_json::to_string(&report.meter).expect("meter serializes"),
    )
}

#[test]
fn concurrent_pipelined_clients_match_batch_engine_byte_for_byte() {
    const CLIENTS: usize = 4;
    const WINDOW: usize = 8;
    const SCANS_PER_CLIENT: usize = 16; // the 8-app corpus, cycled twice

    let (apks, fw) = corpus_and_framework();
    let (handle, image) = start_frozen_server(
        &fw,
        ServerConfig {
            jobs: 2,
            queue_depth: 64,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    // The ground truth: the in-process batch engine over the same
    // packages (scan_batch is itself parity-checked against the
    // sequential tool by the engine's own suite).
    let local_engine = ScanEngine::new(Arc::clone(&fw));
    let expected: Vec<String> = local_engine.scan_batch(&apks).iter().map(digest).collect();

    let sapks: Vec<Vec<u8>> = (0..SCANS_PER_CLIENT)
        .map(|i| codec::encode_apk(&apks[i % apks.len()]))
        .collect();

    // N clients, each pipelining M scans in flight on one connection.
    let digests: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let sapks = &sapks;
                s.spawn(move || {
                    let mut client =
                        PipelinedClient::connect(&addr, WINDOW).expect("connect pipelined");
                    let responses = client
                        .scan_all(sapks, Some(120_000))
                        .expect("pipelined batch serves");
                    responses.iter().map(|r| digest(&r.report)).collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for per_client in &digests {
        assert_eq!(per_client.len(), SCANS_PER_CLIENT);
        for (i, got) in per_client.iter().enumerate() {
            assert_eq!(
                got,
                &expected[i % expected.len()],
                "pipelined report {i} diverged from the batch engine"
            );
        }
    }

    // The reactor's books balance once the pipelines drain: every scan
    // answered, no request still in flight, only the status connection
    // open.
    let mut admin = Client::connect(&addr).expect("connect admin");
    let status = admin.status().expect("status");
    assert_eq!(status.jobs_served, (CLIENTS * SCANS_PER_CLIENT) as u64);
    let reactor = status.reactor.expect("daemon reports its reactor");
    assert_eq!(reactor.inflight, 0, "all pipelines drained");
    assert_eq!(reactor.open_connections, 1, "only the admin connection");
    assert!(
        reactor.connections_accepted >= (CLIENTS + 1) as u64,
        "every pipelined client was accepted"
    );

    admin.shutdown().expect("shutdown ack");
    handle.wait();
    let _ = std::fs::remove_file(image);
}

#[test]
fn client_window_larger_than_server_window_backpressures_not_rejects() {
    let (apks, fw) = corpus_and_framework();
    // A deliberately tiny per-connection window: the client pushes 16
    // scans with all of them in flight, so the daemon must suspend the
    // connection's reads instead of answering `busy`.
    let (handle, image) = start_frozen_server(
        &fw,
        ServerConfig {
            jobs: 1,
            queue_depth: 64,
            window: 2,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    let sapks: Vec<Vec<u8>> = (0..16)
        .map(|i| codec::encode_apk(&apks[i % apks.len()]))
        .collect();
    let mut client = PipelinedClient::connect(&addr, 16).expect("connect pipelined");
    let responses = client
        .scan_all(&sapks, Some(120_000))
        .expect("overflow parks, never rejects");
    assert_eq!(responses.len(), 16);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.report.package, apks[i % apks.len()].manifest.package);
    }

    let mut admin = Client::connect(&addr).expect("connect admin");
    let status = admin.status().expect("status");
    assert_eq!(status.jobs_served, 16);
    assert_eq!(status.rejected_busy, 0, "backpressure must replace busy");
    let reactor = status.reactor.expect("daemon reports its reactor");
    assert!(
        reactor.backpressure_suspends > 0,
        "a 16-deep pipeline against a 2-deep window must suspend reads"
    );
    assert_eq!(reactor.suspended_connections, 0, "all resumed after drain");

    admin.shutdown().expect("shutdown ack");
    handle.wait();
    let _ = std::fs::remove_file(image);
}

#[test]
fn single_connection_pipeline_preserves_submission_order() {
    let (apks, fw) = corpus_and_framework();
    let (handle, image) = start_frozen_server(
        &fw,
        ServerConfig {
            jobs: 2,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr().to_string();

    // Each package distinct, the whole batch in flight at once: the
    // two workers may finish out of submission order, and scan_all must
    // still hand results back in submission order.
    let sapks: Vec<Vec<u8>> = apks.iter().map(codec::encode_apk).collect();
    let mut client = PipelinedClient::connect(&addr, sapks.len()).expect("connect pipelined");
    let responses = client.scan_all(&sapks, Some(120_000)).expect("serves");
    for (resp, apk) in responses.iter().zip(&apks) {
        assert_eq!(resp.report.package, apk.manifest.package);
    }

    let mut admin = Client::connect(&addr).expect("connect admin");
    admin.shutdown().expect("shutdown ack");
    handle.wait();
    let _ = std::fs::remove_file(image);
}
