//! Execution-semantics tests for the interpreter: control flow,
//! arithmetic, and receiver-based virtual dispatch — checked through
//! observable crashes (the simulator's only output channel).

use std::sync::Arc;

use saint_adf::{well_known, AndroidFramework};
use saint_dynamic::{Device, Simulator};
use saint_ir::{
    ApiLevel, Apk, ApkBuilder, BinOp, ClassBuilder, ClassOrigin, Cond, InvokeKind, MethodRef,
};

fn fw() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::curated())
}

fn run(apk: &Apk, level: u8, entry: MethodRef) -> usize {
    let mut sim = Simulator::new(apk, &fw(), Device::at(ApiLevel::new(level)));
    sim.run_entries(&[entry]).crashes.len()
}

/// Wires a method that crashes iff a computed value selects the
/// crashing branch — the crash is the probe for which path executed.
#[test]
fn switch_takes_the_matching_case() {
    // switch(2): case 2 jumps to the crashing call; default returns.
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onResume", "()V", |b| {
            let r = b.alloc_reg();
            b.const_int(r, 2);
            let crash_blk = b.new_block();
            let done = b.new_block();
            b.terminate(saint_ir::Terminator::Switch {
                scrutinee: r,
                targets: vec![(1, done), (2, crash_blk)],
                default: done,
            });
            b.switch_to(crash_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(done);
            b.switch_to(done);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    // At level 21 the API is missing → the crash proves case 2 ran.
    assert_eq!(
        run(&apk, 21, MethodRef::new("p.Main", "onResume", "()V")),
        1
    );
}

#[test]
fn switch_default_when_nothing_matches() {
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onResume", "()V", |b| {
            let r = b.alloc_reg();
            b.const_int(r, 9);
            let crash_blk = b.new_block();
            let done = b.new_block();
            b.terminate(saint_ir::Terminator::Switch {
                scrutinee: r,
                targets: vec![(1, crash_blk), (2, crash_blk)],
                default: done,
            });
            b.switch_to(crash_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(done);
            b.switch_to(done);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    assert_eq!(
        run(&apk, 21, MethodRef::new("p.Main", "onResume", "()V")),
        0
    );
}

#[test]
fn arithmetic_feeds_branches() {
    // v = 20 + 3; if (SDK_INT >= v) call — equivalent to a guard at 23
    // computed arithmetically; the guard must hold concretely.
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onResume", "()V", |b| {
            let acc = b.alloc_reg();
            b.const_int(acc, 20);
            b.binop(BinOp::Add, acc, acc, 3i64);
            let sdk = b.sdk_int();
            let call_blk = b.new_block();
            let done = b.new_block();
            b.branch_if(Cond::Ge, sdk, acc, call_blk, done);
            b.switch_to(call_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(done);
            b.switch_to(done);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    let entry = MethodRef::new("p.Main", "onResume", "()V");
    // Below the computed threshold: branch not taken, no crash.
    assert_eq!(run(&apk, 22, entry.clone()), 0);
    // At/above it: the call executes and succeeds (API exists at 23).
    assert_eq!(run(&apk, 23, entry), 0);
}

#[test]
fn receiver_type_refines_virtual_dispatch() {
    // base.work() where the receiver actually holds a Sub instance:
    // Sub.work crashes, Base.work does not — the crash proves dynamic
    // dispatch went to the runtime type.
    let base = ClassBuilder::new("p.Base", ClassOrigin::App)
        .method("work", "()V", |b| {
            b.ret_void();
        })
        .unwrap()
        .build();
    let sub = ClassBuilder::new("p.Sub", ClassOrigin::App)
        .extends("p.Base")
        .method("work", "()V", |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onResume", "()V", |b| {
            let obj = b.alloc_reg();
            b.new_instance(obj, "p.Sub");
            b.invoke(
                InvokeKind::Virtual,
                MethodRef::new("p.Base", "work", "()V"),
                &[obj],
                None,
            );
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(base)
        .unwrap()
        .class(sub)
        .unwrap()
        .class(main)
        .unwrap()
        .build();
    assert_eq!(
        run(&apk, 21, MethodRef::new("p.Main", "onResume", "()V")),
        1,
        "dispatch must land on p.Sub.work"
    );
}

#[test]
fn crash_dedup_per_site() {
    // A loop-free body invoking the same missing API twice from the
    // same frame records one event (the harness catches and the app
    // would log once per unique fault signature).
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onResume", "()V", |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    assert_eq!(
        run(&apk, 21, MethodRef::new("p.Main", "onResume", "()V")),
        1
    );
}
