//! Framework-invokable entry points.
//!
//! Dynamic analysis can only drive what the platform would drive:
//! component lifecycle methods, `on…` event handlers, and
//! `run`/`call`-style listener bodies — including those inside
//! anonymous inner classes, which is exactly where dynamic analysis
//! sees more than the static side (paper §VI).

use saint_ir::{Apk, MethodRef};

/// Whether a method name is something the framework invokes.
#[must_use]
pub fn framework_invokable(name: &str) -> bool {
    (name.len() > 2 && name.starts_with("on") && name.as_bytes()[2].is_ascii_uppercase())
        || name == "run"
        || name == "call"
}

/// Collects the app's dynamic entry points: every framework-invokable
/// method anywhere in the package, anonymous classes included. The
/// platform never calls arbitrary public methods — even on manifest
/// components it only drives lifecycle callbacks and registered
/// listeners, so that is all the simulator drives (anything else is
/// only reachable through app code, which the interpreter follows
/// naturally).
#[must_use]
pub fn entry_points(apk: &Apk) -> Vec<MethodRef> {
    let mut out = Vec::new();
    for class in apk.all_classes() {
        for m in &class.methods {
            if m.body.is_none() {
                continue;
            }
            if framework_invokable(&m.name) {
                out.push(m.reference(&class.name));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin};

    #[test]
    fn invokable_names() {
        assert!(framework_invokable("onCreate"));
        assert!(framework_invokable("onRequestPermissionsResult"));
        assert!(framework_invokable("run"));
        assert!(framework_invokable("call"));
        assert!(!framework_invokable("once"));
        assert!(!framework_invokable("helper"));
        assert!(!framework_invokable("on"));
    }

    #[test]
    fn only_framework_invokable_methods_are_entries() {
        let comp = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("helperOnly", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .method("onResume", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let other = ClassBuilder::new("p.Util", ClassOrigin::App)
            .method("helperOnly", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .method("onEvent", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(comp)
            .unwrap()
            .class(other)
            .unwrap()
            .build();
        let entries = entry_points(&apk);
        let names: Vec<String> = entries.iter().map(ToString::to_string).collect();
        assert!(names.contains(&"p.Main.onResume()V".to_string()));
        assert!(names.contains(&"p.Util.onEvent()V".to_string()));
        assert!(!names.contains(&"p.Main.helperOnly()V".to_string()));
        assert!(!names.contains(&"p.Util.helperOnly()V".to_string()));
    }

    #[test]
    fn anonymous_listeners_are_entries() {
        let anon = ClassBuilder::new("p.Main$1", ClassOrigin::App)
            .method("run", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(anon)
            .unwrap()
            .build();
        assert_eq!(entry_points(&apk).len(), 1);
    }
}
