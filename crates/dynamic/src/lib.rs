//! # saint-dynamic — dynamic verification of static findings
//!
//! The SAINTDroid paper closes §VI with its next step: "it should be
//! possible to utilize dynamic analysis techniques to automatically
//! verify incompatibilities identified through our conservative,
//! static analysis based, incompatibility detection technique". This
//! crate implements that step for the reproduction:
//!
//! * [`Simulator`] — a bounded IR interpreter that runs an app's
//!   framework-invokable entry points on a simulated [`Device`] at any
//!   API level, with the platform materialized *at that level*,
//!   bundled support libraries frozen at the app's target level, and a
//!   permission model that follows the paper's §II-C regimes. Crashes
//!   (`NoSuchMethodError`, `SecurityException`) are observed, not
//!   predicted.
//! * [`Verifier`] — replays every static finding on the implicated
//!   device levels and returns a [`Verification`]: **confirmed** by an
//!   observed crash, **refuted** by complete crash-free closed-world
//!   execution (this is what clears the anonymous-inner-class false
//!   alarms of §VI), or **undetermined**.
//!
//! ```
//! use std::sync::Arc;
//! use saint_adf::AndroidFramework;
//! use saint_corpus::cases;
//! use saint_dynamic::Verifier;
//! use saintdroid::{CompatDetector, SaintDroid};
//!
//! let fw = Arc::new(AndroidFramework::curated());
//! let apk = cases::offline_calendar();
//! let report = SaintDroid::new(Arc::clone(&fw)).analyze(&apk).unwrap();
//! let verification = Verifier::new(fw).verify(&apk, &report);
//! assert_eq!(verification.confirmed.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod device;
mod entries;
mod interp;
mod verify;

pub use device::{Device, PermissionState};
pub use entries::{entry_points, framework_invokable};
pub use interp::{CrashEvent, CrashKind, RunOutcome, Simulator, Value};
pub use verify::{Verdict, Verification, Verifier};
