//! Simulated device configuration and permission policy.

use std::collections::HashSet;

use saint_ir::{ApiLevel, Manifest, Permission};

/// A simulated device the interpreter runs the app on.
#[derive(Debug, Clone)]
pub struct Device {
    /// The device's platform API level — the framework code that
    /// actually exists at run time.
    pub level: ApiLevel,
    /// Simulate the worst-case user who has revoked every revocable
    /// dangerous permission (only meaningful on API ≥ 23 devices).
    pub revoke_dangerous: bool,
    /// Interpreter step budget per entry point.
    pub step_limit: usize,
    /// Interpreter call-depth budget.
    pub depth_limit: usize,
}

impl Device {
    /// A device at `level` with permissions intact.
    #[must_use]
    pub fn at(level: ApiLevel) -> Self {
        Device {
            level,
            revoke_dangerous: false,
            step_limit: 200_000,
            depth_limit: 64,
        }
    }

    /// A ≥ 23 device whose user has revoked dangerous permissions.
    #[must_use]
    pub fn hostile(level: ApiLevel) -> Self {
        Device {
            revoke_dangerous: true,
            ..Device::at(level)
        }
    }

    /// Whether the device runs the runtime-permission regime.
    #[must_use]
    pub fn runtime_permissions(&self) -> bool {
        self.level >= ApiLevel::RUNTIME_PERMISSIONS
    }
}

/// The permission grant state the app executes under, derived from the
/// manifest and device exactly as paper §II-C lays out the regimes.
#[derive(Debug, Clone)]
pub struct PermissionState {
    granted: HashSet<Permission>,
    runtime_requested: HashSet<Permission>,
}

impl PermissionState {
    /// Initial state at app start on `device`.
    ///
    /// * device < 23: every manifest permission granted at install;
    /// * device ≥ 23, target < 23: install-time grants, minus
    ///   revocations when the simulated user is hostile;
    /// * device ≥ 23, target ≥ 23: dangerous permissions start
    ///   ungranted; only a runtime request grants them.
    #[must_use]
    pub fn at_start(manifest: &Manifest, device: &Device) -> Self {
        let mut granted = HashSet::new();
        let declared = manifest.uses_permissions.iter().cloned();
        if !device.runtime_permissions() {
            granted.extend(declared);
        } else if !manifest.targets_runtime_permissions() {
            for p in declared {
                if device.revoke_dangerous && saint_adf::is_dangerous(&p) {
                    continue; // user revoked it
                }
                granted.insert(p);
            }
        } else {
            // Runtime regime: non-dangerous permissions are granted at
            // install; dangerous ones need a runtime request.
            for p in declared {
                if !saint_adf::is_dangerous(&p) {
                    granted.insert(p);
                }
            }
        }
        PermissionState {
            granted,
            runtime_requested: HashSet::new(),
        }
    }

    /// The app called `requestPermissions`: on a ≥ 23 device the
    /// (cooperative) simulated user grants everything the manifest
    /// declares.
    pub fn runtime_request(&mut self, manifest: &Manifest, device: &Device) {
        if device.runtime_permissions() && manifest.targets_runtime_permissions() {
            for p in &manifest.uses_permissions {
                self.granted.insert(p.clone());
                self.runtime_requested.insert(p.clone());
            }
        }
    }

    /// Whether `p` is currently granted.
    #[must_use]
    pub fn is_granted(&self, p: &Permission) -> bool {
        self.granted.contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(target: u8, perms: &[&str]) -> Manifest {
        let mut m = Manifest::new("p", ApiLevel::new(14), ApiLevel::new(target), None).unwrap();
        m.uses_permissions = perms.iter().map(|p| Permission::android(p)).collect();
        m
    }

    #[test]
    fn install_time_grants_below_23() {
        let st = PermissionState::at_start(
            &manifest(22, &["CAMERA", "INTERNET"]),
            &Device::at(ApiLevel::new(19)),
        );
        assert!(st.is_granted(&Permission::android("CAMERA")));
        assert!(st.is_granted(&Permission::android("INTERNET")));
    }

    #[test]
    fn hostile_user_revokes_dangerous_only() {
        let st = PermissionState::at_start(
            &manifest(22, &["CAMERA", "INTERNET"]),
            &Device::hostile(ApiLevel::new(26)),
        );
        assert!(!st.is_granted(&Permission::android("CAMERA")));
        assert!(st.is_granted(&Permission::android("INTERNET")));
    }

    #[test]
    fn runtime_regime_starts_ungranted_until_requested() {
        let m = manifest(26, &["CAMERA"]);
        let d = Device::at(ApiLevel::new(26));
        let mut st = PermissionState::at_start(&m, &d);
        assert!(!st.is_granted(&Permission::android("CAMERA")));
        st.runtime_request(&m, &d);
        assert!(st.is_granted(&Permission::android("CAMERA")));
    }

    #[test]
    fn runtime_request_is_noop_below_23() {
        let m = manifest(26, &["CAMERA"]);
        let d = Device::at(ApiLevel::new(21));
        let mut st = PermissionState::at_start(&m, &d);
        // Already granted at install on the old device.
        assert!(st.is_granted(&Permission::android("CAMERA")));
        st.runtime_request(&m, &d);
        assert!(st.is_granted(&Permission::android("CAMERA")));
    }
}
