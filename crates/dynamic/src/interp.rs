//! The bounded IR interpreter.
//!
//! Executes app entry points over a simulated device: the platform's
//! framework classes are materialized at the *device* level (that is
//! the code that actually exists at run time), while bundled support
//! libraries (`android.support.*`) execute the code the app shipped —
//! materialized at the app's *target* level, exactly like a compiled-in
//! dependency. Crashes are observed, not predicted:
//!
//! * an invocation that resolves to nothing the platform has, but that
//!   the API database knows from other levels, raises
//!   `NoSuchMethodError`;
//! * a dangerous-permission API executed without the permission
//!   granted raises `SecurityException`.

use std::collections::HashSet;
use std::sync::Arc;

use saint_adf::{AndroidFramework, ApiDatabase, PermissionMap};
use saint_analysis::{
    Clvm, FrameworkProvider, PrimaryDexProvider, Resolution, SecondaryDexProvider,
};
use saint_ir::{
    ApiLevel, Apk, BlockId, ClassName, Instr, Manifest, MethodBody, MethodRef, Operand, Permission,
    Terminator,
};
use serde::Serialize;

use crate::device::{Device, PermissionState};

/// A concrete runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / uninitialized reference.
    Null,
    /// Integer.
    Int(i64),
    /// String constant.
    Str(Arc<str>),
    /// An object reference (identity-free: the analysis only needs the
    /// class).
    Obj(ClassName),
}

impl Value {
    fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            _ => 0,
        }
    }
}

/// Why an execution crashed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum CrashKind {
    /// The platform at this level has no such method (missing or
    /// removed API).
    NoSuchMethod,
    /// A dangerous-permission API executed without the grant.
    SecurityException {
        /// The missing permission.
        permission: Permission,
    },
}

/// One observed crash.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CrashEvent {
    /// The entry point whose execution crashed.
    pub entry: MethodRef,
    /// The innermost *app/package* frame on the stack when the crash
    /// happened — the site a stack trace would blame.
    pub app_frame: Option<MethodRef>,
    /// The framework API at fault (declaring-class form).
    pub api: MethodRef,
    /// What happened.
    pub kind: CrashKind,
    /// The device level it happened on.
    pub level: ApiLevel,
}

/// Everything one simulated run observed.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Crashes, one per entry at most (execution stops at the first).
    pub crashes: Vec<CrashEvent>,
    /// Framework APIs that were actually invoked (declaring form).
    pub reached_apis: HashSet<MethodRef>,
    /// App/package methods that were entered.
    pub entered: HashSet<MethodRef>,
    /// Whether every entry ran to completion within budget with no
    /// unanalyzable external calls — required for refutation.
    pub complete: bool,
}

/// Serves `android.support.*` classes frozen at the app's target level
/// (bundled code ships with the app and does not change with the
/// device).
struct BundledSupportProvider {
    framework: Arc<AndroidFramework>,
    target: ApiLevel,
}

impl saint_analysis::ClassProvider for BundledSupportProvider {
    fn find_class(&self, name: &ClassName) -> Option<Arc<saint_ir::ClassDef>> {
        name.as_str()
            .starts_with("android.support.")
            .then(|| self.framework.class_at(self.target, name))
            .flatten()
    }

    fn class_names(&self) -> Vec<ClassName> {
        self.framework
            .spec()
            .classes()
            .filter(|c| c.name.as_str().starts_with("android.support."))
            .map(|c| c.name.clone())
            .collect()
    }

    fn label(&self) -> &str {
        "bundled-support"
    }
}

/// The simulator for one (app, device) pairing.
pub struct Simulator {
    clvm: Clvm,
    db: Arc<ApiDatabase>,
    pm: Arc<PermissionMap>,
    manifest: Manifest,
    device: Device,
    permissions: PermissionState,
    steps: usize,
    incomplete: bool,
    outcome_reached: HashSet<MethodRef>,
    outcome_entered: HashSet<MethodRef>,
    // Crash events observed so far; the harness catches the exception
    // at the faulting call and keeps exploring (like a monkey tester
    // wrapping every callback in a try/catch), so one crash does not
    // hide sites behind it.
    crashes: Vec<CrashEvent>,
    current_entry: Option<MethodRef>,
    app_stack: Vec<MethodRef>,
}

impl Simulator {
    /// Builds the simulator: app dexes + bundled support (target
    /// level) + platform (device level).
    #[must_use]
    pub fn new(apk: &Apk, framework: &Arc<AndroidFramework>, device: Device) -> Self {
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(apk)));
        for dex in &apk.secondary {
            clvm.add_provider(Box::new(SecondaryDexProvider::new(dex)));
        }
        clvm.add_provider(Box::new(BundledSupportProvider {
            framework: Arc::clone(framework),
            target: apk.manifest.target_sdk.clamp_modeled(),
        }));
        clvm.add_provider(Box::new(FrameworkProvider::new(
            Arc::clone(framework),
            device.level.clamp_modeled(),
        )));
        let permissions = PermissionState::at_start(&apk.manifest, &device);
        Simulator {
            clvm,
            db: framework.database(),
            pm: framework.permission_map(),
            manifest: apk.manifest.clone(),
            device,
            permissions,
            steps: 0,
            incomplete: false,
            outcome_reached: HashSet::new(),
            outcome_entered: HashSet::new(),
            crashes: Vec::new(),
            current_entry: None,
            app_stack: Vec::new(),
        }
    }

    fn record_crash(&mut self, api: MethodRef, kind: CrashKind) {
        let entry = self
            .current_entry
            .clone()
            .expect("crashes only occur inside an entry");
        let event = CrashEvent {
            entry,
            app_frame: self.app_stack.last().cloned(),
            api,
            kind,
            level: self.device.level,
        };
        if !self.crashes.contains(&event) {
            self.crashes.push(event);
        }
    }

    /// Runs every entry point, returning the combined observations.
    pub fn run_entries(&mut self, entries: &[MethodRef]) -> RunOutcome {
        for entry in entries {
            self.steps = 0;
            // Fresh permission state per entry (each is a fresh launch).
            self.permissions =
                PermissionState::at_start(&self.manifest.clone(), &self.device.clone());
            self.current_entry = Some(entry.clone());
            let _ = self.invoke(entry, 0);
        }
        self.current_entry = None;
        RunOutcome {
            crashes: std::mem::take(&mut self.crashes),
            reached_apis: std::mem::take(&mut self.outcome_reached),
            entered: std::mem::take(&mut self.outcome_entered),
            complete: !self.incomplete,
        }
    }

    fn invoke(&mut self, target: &MethodRef, depth: usize) -> Value {
        if depth >= self.device.depth_limit || self.steps >= self.device.step_limit {
            self.incomplete = true;
            return Value::Null;
        }
        match self.clvm.resolve_virtual(target) {
            Resolution::Found { declaring, method } => {
                // Permission gate: executing a mapped dangerous API
                // without the grant crashes (caught by the harness).
                let missing_grant = self
                    .pm
                    .required_dangerous(&method)
                    .find(|p| !self.permissions.is_granted(p))
                    .cloned();
                if let Some(p) = missing_grant {
                    self.record_crash(
                        method.clone(),
                        CrashKind::SecurityException { permission: p },
                    );
                    return Value::Null;
                }
                let is_framework = matches!(declaring.origin, saint_ir::ClassOrigin::Framework);
                if is_framework {
                    self.outcome_reached.insert(method.clone());
                    // Runtime permission request side effect.
                    if &*method.name == "requestPermissions" {
                        let manifest = self.manifest.clone();
                        let device = self.device.clone();
                        self.permissions.runtime_request(&manifest, &device);
                    }
                } else {
                    self.outcome_entered.insert(method.clone());
                }
                let body = declaring
                    .method(&method.signature())
                    .and_then(|d| d.body.clone());
                match body {
                    Some(body) => {
                        if !is_framework {
                            self.app_stack.push(method.clone());
                        }
                        let v = self.execute(&body, &method, depth);
                        if !is_framework {
                            self.app_stack.pop();
                        }
                        v
                    }
                    None => Value::Null, // abstract/native terminal
                }
            }
            Resolution::NotFound | Resolution::External(_) => self.unresolved(target),
        }
    }

    /// Classifies a call the loaded world could not dispatch: a
    /// linkage error (the platform at this level lacks the member), an
    /// implicit constructor, or genuinely external code.
    fn unresolved(&mut self, target: &MethodRef) -> Value {
        // The API database knows the member from some level: the app
        // linked against a platform member this device lacks.
        if let Some((declared, _)) = self.db.resolve(&target.class, &target.signature()) {
            if !self.db.contains(&declared, self.device.level) {
                self.record_crash(declared, CrashKind::NoSuchMethod);
            }
            // Known (and possibly crashed): stub result either way.
            return Value::Null;
        }
        // The receiver may be an app class whose framework lineage
        // carries the member (`this.getFragmentManager()` written
        // against the app subclass).
        if let Some(fw) = self.clvm.framework_ancestor(&target.class) {
            if let Some((declared, _)) = self.db.resolve(&fw, &target.signature()) {
                if !self.db.contains(&declared, self.device.level) {
                    self.record_crash(declared, CrashKind::NoSuchMethod);
                }
                return Value::Null;
            }
        }
        // Implicit default constructor / static initializer.
        if &*target.name == "<init>" || &*target.name == "<clinit>" {
            return Value::Null;
        }
        if target.class.is_framework_namespace() {
            // A framework-namespace member the model never had: a
            // linkage error too.
            self.record_crash(target.clone(), CrashKind::NoSuchMethod);
            return Value::Null;
        }
        // Truly external (vendor SDK, reflection target outside the
        // package): unanalyzable — note it and continue.
        self.incomplete = true;
        Value::Null
    }

    fn execute(&mut self, body: &MethodBody, method: &MethodRef, depth: usize) -> Value {
        let mut regs: Vec<Value> = vec![Value::Null; body.register_count() as usize];
        let mut block = BlockId::ENTRY;
        let mut visited_guard = 0usize;
        loop {
            self.steps += body.block(block).instrs.len() + 1;
            if self.steps >= self.device.step_limit {
                self.incomplete = true;
                return Value::Null;
            }
            for instr in &body.block(block).instrs {
                match instr {
                    Instr::Const { dst, value } => regs[dst.0 as usize] = Value::Int(*value),
                    Instr::ConstString { dst, value } => {
                        regs[dst.0 as usize] = Value::Str(Arc::from(value.as_str()));
                    }
                    Instr::Move { dst, src } => {
                        regs[dst.0 as usize] = regs[src.0 as usize].clone();
                    }
                    Instr::BinOp { op, dst, lhs, rhs } => {
                        let l = regs[lhs.0 as usize].as_int();
                        let r = match rhs {
                            Operand::Reg(r) => regs[r.0 as usize].as_int(),
                            Operand::Imm(v) => *v,
                        };
                        let v = match op {
                            saint_ir::BinOp::Add => l.wrapping_add(r),
                            saint_ir::BinOp::Sub => l.wrapping_sub(r),
                            saint_ir::BinOp::Mul => l.wrapping_mul(r),
                            saint_ir::BinOp::Div => l.checked_div(r).unwrap_or(0),
                            saint_ir::BinOp::And => l & r,
                            saint_ir::BinOp::Or => l | r,
                            saint_ir::BinOp::Xor => l ^ r,
                        };
                        regs[dst.0 as usize] = Value::Int(v);
                    }
                    Instr::NewInstance { dst, class } => {
                        regs[dst.0 as usize] = Value::Obj(class.clone());
                    }
                    Instr::FieldGet { dst, field, .. } => {
                        regs[dst.0 as usize] = if field.is_sdk_int() {
                            Value::Int(i64::from(self.device.level.get()))
                        } else {
                            Value::Int(0)
                        };
                    }
                    Instr::FieldPut { .. } | Instr::Nop => {}
                    Instr::Invoke {
                        method: target,
                        dst,
                        args,
                        ..
                    } => {
                        // Virtual dispatch through the *runtime* type of
                        // the receiver when it refines the static
                        // target (a subclass override).
                        let dispatched = match args.first().map(|r| &regs[r.0 as usize]) {
                            Some(Value::Obj(class))
                                if class != &target.class
                                    && class_declares(&mut self.clvm, class, target) =>
                            {
                                target.with_class(class.clone())
                            }
                            _ => target.clone(),
                        };
                        let v = self.invoke(&dispatched, depth + 1);
                        if let Some(d) = dst {
                            regs[d.0 as usize] = v;
                        }
                    }
                }
            }
            match &body.block(block).terminator {
                Terminator::Goto(t) => block = *t,
                Terminator::If {
                    cond,
                    lhs,
                    rhs,
                    then_blk,
                    else_blk,
                } => {
                    let l = regs[lhs.0 as usize].as_int();
                    let r = match rhs {
                        Operand::Reg(r) => regs[r.0 as usize].as_int(),
                        Operand::Imm(v) => *v,
                    };
                    let taken = match cond {
                        saint_ir::Cond::Eq => l == r,
                        saint_ir::Cond::Ne => l != r,
                        saint_ir::Cond::Lt => l < r,
                        saint_ir::Cond::Le => l <= r,
                        saint_ir::Cond::Gt => l > r,
                        saint_ir::Cond::Ge => l >= r,
                    };
                    block = if taken { *then_blk } else { *else_blk };
                }
                Terminator::Switch {
                    scrutinee,
                    targets,
                    default,
                } => {
                    let v = regs[scrutinee.0 as usize].as_int();
                    block = targets
                        .iter()
                        .find(|(case, _)| *case == v)
                        .map_or(*default, |(_, b)| *b);
                }
                Terminator::Return(r) => {
                    return r.map_or(Value::Null, |r| regs[r.0 as usize].clone());
                }
                Terminator::Throw(_) => return Value::Null,
            }
            visited_guard += 1;
            if visited_guard > 100_000 {
                self.incomplete = true;
                let _ = method;
                return Value::Null;
            }
        }
    }
}

fn class_declares(clvm: &mut Clvm, class: &ClassName, target: &MethodRef) -> bool {
    clvm.load_class(class)
        .is_some_and(|c| c.method(&target.signature()).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_adf::well_known;
    use saint_ir::{ApkBuilder, ClassBuilder, ClassOrigin};

    fn framework() -> Arc<AndroidFramework> {
        Arc::new(AndroidFramework::curated())
    }

    fn on_create(class: &str) -> MethodRef {
        MethodRef::new(class, "onCreate", "(Landroid/os/Bundle;)V")
    }

    fn listing1(guarded: bool) -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                if guarded {
                    let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
                    b.switch_to(then_blk);
                    b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                    b.goto(join);
                    b.switch_to(join);
                    b.ret_void();
                } else {
                    b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                    b.ret_void();
                }
            })
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn unguarded_call_crashes_on_old_device() {
        let apk = listing1(false);
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(21)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert_eq!(out.crashes.len(), 1);
        assert_eq!(out.crashes[0].kind, CrashKind::NoSuchMethod);
        assert_eq!(&*out.crashes[0].api.name, "getColorStateList");
    }

    #[test]
    fn unguarded_call_fine_on_new_device() {
        let apk = listing1(false);
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(26)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert!(out.crashes.is_empty());
        assert!(out.complete);
    }

    #[test]
    fn guard_prevents_the_crash() {
        let apk = listing1(true);
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(21)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert!(out.crashes.is_empty(), "{:?}", out.crashes);
        assert!(out.complete, "closed-world execution must complete");
    }

    #[test]
    fn bundled_support_runs_target_code_on_old_device() {
        // The deep TintHelper path: at device 21 the *bundled* helper
        // still carries its target-level body, whose setForeground call
        // cannot resolve on the old platform → crash.
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::tint_helper_apply_tint(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(21)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert_eq!(out.crashes.len(), 1);
        assert_eq!(&*out.crashes[0].api.name, "setForeground");
    }

    #[test]
    fn internally_guarded_compat_shim_survives_everywhere() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::resources_compat_get_csl(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        for level in [19u8, 22, 23, 28] {
            let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(level)));
            let out = sim.run_entries(&[on_create("p.Main")]);
            assert!(out.crashes.is_empty(), "level {level}: {:?}", out.crashes);
        }
    }

    #[test]
    fn revoked_permission_crashes_legacy_app() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_static(well_known::get_external_storage_directory(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(15), ApiLevel::new(22))
            .permission(Permission::android("WRITE_EXTERNAL_STORAGE"))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        // Friendly 22 device: fine.
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(22)));
        assert!(sim.run_entries(&[on_create("p.Main")]).crashes.is_empty());
        // Hostile 26 device: the AdAway crash.
        let mut sim = Simulator::new(&apk, &framework(), Device::hostile(ApiLevel::new(26)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert_eq!(out.crashes.len(), 1);
        assert!(matches!(
            out.crashes[0].kind,
            CrashKind::SecurityException { .. }
        ));
    }

    #[test]
    fn runtime_request_grants_and_survives() {
        // Target 26, requests at runtime before using the camera.
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_virtual(well_known::activity_request_permissions(), &[], None);
                b.invoke_static(well_known::camera_open(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .method(
                "onRequestPermissionsResult",
                "(I[Ljava/lang/String;[I)V",
                |b| {
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(23), ApiLevel::new(26))
            .permission(Permission::android("CAMERA"))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(26)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert!(out.crashes.is_empty(), "{:?}", out.crashes);
    }

    #[test]
    fn unrequested_dangerous_use_crashes_on_runtime_device() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_static(well_known::camera_open(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(23), ApiLevel::new(26))
            .permission(Permission::android("CAMERA"))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build();
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(26)));
        let out = sim.run_entries(&[on_create("p.Main")]);
        assert_eq!(out.crashes.len(), 1);
    }

    #[test]
    fn infinite_loops_hit_the_budget_not_the_wall_clock() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .method("spin", "()V", |b| {
                let head = b.new_block();
                b.goto(head);
                b.switch_to(head);
                b.goto(head);
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .build();
        let mut sim = Simulator::new(&apk, &framework(), Device::at(ApiLevel::new(21)));
        let out = sim.run_entries(&[MethodRef::new("p.Main", "spin", "()V")]);
        assert!(out.crashes.is_empty());
        assert!(
            !out.complete,
            "budget exhaustion must mark the run incomplete"
        );
    }
}
