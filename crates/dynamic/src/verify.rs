//! Verifying static findings with dynamic execution — the paper's
//! stated future work (§VI): "it should be possible to utilize dynamic
//! analysis techniques to automatically verify incompatibilities
//! identified through our conservative, static analysis based,
//! incompatibility detection technique, further alleviating the burden
//! of manual analysis."
//!
//! For every finding the verifier simulates the implicated device
//! levels and drives every framework-invokable entry point:
//!
//! * a matching observed crash **confirms** the finding;
//! * a crash-free, *complete* closed-world run (no budget exhaustion,
//!   no unanalyzable external calls) **refutes** it — this is what
//!   clears the anonymous-class false alarms static analysis cannot;
//! * anything else stays **undetermined**.

use std::collections::HashMap;
use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_ir::{ApiLevel, Apk};
use saintdroid::{Mismatch, MismatchKind, Report};
use serde::Serialize;

use crate::device::Device;
use crate::entries::entry_points;
use crate::interp::{CrashKind, RunOutcome, Simulator};

/// The verdict on one static finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Verdict {
    /// A simulated device crashed exactly as predicted.
    Confirmed,
    /// Closed-world execution completed at the implicated levels with
    /// no matching crash.
    Refuted,
    /// Execution was incomplete (budget, external code): no verdict.
    Undetermined,
}

/// The verification result for a whole report.
#[derive(Debug, Default)]
pub struct Verification {
    /// Findings with a matching observed crash.
    pub confirmed: Vec<Mismatch>,
    /// Findings contradicted by complete crash-free execution.
    pub refuted: Vec<Mismatch>,
    /// Findings execution could not decide.
    pub undetermined: Vec<Mismatch>,
}

impl Verification {
    /// Total findings examined.
    #[must_use]
    pub fn total(&self) -> usize {
        self.confirmed.len() + self.refuted.len() + self.undetermined.len()
    }

    /// Confirmed / decided — the dynamic precision estimate.
    #[must_use]
    pub fn confirmation_rate(&self) -> f64 {
        let decided = self.confirmed.len() + self.refuted.len();
        if decided == 0 {
            1.0
        } else {
            self.confirmed.len() as f64 / decided as f64
        }
    }
}

/// The dynamic verifier.
pub struct Verifier {
    framework: Arc<AndroidFramework>,
}

impl Verifier {
    /// Creates a verifier over the framework model the static analysis
    /// used.
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        Verifier { framework }
    }

    /// Verifies every finding in `report` against simulated devices.
    #[must_use]
    pub fn verify(&self, apk: &Apk, report: &Report) -> Verification {
        let entries = entry_points(apk);
        // One simulated run per implicated (level, hostile) pairing,
        // shared across findings: collect the pairings first, then run.
        let mut pairings: Vec<(ApiLevel, bool)> = Vec::new();
        for m in &report.mismatches {
            let pairing = match m.kind {
                MismatchKind::ApiInvocation => test_level(m).map(|l| (l, false)),
                MismatchKind::ApiCallback => None,
                MismatchKind::PermissionRequest => Some((
                    test_level(m).unwrap_or(ApiLevel::RUNTIME_PERMISSIONS),
                    false,
                )),
                MismatchKind::PermissionRevocation => {
                    Some((test_level(m).unwrap_or(ApiLevel::RUNTIME_PERMISSIONS), true))
                }
                // A DSD overuse is observable exactly like an API
                // invocation mismatch: the API is absent on the
                // implicated device levels.
                MismatchKind::DsdOveruse => test_level(m).map(|l| (l, false)),
                // A DSD underuse is a manifest-level inconsistency —
                // nothing crashes on any device, so there is no run to
                // schedule.
                MismatchKind::DsdUnderuse => None,
            };
            if let Some(p) = pairing {
                if !pairings.contains(&p) {
                    pairings.push(p);
                }
            }
        }
        let mut runs: HashMap<(ApiLevel, bool), RunOutcome> = HashMap::new();
        for (level, hostile) in pairings {
            let device = if hostile {
                Device::hostile(level)
            } else {
                Device::at(level)
            };
            let mut sim = Simulator::new(apk, &self.framework, device);
            runs.insert((level, hostile), sim.run_entries(&entries));
        }
        let run_at = |level: ApiLevel, hostile: bool| -> &RunOutcome {
            runs.get(&(level, hostile)).expect("pairing precomputed")
        };

        let mut out = Verification::default();
        for m in &report.mismatches {
            let verdict = match m.kind {
                MismatchKind::ApiInvocation => {
                    let level = test_level(m);
                    match level {
                        Some(level) => api_verdict(run_at(level, false), m),
                        None => Verdict::Undetermined,
                    }
                }
                MismatchKind::ApiCallback => {
                    // A callback mismatch is "the platform at level L
                    // has nothing to dispatch": probe the database the
                    // same way the dispatcher would.
                    let db = self.framework.database();
                    let missing_somewhere =
                        m.missing_levels.iter().any(|l| !db.contains(&m.api, *l));
                    if missing_somewhere {
                        Verdict::Confirmed
                    } else {
                        Verdict::Refuted
                    }
                }
                MismatchKind::PermissionRequest => {
                    let level = test_level(m).unwrap_or(ApiLevel::RUNTIME_PERMISSIONS);
                    permission_verdict(run_at(level, false), m)
                }
                MismatchKind::PermissionRevocation => {
                    let level = test_level(m).unwrap_or(ApiLevel::RUNTIME_PERMISSIONS);
                    permission_verdict(run_at(level, true), m)
                }
                MismatchKind::DsdOveruse => match test_level(m) {
                    Some(level) => api_verdict(run_at(level, false), m),
                    None => Verdict::Undetermined,
                },
                // Declared-bound inconsistencies never manifest as a
                // runtime crash; the dynamic layer cannot decide them.
                MismatchKind::DsdUnderuse => Verdict::Undetermined,
            };
            match verdict {
                Verdict::Confirmed => out.confirmed.push(m.clone()),
                Verdict::Refuted => out.refuted.push(m.clone()),
                Verdict::Undetermined => out.undetermined.push(m.clone()),
            }
        }
        out
    }
}

fn test_level(m: &Mismatch) -> Option<ApiLevel> {
    m.missing_levels
        .first()
        .copied()
        .map(ApiLevel::clamp_modeled)
}

fn api_verdict(run: &RunOutcome, m: &Mismatch) -> Verdict {
    let crashed = run.crashes.iter().any(|c| {
        c.kind == CrashKind::NoSuchMethod && c.api == m.api && c.app_frame.as_ref() == Some(&m.site)
    });
    if crashed {
        Verdict::Confirmed
    } else if run.complete {
        Verdict::Refuted
    } else {
        Verdict::Undetermined
    }
}

fn permission_verdict(run: &RunOutcome, m: &Mismatch) -> Verdict {
    let crashed = run.crashes.iter().any(|c| {
        matches!(&c.kind, CrashKind::SecurityException { permission }
            if Some(permission) == m.permission.as_ref())
            && c.api == m.api
            && c.app_frame.as_ref() == Some(&m.site)
    });
    if crashed {
        Verdict::Confirmed
    } else if run.complete {
        Verdict::Refuted
    } else {
        Verdict::Undetermined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_corpus::cases;
    use saintdroid::{CompatDetector, SaintDroid};

    fn tools() -> (SaintDroid, Verifier) {
        let fw = Arc::new(AndroidFramework::curated());
        (SaintDroid::new(Arc::clone(&fw)), Verifier::new(fw))
    }

    #[test]
    fn offline_calendar_confirmed() {
        let (saint, verifier) = tools();
        let apk = cases::offline_calendar();
        let report = saint.analyze(&apk).unwrap();
        let v = verifier.verify(&apk, &report);
        assert_eq!(v.confirmed.len(), 1, "refuted={:?}", v.refuted);
        assert!(v.refuted.is_empty());
    }

    #[test]
    fn kolab_and_adaway_confirmed() {
        let (saint, verifier) = tools();
        for apk in [cases::kolab_notes(), cases::adaway()] {
            let report = saint.analyze(&apk).unwrap();
            assert_eq!(report.total(), 1);
            let v = verifier.verify(&apk, &report);
            assert_eq!(v.confirmed.len(), 1, "{:?}", v.undetermined);
        }
    }

    #[test]
    fn fosdem_callback_confirmed() {
        let (saint, verifier) = tools();
        let apk = cases::fosdem();
        let report = saint.analyze(&apk).unwrap();
        let v = verifier.verify(&apk, &report);
        assert_eq!(v.confirmed.len(), 1);
    }

    #[test]
    fn anonymous_guard_false_alarm_refuted() {
        // The §VI false-alarm mechanism: the only caller of the
        // flagged helper guards correctly inside an anonymous class.
        // Static analysis cannot see it; the interpreter can — and
        // clears the alarm.
        use saint_corpus::patterns::anon_guarded_helper;
        let inj = anon_guarded_helper(
            "p.Night",
            saint_adf::well_known::context_get_color_state_list(),
            23,
        );
        let mut builder = saint_ir::ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Night");
        for c in inj.classes {
            builder = builder.class(c).unwrap();
        }
        let apk = builder.build();
        let (saint, verifier) = tools();
        let report = saint.analyze(&apk).unwrap();
        assert_eq!(report.api_count(), 1, "static side must raise the alarm");
        let v = verifier.verify(&apk, &report);
        assert_eq!(v.refuted.len(), 1, "dynamic side must clear it: {v:?}");
        assert!(v.confirmed.is_empty());
    }

    #[test]
    fn verification_over_benchmark_suite() {
        let (saint, verifier) = tools();
        let mut confirmed = 0usize;
        let mut refuted = 0usize;
        let mut undetermined = 0usize;
        for app in saint_corpus::benchmark_suite() {
            let report = saint.analyze(&app.apk).unwrap();
            let v = verifier.verify(&app.apk, &report);
            confirmed += v.confirmed.len();
            refuted += v.refuted.len();
            undetermined += v.undetermined.len();
        }
        assert!(confirmed >= 25, "confirmed {confirmed}");
        // Exactly the injected anonymous-guard bait gets cleared.
        assert!(refuted >= 1, "refuted {refuted}");
        assert!(
            refuted + undetermined <= 4,
            "refuted {refuted} undetermined {undetermined}"
        );
    }
}
