//! Intra-app parallelism parity: a report produced with `app_jobs > 1`
//! (shared-CLVM parallel exploration, concurrent detectors, parallel
//! framework-subtree scans) must be byte-identical to the sequential
//! run — mismatches, their order, and the per-app meter. The worker
//! count may only change *when* work happens, never what is found.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use saint_adf::{AndroidFramework, SynthConfig};
use saint_corpus::{cider_bench, RealWorldConfig, RealWorldCorpus};
use saint_ir::Apk;
use saintdroid::{Report, SaintDroid};

fn curated() -> Arc<AndroidFramework> {
    static FW: OnceLock<Arc<AndroidFramework>> = OnceLock::new();
    Arc::clone(FW.get_or_init(|| Arc::new(AndroidFramework::curated())))
}

fn synth_small() -> Arc<AndroidFramework> {
    static FW: OnceLock<Arc<AndroidFramework>> = OnceLock::new();
    Arc::clone(FW.get_or_init(|| Arc::new(AndroidFramework::with_scale(&SynthConfig::small()))))
}

/// The report's observable bytes: everything `bench_summary`
/// fingerprints (package, the full mismatch list in order, the meter),
/// serialized so any divergence — order included — changes the string.
fn fingerprint(report: &Report) -> String {
    format!(
        "{}|{}|{}|{}",
        report.package,
        serde_json::to_string(&report.mismatches).expect("mismatches serialize"),
        report.meter.total_bytes(),
        report.meter.classes_loaded,
    )
}

fn assert_parity_at(fw: &Arc<AndroidFramework>, apk: &Apk, jobs_list: &[usize]) {
    let sequential = SaintDroid::new(Arc::clone(fw)).run(apk);
    for &jobs in jobs_list {
        let parallel = SaintDroid::new(Arc::clone(fw)).with_app_jobs(jobs).run(apk);
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "{}: app_jobs={jobs} changed the report",
            sequential.package
        );
        assert_eq!(sequential.meter, parallel.meter);
    }
}

#[test]
fn cider_bench_intra_app_parity() {
    let fw = curated();
    for app in cider_bench() {
        assert_parity_at(&fw, &app.apk, &[1, 2, 8]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_apps_intra_app_parity(
        seed in 0u64..1_000_000,
        index in 0usize..24,
    ) {
        let cfg = RealWorldConfig {
            apps: 24,
            seed,
            ..RealWorldConfig::small()
        };
        let corpus = RealWorldCorpus::new(cfg);
        let apk = corpus.get(index).apk;
        assert_parity_at(&synth_small(), &apk, &[1, 2, 8]);
    }
}
