//! Batch-engine parity: `ScanEngine::scan_batch` over CIDER-Bench must
//! be indistinguishable (mismatches *and* per-app metered bytes) from
//! running `SaintDroid::run` on each app sequentially — the engine's
//! shared framework-class cache and its work-stealing schedule may
//! change *when* and *where* classes materialize, never what an app
//! loads or what the detectors find.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::{cider_bench, RealWorldConfig, RealWorldCorpus};
use saint_ir::Apk;
use saintdroid::{Report, SaintDroid, ScanEngine};

fn framework() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::curated())
}

fn sequential_reports(fw: &Arc<AndroidFramework>, apks: &[Apk]) -> Vec<Report> {
    let tool = SaintDroid::new(Arc::clone(fw));
    apks.iter().map(|a| tool.run(a)).collect()
}

fn assert_parity(sequential: &[Report], batch: &[Report]) {
    assert_eq!(sequential.len(), batch.len());
    for (s, b) in sequential.iter().zip(batch) {
        assert_eq!(s.package, b.package, "batch reports must keep input order");
        assert_eq!(
            s.mismatches, b.mismatches,
            "{}: batch scan changed the findings",
            s.package
        );
        assert_eq!(
            s.meter.total_bytes(),
            b.meter.total_bytes(),
            "{}: batch scan changed the per-app metered bytes",
            s.package
        );
        assert_eq!(
            s.meter.classes_loaded, b.meter.classes_loaded,
            "{}: batch scan changed the per-app loaded-class count",
            s.package
        );
    }
}

#[test]
fn cider_bench_batch_matches_sequential() {
    let fw = framework();
    let apks: Vec<Apk> = cider_bench().into_iter().map(|a| a.apk).collect();
    let sequential = sequential_reports(&fw, &apks);

    let engine = ScanEngine::new(Arc::clone(&fw)).jobs(4);
    let batch = engine.scan_batch(&apks);
    assert_parity(&sequential, &batch);

    // The 12 apps overlap heavily in framework usage: the shared cache
    // must actually have been exercised, not silently bypassed.
    let stats = engine.cache_stats().expect("engine installs a cache");
    assert!(
        stats.hits > 0,
        "no cross-app cache hits recorded: {stats:?}"
    );
}

#[test]
fn cider_bench_parity_holds_without_shared_cache() {
    let fw = framework();
    let apks: Vec<Apk> = cider_bench().into_iter().map(|a| a.apk).collect();
    let sequential = sequential_reports(&fw, &apks);
    let batch = ScanEngine::from_tool(SaintDroid::new(Arc::clone(&fw)))
        .jobs(3)
        .scan_batch(&apks);
    assert_parity(&sequential, &batch);
}

#[test]
fn realworld_sample_batch_matches_sequential() {
    let fw = framework();
    let corpus = RealWorldCorpus::new(RealWorldConfig::small());
    let apks: Vec<Apk> = (0..24.min(corpus.len()))
        .map(|i| corpus.get(i).apk)
        .collect();
    let sequential = sequential_reports(&fw, &apks);
    let batch = ScanEngine::new(Arc::clone(&fw)).jobs(4).scan_batch(&apks);
    assert_parity(&sequential, &batch);
}
