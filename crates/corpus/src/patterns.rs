//! Reusable mismatch-injection patterns.
//!
//! Benchmark apps are assembled from these building blocks. Each
//! pattern produces classes plus the ground truth it implies — real
//! issues carry truth entries, *bait* patterns (safe code that weaker
//! tools misreport) carry none.

use saint_adf::well_known;
use saint_ir::{ApiLevel, ClassBuilder, ClassDef, ClassOrigin, InvokeKind, MethodRef, MethodSig};
use saintdroid::MismatchKind;

use crate::truth::GroundTruthIssue;

/// Classes plus implied ground truth.
#[derive(Debug, Default)]
pub struct Injection {
    /// Classes to add to the app.
    pub classes: Vec<ClassDef>,
    /// Known issues these classes carry.
    pub truth: Vec<GroundTruthIssue>,
}

impl Injection {
    /// Merges another injection into this one.
    #[must_use]
    pub fn merge(mut self, other: Injection) -> Self {
        self.classes.extend(other.classes);
        self.truth.extend(other.truth);
        self
    }
}

fn activity_class(name: &str) -> ClassBuilder {
    ClassBuilder::new(name, ClassOrigin::App).extends("android.app.Activity")
}

/// A real issue: `class.method` calls `api` with no guard. The caller
/// guarantees the app's `minSdkVersion` lies outside the API's
/// lifetime.
#[must_use]
pub fn unguarded_api_call(
    class: &str,
    method: &str,
    api: MethodRef,
    note: &'static str,
) -> Injection {
    let api2 = api.clone();
    let site_ref = MethodRef::new(class, method, "()V");
    let built = activity_class(class)
        .method(method, "()V", move |b| {
            b.pad(3);
            b.invoke_virtual(api2, &[], None);
            b.ret_void();
        })
        .unwrap()
        // Lifecycle driver: the framework invokes onCreate, which
        // reaches the site — this is the execution path a dynamic
        // verifier replays.
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            b.invoke_virtual(site_ref, &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        truth: vec![GroundTruthIssue {
            kind: MismatchKind::ApiInvocation,
            site: MethodRef::new(class, method, "()V"),
            api,
            note,
        }],
        classes: vec![built],
    }
}

/// Safe code that flow-insensitive tools misreport: the call is wrapped
/// in a correct `SDK_INT >= level` guard in the same method.
#[must_use]
pub fn guarded_api_call(class: &str, method: &str, api: MethodRef, level: u8) -> Injection {
    let built = activity_class(class)
        .method(method, "()V", move |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(level));
            b.switch_to(then_blk);
            b.invoke_virtual(api, &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        classes: vec![built],
        truth: Vec::new(),
    }
}

/// Safe code that context-insensitive tools misreport: the guard lives
/// in the caller, the call in a private helper only reachable through
/// it (paper §V-A: CID "does not track guard conditions across
/// function calls").
#[must_use]
pub fn cross_method_guarded(class: &str, api: MethodRef, level: u8) -> Injection {
    let helper_ref = MethodRef::new(class, "applyNewApi", "()V");
    let helper_ref2 = helper_ref.clone();
    let built = activity_class(class)
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(level));
            b.switch_to(then_blk);
            b.invoke_virtual(helper_ref2, &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        })
        .unwrap()
        .method("applyNewApi", "()V", move |b| {
            b.invoke_virtual(api, &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        classes: vec![built],
        truth: Vec::new(),
    }
}

/// A real APC issue: `class` (extending `super_class`) overrides the
/// framework method `api` outside its lifetime.
#[must_use]
pub fn callback_override(
    class: &str,
    super_class: &str,
    sig: MethodSig,
    api: MethodRef,
    note: &'static str,
) -> Injection {
    let built = ClassBuilder::new(class, ClassOrigin::App)
        .extends(super_class)
        .method(&*sig.name, &*sig.descriptor, |b| {
            b.pad(2);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        truth: vec![GroundTruthIssue {
            kind: MismatchKind::ApiCallback,
            site: sig.on_class(class),
            api,
            note,
        }],
        classes: vec![built],
    }
}

/// A real APC issue hidden in an anonymous inner class — ground truth
/// that SAINTDroid knowingly misses (paper §VI); reproduces the
/// "40 of 42" recall shape.
#[must_use]
pub fn anonymous_callback_override(
    outer: &str,
    super_class: &str,
    sig: MethodSig,
    api: MethodRef,
    note: &'static str,
) -> Injection {
    let anon_name = format!("{outer}$1");
    let anon = ClassBuilder::new(anon_name.as_str(), ClassOrigin::App)
        .extends(super_class)
        .method(&*sig.name, &*sig.descriptor, |b| {
            b.ret_void();
        })
        .unwrap()
        .build();
    let anon_ctor = MethodRef::new(anon_name.as_str(), "<init>", "()V");
    let outer_cls = activity_class(outer)
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            let r = b.alloc_reg();
            b.new_instance(r, anon_name.as_str());
            b.invoke(InvokeKind::Direct, anon_ctor, &[r], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        truth: vec![GroundTruthIssue {
            kind: MismatchKind::ApiCallback,
            site: sig.on_class(format!("{outer}$1").as_str()),
            api,
            note,
        }],
        classes: vec![outer_cls, anon],
    }
}

/// Safe code SAINTDroid misreports: the only call into the unguarded
/// helper goes through an anonymous inner class that performs the
/// guard. Because anonymous classes are invisible to the analysis
/// (paper §VI), the helper looks like an unguarded entry point — the
/// paper's documented false-alarm mechanism.
#[must_use]
pub fn anon_guarded_helper(outer: &str, api: MethodRef, level: u8) -> Injection {
    let helper_ref = MethodRef::new(outer, "newApiPath", "()V");
    let anon_name = format!("{outer}$1");
    let anon = ClassBuilder::new(anon_name.as_str(), ClassOrigin::App)
        .extends("java.lang.Object")
        .method("run", "()V", move |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(level));
            b.switch_to(then_blk);
            b.invoke_virtual(helper_ref, &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        })
        .unwrap()
        .build();
    let anon_ctor = MethodRef::new(format!("{outer}$1").as_str(), "<init>", "()V");
    let outer_cls = activity_class(outer)
        .method("newApiPath", "()V", move |b| {
            b.invoke_virtual(api, &[], None);
            b.ret_void();
        })
        .unwrap()
        // Listener registration: the anon instance is created in
        // onCreate; its run() fires later, framework-driven.
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            let r = b.alloc_reg();
            b.new_instance(r, format!("{outer}$1").as_str());
            b.invoke(InvokeKind::Direct, anon_ctor, &[r], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        classes: vec![outer_cls, anon],
        truth: Vec::new(),
    }
}

/// A real deep issue: `class.method` calls a framework facade whose
/// body reaches `deep_api` beyond the first framework level — only
/// tools that analyze framework code can see it.
#[must_use]
pub fn deep_facade_call(
    class: &str,
    method: &str,
    facade: MethodRef,
    deep_api: MethodRef,
    note: &'static str,
) -> Injection {
    let site_ref = MethodRef::new(class, method, "()V");
    let built = activity_class(class)
        .method(method, "()V", move |b| {
            b.pad(2);
            b.invoke_virtual(facade, &[], None);
            b.ret_void();
        })
        .unwrap()
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            b.invoke_virtual(site_ref, &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        truth: vec![GroundTruthIssue {
            kind: MismatchKind::ApiInvocation,
            site: MethodRef::new(class, method, "()V"),
            api: deep_api,
            note,
        }],
        classes: vec![built],
    }
}

/// A dangerous-permission usage: `class.method` calls `api` (mapped to
/// a dangerous permission). Whether it is a request or revocation
/// mismatch depends on the app's `targetSdkVersion`, which the caller
/// supplies as `kind`.
#[must_use]
pub fn dangerous_usage(
    class: &str,
    method: &str,
    api: MethodRef,
    kind: MismatchKind,
    note: &'static str,
) -> Injection {
    let api2 = api.clone();
    let site_ref = MethodRef::new(class, method, "()V");
    let built = activity_class(class)
        .method(method, "()V", move |b| {
            b.pad(2);
            b.invoke_virtual(api2, &[], None);
            b.ret_void();
        })
        .unwrap()
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            b.invoke_virtual(site_ref, &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        truth: vec![GroundTruthIssue {
            kind,
            site: MethodRef::new(class, method, "()V"),
            api,
            note,
        }],
        classes: vec![built],
    }
}

/// The runtime-permission handler that silences Algorithm 4 for
/// target ≥ 23 apps.
#[must_use]
pub fn permission_handler(class: &str) -> Injection {
    let built = activity_class(class)
        .method(
            "onRequestPermissionsResult",
            "(I[Ljava/lang/String;[I)V",
            |b| {
                b.ret_void();
            },
        )
        .unwrap()
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::activity_compat_request_permissions(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        classes: vec![built],
        truth: Vec::new(),
    }
}

/// Benign filler: `n_methods` methods calling always-available APIs,
/// sized by `weight`. Keeps app sizes (and analysis effort) realistic.
#[must_use]
pub fn filler(class: &str, n_methods: usize, weight: usize) -> Injection {
    let mut cb = ClassBuilder::new(class, ClassOrigin::App).extends("java.lang.Object");
    for i in 0..n_methods {
        cb = cb
            .method(format!("work{i}"), "()V", |b| {
                b.pad(weight);
                b.invoke_virtual(
                    MethodRef::new(
                        "java.lang.StringBuilder",
                        "append",
                        "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
                    ),
                    &[],
                    None,
                );
                b.invoke_virtual(well_known::activity_set_content_view(), &[], None);
                b.ret_void();
            })
            .unwrap();
    }
    Injection {
        classes: vec![cb.build()],
        truth: Vec::new(),
    }
}

/// Library filler (third-party code bundled in the dex): invisible to
/// source-scoped tools like Lint.
#[must_use]
pub fn library_filler(class: &str, n_methods: usize, weight: usize) -> Injection {
    let mut cb = ClassBuilder::new(class, ClassOrigin::Library).extends("java.lang.Object");
    for i in 0..n_methods {
        cb = cb
            .method(format!("lib{i}"), "()V", |b| {
                b.pad(weight);
                b.ret_void();
            })
            .unwrap();
    }
    Injection {
        classes: vec![cb.build()],
        truth: Vec::new(),
    }
}

/// A real issue inside bundled *library* code: source-scoped tools
/// (Lint) never see it.
#[must_use]
pub fn library_unguarded_call(
    class: &str,
    method: &str,
    api: MethodRef,
    note: &'static str,
) -> Injection {
    let api2 = api.clone();
    let site_ref = MethodRef::new(class, method, "()V");
    let built = ClassBuilder::new(class, ClassOrigin::Library)
        .extends("java.lang.Object")
        .method(method, "()V", move |b| {
            b.pad(3);
            b.invoke_virtual(api2, &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    // The app-side driver that exercises the library (real apps call
    // into their bundled libraries from lifecycle code).
    let driver_name = format!("{}Driver", class.replace('.', "_"));
    let driver = activity_class(format!("app.drivers.{driver_name}").as_str())
        .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
            b.invoke_virtual(site_ref, &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    Injection {
        truth: vec![GroundTruthIssue {
            kind: MismatchKind::ApiInvocation,
            site: MethodRef::new(class, method, "()V"),
            api,
            note,
        }],
        classes: vec![built, driver],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_merge() {
        let a = unguarded_api_call("p.A", "m", well_known::context_get_color_state_list(), "t");
        let b = guarded_api_call("p.B", "m", well_known::context_get_drawable(), 21);
        let merged = a.merge(b);
        assert_eq!(merged.classes.len(), 2);
        assert_eq!(merged.truth.len(), 1);
    }

    #[test]
    fn anonymous_patterns_have_anon_class() {
        let inj = anonymous_callback_override(
            "p.Outer",
            "android.webkit.WebViewClient",
            MethodSig::new(
                "onPageCommitVisible",
                "(Landroid/webkit/WebView;Ljava/lang/String;)V",
            ),
            MethodRef::new(
                "android.webkit.WebViewClient",
                "onPageCommitVisible",
                "(Landroid/webkit/WebView;Ljava/lang/String;)V",
            ),
            "t",
        );
        assert!(inj.classes.iter().any(|c| c.name.is_anonymous_inner()));
        assert_eq!(inj.truth.len(), 1);
    }

    #[test]
    fn bait_patterns_carry_no_truth() {
        assert!(
            guarded_api_call("p.A", "m", well_known::context_get_drawable(), 21)
                .truth
                .is_empty()
        );
        assert!(
            cross_method_guarded("p.B", well_known::context_get_drawable(), 21)
                .truth
                .is_empty()
        );
        assert!(
            anon_guarded_helper("p.C", well_known::context_get_drawable(), 21)
                .truth
                .is_empty()
        );
        assert!(permission_handler("p.D").truth.is_empty());
    }

    #[test]
    fn filler_scales() {
        let f = filler("p.F", 10, 50);
        assert_eq!(f.classes[0].methods.len(), 10);
        assert!(f.classes[0].size_bytes() > 1000);
    }
}
