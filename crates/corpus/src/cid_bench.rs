//! CID-Bench: the seven micro-benchmark apps of Li et al., each
//! exercising one API-resolution corner (the paper's Table II lower
//! half): basic calls, forward compatibility, overload disambiguation,
//! inheritance, guard "protection" (two variants) and vararg-style
//! signatures.

use saint_adf::well_known;
use saint_ir::{ApiLevel, ApkBuilder, MethodRef};

use crate::patterns::{
    cross_method_guarded, filler, guarded_api_call, unguarded_api_call, Injection,
};
use crate::truth::{BenchApp, Suite};

fn assemble(
    name: &'static str,
    package: &'static str,
    min: u8,
    target: u8,
    injections: Vec<Injection>,
) -> BenchApp {
    let mut builder = ApkBuilder::new(package, ApiLevel::new(min), ApiLevel::new(target));
    let mut truth = Vec::new();
    for inj in injections {
        for class in inj.classes {
            builder = builder.class(class).expect("unique class names");
        }
        truth.extend(inj.truth);
    }
    BenchApp {
        name,
        suite: Suite::CidBench,
        apk: builder.build(),
        truth,
    }
}

/// Builds the seven CID-Bench apps.
#[must_use]
pub fn cid_bench() -> Vec<BenchApp> {
    vec![
        // Basic: a plain unguarded call to a newer API.
        assemble(
            "Basic",
            "bench.cid.basic",
            21,
            25,
            vec![
                unguarded_api_call(
                    "bench.cid.basic.Main",
                    "run",
                    well_known::context_get_color_state_list(),
                    "basic: getColorStateList (23) with min 21",
                ),
                filler("bench.cid.basic.Util", 4, 15),
            ],
        ),
        // Forward: calling an API the platform later removed.
        assemble(
            "Forward",
            "bench.cid.forward",
            21,
            28,
            vec![
                unguarded_api_call(
                    "bench.cid.forward.Main",
                    "fetch",
                    well_known::http_client_execute(),
                    "forward: HttpClient.execute removed at 23, supported range reaches 29",
                ),
                filler("bench.cid.forward.Util", 4, 15),
            ],
        ),
        // GenericType: two overloads with different lifetimes; the call
        // targets the newer descriptor.
        assemble(
            "GenericType",
            "bench.cid.generictype",
            21,
            25,
            vec![
                unguarded_api_call(
                    "bench.cid.generictype.Main",
                    "intercept",
                    MethodRef::new(
                        "android.webkit.WebViewClient",
                        "shouldOverrideUrlLoading",
                        "(Landroid/webkit/WebView;Landroid/webkit/WebResourceRequest;)Z",
                    ),
                    "overload: shouldOverrideUrlLoading(WebResourceRequest) (24) with min 21",
                ),
                filler("bench.cid.generictype.Util", 4, 15),
            ],
        ),
        // Inheritance: the call is written against the app's own
        // subclass; only hierarchy-aware resolution lands on the API.
        assemble(
            "Inheritance",
            "bench.cid.inheritance",
            8,
            25,
            vec![
                {
                    let api = well_known::activity_get_fragment_manager();
                    let this_call = MethodRef::new(
                        "bench.cid.inheritance.Main",
                        "getFragmentManager",
                        "()Landroid/app/FragmentManager;",
                    );
                    let built = saint_ir::ClassBuilder::new(
                        "bench.cid.inheritance.Main",
                        saint_ir::ClassOrigin::App,
                    )
                    .extends("android.app.Activity")
                    .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
                        b.invoke_virtual(this_call, &[], None);
                        b.ret_void();
                    })
                    .unwrap()
                    .build();
                    Injection {
                        truth: vec![crate::truth::GroundTruthIssue {
                            kind: saintdroid::MismatchKind::ApiInvocation,
                            site: MethodRef::new(
                                "bench.cid.inheritance.Main",
                                "onCreate",
                                "(Landroid/os/Bundle;)V",
                            ),
                            api,
                            note: "inheritance: this.getFragmentManager() (11) with min 8",
                        }],
                        classes: vec![built],
                    }
                },
                filler("bench.cid.inheritance.Util", 4, 15),
            ],
        ),
        // Protection: properly guarded in the same method — no issue;
        // flow-insensitive tools misreport.
        assemble(
            "Protection",
            "bench.cid.protection",
            21,
            25,
            vec![
                guarded_api_call(
                    "bench.cid.protection.Main",
                    "run",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("bench.cid.protection.Util", 4, 15),
            ],
        ),
        // Protection2: guard in the caller, call in the callee — no
        // issue; context-insensitive tools misreport.
        assemble(
            "Protection2",
            "bench.cid.protection2",
            21,
            25,
            vec![
                cross_method_guarded(
                    "bench.cid.protection2.Main",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("bench.cid.protection2.Util", 4, 15),
            ],
        ),
        // Varargs: an array-typed signature (String[], int).
        assemble(
            "Varargs",
            "bench.cid.varargs",
            21,
            25,
            vec![
                unguarded_api_call(
                    "bench.cid.varargs.Main",
                    "ask",
                    well_known::activity_request_permissions(),
                    "varargs: requestPermissions(String[], int) (23) with min 21",
                ),
                filler("bench.cid.varargs.Util", 4, 15),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_apps() {
        let apps = cid_bench();
        assert_eq!(apps.len(), 7);
        let names: Vec<_> = apps.iter().map(|a| a.name).collect();
        assert_eq!(
            names,
            vec![
                "Basic",
                "Forward",
                "GenericType",
                "Inheritance",
                "Protection",
                "Protection2",
                "Varargs"
            ]
        );
    }

    #[test]
    fn protection_apps_are_clean() {
        for app in cid_bench() {
            if app.name.starts_with("Protection") {
                assert!(app.truth.is_empty(), "{} must be issue-free", app.name);
            } else {
                assert_eq!(app.truth.len(), 1, "{}", app.name);
            }
        }
    }

    #[test]
    fn suite_tag_set() {
        assert!(cid_bench().iter().all(|a| a.suite == Suite::CidBench));
    }
}
