//! The planted-defect golden corpus for the comparative harness.
//!
//! Six small apps whose ground truth is known *exactly*, covering all
//! four mismatch families — the three AMD families of the paper plus
//! the declared-SDK consistency (DSD) family. Unlike the rebuilt
//! CID/CIDER benches (whose truth mirrors the published tables), these
//! apps are constructed so each defect's anchoring site, API, and — for
//! DSD — the implicated level span are pinned by construction, which is
//! what lets the harness assert per-family precision/recall floors in
//! CI instead of eyeballing a table.

use saint_adf::well_known;
use saint_ir::{ApiLevel, ApkBuilder, MethodRef, Permission};
use saintdroid::MismatchKind;

use crate::patterns::{
    callback_override, dangerous_usage, filler, guarded_api_call, unguarded_api_call, Injection,
};
use crate::truth::{BenchApp, GroundTruthIssue, Suite};

#[allow(clippy::too_many_arguments)]
fn assemble(
    name: &'static str,
    package: &'static str,
    min: u8,
    target: u8,
    max: Option<u8>,
    permissions: Vec<Permission>,
    injections: Vec<Injection>,
) -> BenchApp {
    let mut builder = ApkBuilder::new(package, ApiLevel::new(min), ApiLevel::new(target));
    if let Some(m) = max {
        builder = builder
            .max_sdk(ApiLevel::new(m))
            .expect("planted max >= min");
    }
    for p in permissions {
        builder = builder.permission(p);
    }
    let mut truth = Vec::new();
    for inj in injections {
        for class in inj.classes {
            builder = builder.class(class).expect("unique class names");
        }
        truth.extend(inj.truth);
    }
    BenchApp {
        name,
        suite: Suite::Planted,
        apk: builder.build(),
        truth,
    }
}

/// The call site `class.run()V` as the DSD detectors anchor it.
fn run_site(class: &str) -> MethodRef {
    MethodRef::new(class, "run", "()V")
}

/// Builds the six planted apps.
#[must_use]
pub fn planted_suite() -> Vec<BenchApp> {
    vec![
        // DSD overuse: the floor (21) lets devices below the API's
        // introduction level (23) install the app; the unguarded call
        // is simultaneously an API invocation mismatch.
        assemble(
            "Planted-Overuse",
            "bench.planted.overuse",
            21,
            28,
            None,
            Vec::new(),
            vec![
                {
                    let mut inj = unguarded_api_call(
                        "bench.planted.overuse.Main",
                        "run",
                        well_known::context_get_color_state_list(),
                        "overuse: getColorStateList (23) unguarded with min 21",
                    );
                    inj.truth.push(GroundTruthIssue {
                        kind: MismatchKind::DsdOveruse,
                        site: run_site("bench.planted.overuse.Main"),
                        api: well_known::context_get_color_state_list(),
                        note: "declared floor 21 admits levels 21-22 at the call site",
                    });
                    inj
                },
                filler("bench.planted.overuse.Util", 4, 15),
            ],
        ),
        // DSD underuse (floor): min 26 excludes levels 23..=25 although
        // the most demanding API used only needs 23. Not an invocation
        // mismatch — the API exists on every supported level.
        assemble(
            "Planted-Underuse",
            "bench.planted.underuse",
            26,
            28,
            None,
            Vec::new(),
            vec![
                {
                    let mut inj = unguarded_api_call(
                        "bench.planted.underuse.Main",
                        "run",
                        well_known::context_get_color_state_list(),
                        "",
                    );
                    inj.truth = vec![GroundTruthIssue {
                        kind: MismatchKind::DsdUnderuse,
                        site: run_site("bench.planted.underuse.Main"),
                        api: well_known::context_get_color_state_list(),
                        note: "declared floor 26 needlessly excludes levels 23-25",
                    }];
                    inj
                },
                filler("bench.planted.underuse.Util", 4, 15),
            ],
        ),
        // DSD underuse (ceiling): a declared maxSdkVersion of 22 below
        // the API's introduction level (23) makes the call unreachable
        // on every supported level — also an invocation mismatch.
        assemble(
            "Planted-Ceiling",
            "bench.planted.ceiling",
            19,
            22,
            Some(22),
            Vec::new(),
            vec![
                {
                    let mut inj = unguarded_api_call(
                        "bench.planted.ceiling.Main",
                        "run",
                        well_known::context_get_color_state_list(),
                        "ceiling: getColorStateList (23) with declared max 22",
                    );
                    inj.truth.push(GroundTruthIssue {
                        kind: MismatchKind::DsdUnderuse,
                        site: run_site("bench.planted.ceiling.Main"),
                        api: well_known::context_get_color_state_list(),
                        note: "declared ceiling 22 predates the API's introduction (23)",
                    });
                    inj
                },
                filler("bench.planted.ceiling.Util", 4, 15),
            ],
        ),
        // Precision bait: a correctly guarded call with a consistent
        // floor. Clean for every family; flow-insensitive tools and an
        // over-eager DSD detector misreport here.
        assemble(
            "Planted-CleanGuard",
            "bench.planted.clean",
            21,
            28,
            None,
            Vec::new(),
            vec![
                guarded_api_call(
                    "bench.planted.clean.Main",
                    "run",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("bench.planted.clean.Util", 4, 15),
            ],
        ),
        // PRM: a dangerous-permission usage under target >= 23 with no
        // runtime-request handler.
        assemble(
            "Planted-Permission",
            "bench.planted.permission",
            19,
            26,
            None,
            vec![Permission::android("WRITE_EXTERNAL_STORAGE")],
            vec![
                dangerous_usage(
                    "bench.planted.permission.Main",
                    "export",
                    well_known::get_external_storage_directory(),
                    MismatchKind::PermissionRequest,
                    "WRITE_EXTERNAL_STORAGE used, target 26, no runtime request",
                ),
                filler("bench.planted.permission.Util", 4, 15),
            ],
        ),
        // APC: a lifecycle callback overridden below its introduction
        // level.
        assemble(
            "Planted-Callback",
            "bench.planted.callback",
            19,
            26,
            None,
            Vec::new(),
            vec![
                callback_override(
                    "bench.planted.callback.NoteFragment",
                    "android.app.Fragment",
                    well_known::fragment_on_attach_context_sig(),
                    MethodRef::new(
                        "android.app.Fragment",
                        "onAttach",
                        "(Landroid/content/Context;)V",
                    ),
                    "Fragment.onAttach(Context) (23) with min 19",
                ),
                filler("bench.planted.callback.Util", 4, 15),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use saint_adf::AndroidFramework;
    use saintdroid::{DetectorSet, SaintDroid};

    use crate::truth::score;

    #[test]
    fn six_apps_with_pinned_truth_shape() {
        let apps = planted_suite();
        assert_eq!(apps.len(), 6);
        assert!(apps.iter().all(|a| a.suite == Suite::Planted));
        let count = |kind: MismatchKind| {
            apps.iter()
                .flat_map(|a| &a.truth)
                .filter(|t| t.kind == kind)
                .count()
        };
        assert_eq!(count(MismatchKind::DsdOveruse), 1);
        assert_eq!(count(MismatchKind::DsdUnderuse), 2);
        assert_eq!(count(MismatchKind::ApiInvocation), 2);
        assert_eq!(count(MismatchKind::ApiCallback), 1);
        assert_eq!(count(MismatchKind::PermissionRequest), 1);
        let clean = apps.iter().find(|a| a.name == "Planted-CleanGuard");
        assert!(clean.expect("clean app").truth.is_empty());
    }

    /// The golden pin behind the CI recall floor: SAINTDroid with every
    /// family enabled scores perfect precision *and* recall on the DSD
    /// family of this corpus.
    #[test]
    fn saintdroid_all_is_exact_on_the_dsd_family() {
        let tool = SaintDroid::new(Arc::new(AndroidFramework::curated()))
            .with_detectors(DetectorSet::all());
        let mut total = crate::truth::Accuracy::default();
        for app in planted_suite() {
            let report = tool.run(&app.apk);
            total.absorb(score(
                &report,
                &app.truth,
                Some(&[MismatchKind::DsdOveruse, MismatchKind::DsdUnderuse]),
            ));
        }
        assert_eq!(total.tp, 3, "all three planted DSD defects found");
        assert_eq!(total.fp, 0, "no spurious DSD findings");
        assert_eq!(total.fn_, 0, "no missed DSD defects");
    }
}
