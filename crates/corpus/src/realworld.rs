//! The real-world corpus generator.
//!
//! The paper's RQ2/RQ3 corpus is 3,571 apps from F-Droid and AndroZoo.
//! This generator produces a corpus of the same order with the same
//! *measured* structure: target-SDK split (1,815 apps ≥ 23 vs 1,756
//! below), API-mismatch prevalence (41.19 % of apps, 68,268 sites
//! total), callback-mismatch prevalence (20.05 %, 2,115 sites),
//! permission-mismatch rates per group (12.34 % / 68.68 %), a Figure-3
//! style KLOC distribution with outliers, and plenty of benign and
//! *bait* code (guarded calls) to keep precision measurements honest.
//!
//! Every app is generated independently from `hash(seed, index)`, so
//! the corpus streams: harnesses can ask for app 2,847 without
//! materializing the other 3,570.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use saint_adf::spec::{FrameworkSpec, LifeSpan};
use saint_adf::{well_known, SynthConfig};
use saint_ir::{
    ApiLevel, Apk, ApkBuilder, ClassBuilder, ClassOrigin, MethodRef, MethodSig, Permission,
};
use serde::{Deserialize, Serialize};

use crate::patterns::{self, Injection};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RealWorldConfig {
    /// Number of apps in the corpus.
    pub apps: usize,
    /// Corpus seed.
    pub seed: u64,
    /// The synthetic-framework expansion the corpus is generated
    /// against; filler code calls into its always-available methods to
    /// exercise lazy loading without fabricating mismatches. Must match
    /// the [`SynthConfig`] used to build the analyzed framework.
    pub synth: SynthConfig,
    /// Scale factor on app sizes (1.0 = paper-like KLOC distribution).
    pub size_scale: f64,
    /// Pins every app's `targetSdk` to one level. `None` keeps the
    /// paper's RQ2 split (50.83 % targeting ≥ 23, the rest spread over
    /// 14–22). Pinning models a *modern* corpus: store policies force
    /// large maintained apps onto the same recent target, which is what
    /// makes level-keyed analysis caches shareable across them.
    pub force_target: Option<u8>,
    /// Skews the per-app API vocabulary toward the head of the safe
    /// menu: `0.0` (the default) keeps the historical uniform draw;
    /// `s > 0` draws index `⌊len · u^(1+s)⌋` for uniform `u`, modeling
    /// the head-heavy platform usage real corpora exhibit (a handful of
    /// core classes serve most call sites).
    pub api_skew: f64,
}

impl RealWorldConfig {
    /// The paper-scale corpus: 3,571 apps.
    #[must_use]
    pub fn paper() -> Self {
        RealWorldConfig {
            apps: 3571,
            seed: 0xD501D,
            synth: SynthConfig::paper(),
            size_scale: 1.0,
            force_target: None,
            api_skew: 0.0,
        }
    }

    /// A small corpus for tests (60 apps, smaller bodies).
    #[must_use]
    pub fn small() -> Self {
        RealWorldConfig {
            apps: 60,
            seed: 0xD501D,
            synth: SynthConfig::small(),
            size_scale: 0.2,
            force_target: None,
            api_skew: 0.0,
        }
    }

    /// A mid-size corpus for integration tests (400 apps).
    #[must_use]
    pub fn medium() -> Self {
        RealWorldConfig {
            apps: 400,
            seed: 0xD501D,
            synth: SynthConfig::medium(),
            size_scale: 0.5,
            force_target: None,
            api_skew: 0.0,
        }
    }
}

/// Counts of what the generator injected into one app — the per-app
/// ground truth used for RQ2 precision sampling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedCounts {
    /// API invocation mismatch sites.
    pub api: usize,
    /// API callback mismatch sites.
    pub apc: usize,
    /// Permission request mismatch sites.
    pub prm_request: usize,
    /// Permission revocation mismatch sites.
    pub prm_revocation: usize,
    /// Guarded/bait patterns (safe code).
    pub baits: usize,
}

/// One generated real-world app.
#[derive(Debug)]
pub struct RealWorldApp {
    /// Corpus index.
    pub index: usize,
    /// The app package.
    pub apk: Apk,
    /// What was injected.
    pub injected: InjectedCounts,
}

/// API-invocation menu: `(api, since)` pairs drawn for injections.
fn api_menu() -> Vec<(MethodRef, u8)> {
    vec![
        (well_known::context_get_color_state_list(), 23),
        (well_known::context_get_drawable(), 21),
        (
            MethodRef::new(
                "android.view.View",
                "setBackgroundTintList",
                "(Landroid/content/res/ColorStateList;)V",
            ),
            21,
        ),
        (well_known::webview_evaluate_javascript(), 19),
        (well_known::create_notification_channel(), 26),
        (
            MethodRef::new(
                "android.webkit.WebView",
                "postWebMessage",
                "(Landroid/webkit/WebMessage;Landroid/net/Uri;)V",
            ),
            23,
        ),
        (
            MethodRef::new("android.widget.TextView", "setTextAppearance", "(I)V"),
            23,
        ),
        (
            MethodRef::new("android.content.Context", "getColor", "(I)I"),
            23,
        ),
        (
            MethodRef::new(
                "android.content.Context",
                "createDeviceProtectedStorageContext",
                "()Landroid/content/Context;",
            ),
            24,
        ),
        (
            MethodRef::new(
                "android.view.View",
                "setTooltipText",
                "(Ljava/lang/CharSequence;)V",
            ),
            26,
        ),
    ]
}

/// Callback menu: `(super class, signature, declaring api, since)`.
fn apc_menu() -> Vec<(&'static str, MethodSig, MethodRef, u8)> {
    vec![
        (
            "android.app.Fragment",
            well_known::fragment_on_attach_context_sig(),
            MethodRef::new(
                "android.app.Fragment",
                "onAttach",
                "(Landroid/content/Context;)V",
            ),
            23,
        ),
        (
            "android.widget.LinearLayout",
            well_known::view_drawable_hotspot_changed_sig(),
            MethodRef::new("android.view.View", "drawableHotspotChanged", "(FF)V"),
            21,
        ),
        (
            "android.app.Activity",
            MethodSig::new("onMultiWindowModeChanged", "(Z)V"),
            MethodRef::new("android.app.Activity", "onMultiWindowModeChanged", "(Z)V"),
            24,
        ),
        (
            "android.webkit.WebView",
            MethodSig::new(
                "onProvideVirtualStructure",
                "(Landroid/view/ViewStructure;)V",
            ),
            MethodRef::new(
                "android.webkit.WebView",
                "onProvideVirtualStructure",
                "(Landroid/view/ViewStructure;)V",
            ),
            23,
        ),
        (
            "android.app.Service",
            MethodSig::new("onTaskRemoved", "(Landroid/content/Intent;)V"),
            MethodRef::new(
                "android.app.Service",
                "onTaskRemoved",
                "(Landroid/content/Intent;)V",
            ),
            14,
        ),
        (
            "android.view.View",
            MethodSig::new("onVisibilityAggregated", "(Z)V"),
            MethodRef::new("android.view.View", "onVisibilityAggregated", "(Z)V"),
            24,
        ),
    ]
}

/// Dangerous-usage menu: `(api, permission short name)`.
fn prm_menu() -> Vec<(MethodRef, &'static str)> {
    vec![
        (well_known::camera_open(), "CAMERA"),
        (
            well_known::get_external_storage_directory(),
            "WRITE_EXTERNAL_STORAGE",
        ),
        (
            well_known::request_location_updates(),
            "ACCESS_FINE_LOCATION",
        ),
        (
            MethodRef::new("android.media.AudioRecord", "startRecording", "()V"),
            "RECORD_AUDIO",
        ),
        (
            MethodRef::new(
                "android.accounts.AccountManager",
                "getAccounts",
                "()[Landroid/accounts/Account;",
            ),
            "GET_ACCOUNTS",
        ),
    ]
}

/// Extracts the *always-available* synthetic framework methods from a
/// spec: filler code may call these at any `minSdkVersion` without
/// creating a mismatch, so corpus apps exercise lazy class loading
/// without perturbing the calibrated issue rates.
#[must_use]
pub fn safe_framework_menu(spec: &FrameworkSpec) -> Vec<MethodRef> {
    spec.classes()
        .filter(|c| c.name.as_str().starts_with("android.gen.") && c.life == LifeSpan::always())
        .flat_map(|c| {
            c.methods
                .iter()
                .filter(|m| m.life == LifeSpan::always() && !m.is_abstract)
                .map(move |m| c.method_ref(&m.name, &m.descriptor))
        })
        .collect()
}

/// Generates app `index` of the corpus. Deterministic in
/// `(cfg.seed, index)` given the safe menu derived from `cfg.synth`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate_app(cfg: &RealWorldConfig, index: usize, safe_menu: &[MethodRef]) -> RealWorldApp {
    let mut rng =
        SmallRng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let package = format!("rw.gen.app{index}");

    // Target split per RQ2: 1,815 of 3,571 (50.83 %) target ≥ 23. The
    // split is always drawn (keeping the RNG stream identical across
    // configurations) and only then overridden by `force_target`.
    let modern = rng.gen_bool(0.5083);
    let drawn: u8 = if modern {
        rng.gen_range(23..=28)
    } else {
        rng.gen_range(14..=22)
    };
    let target: u8 = cfg.force_target.unwrap_or(drawn);
    let min: u8 = rng.gen_range(8..=(drawn - 4).max(9)).min(target);

    let mut builder = ApkBuilder::new(package, ApiLevel::new(min), ApiLevel::new(target));
    let mut injected = InjectedCounts::default();
    let mut injections: Vec<Injection> = Vec::new();
    let menu = api_menu();

    // --- API invocation mismatches: 41.19 % of apps, heavy-tailed
    // per-app counts averaging ≈ 46 sites (68,268 / 1,471). Roughly 15 %
    // of the *reported* sites per affected app are actually safe —
    // helpers only reachable through guard logic inside anonymous inner
    // classes, which SAINTDroid cannot see (paper §VI) — reproducing
    // the 85 % API precision of the paper's RQ2 sample.
    if rng.gen_bool(0.4119) {
        let eligible: Vec<&(MethodRef, u8)> =
            menu.iter().filter(|(_, s)| *s > min && *s <= 28).collect();
        if !eligible.is_empty() {
            let count = 1 + (rng.gen::<f64>().powi(2) * 135.0) as usize;
            let fp_sites = ((count as f64) * 0.16).round() as usize;
            let real = count - fp_sites;
            let class = format!("rw.gen.app{index}.Issues");
            let mut cb =
                ClassBuilder::new(class.as_str(), ClassOrigin::App).extends("android.app.Activity");
            for site in 0..real {
                let (api, _) = eligible[rng.gen_range(0..eligible.len())].clone();
                cb = cb
                    .method(format!("reach{site}"), "()V", move |b| {
                        b.pad(2);
                        b.invoke_virtual(api, &[], None);
                        b.ret_void();
                    })
                    .expect("unique generated names");
            }
            // Anon-guarded helpers: the helper methods carry unguarded
            // calls but are only ever invoked from the guard inside
            // Issues$1.run().
            for site in 0..fp_sites {
                let (api, _) = eligible[rng.gen_range(0..eligible.len())].clone();
                cb = cb
                    .method(format!("fromListener{site}"), "()V", move |b| {
                        b.pad(2);
                        b.invoke_virtual(api, &[], None);
                        b.ret_void();
                    })
                    .expect("unique generated names");
            }
            // Lifecycle driver: onCreate reaches every real site; the
            // listener helpers are only reachable through Issues$1.
            let real_for_driver = real;
            let anon_ctor = MethodRef::new(format!("{class}$1").as_str(), "<init>", "()V");
            let class_for_driver = class.clone();
            let has_anon = fp_sites > 0;
            cb = cb
                .method("onCreate", "(Landroid/os/Bundle;)V", move |b| {
                    for site in 0..real_for_driver {
                        b.invoke_virtual(
                            MethodRef::new(
                                class_for_driver.as_str(),
                                format!("reach{site}").as_str(),
                                "()V",
                            ),
                            &[],
                            None,
                        );
                    }
                    if has_anon {
                        let r = b.alloc_reg();
                        b.new_instance(r, format!("{class_for_driver}$1").as_str());
                        b.invoke(saint_ir::InvokeKind::Direct, anon_ctor, &[r], None);
                    }
                    b.ret_void();
                })
                .expect("unique generated names");
            let mut classes = vec![cb.build()];
            if fp_sites > 0 {
                let outer = class.clone();
                let anon = ClassBuilder::new(format!("{class}$1").as_str(), ClassOrigin::App)
                    .extends("java.lang.Object")
                    .method("run", "()V", move |b| {
                        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(28));
                        b.switch_to(then_blk);
                        for site in 0..fp_sites {
                            b.invoke_virtual(
                                MethodRef::new(
                                    outer.as_str(),
                                    format!("fromListener{site}").as_str(),
                                    "()V",
                                ),
                                &[],
                                None,
                            );
                        }
                        b.goto(join);
                        b.switch_to(join);
                        b.ret_void();
                    })
                    .expect("valid anon body")
                    .build();
                classes.push(anon);
            }
            injections.push(Injection {
                classes,
                truth: Vec::new(),
            });
            injected.api = real;
            injected.baits += fp_sites;
        }
    }

    // --- APC mismatches: 20.05 % of apps, ≈ 3 sites each
    // (2,115 / 716). The draw rate is slightly above the target to
    // compensate for apps whose minSdkVersion leaves no eligible
    // callback in the menu.
    if rng.gen_bool(0.23) {
        let menu = apc_menu();
        let eligible: Vec<_> = menu.into_iter().filter(|(_, _, _, s)| *s > min).collect();
        if !eligible.is_empty() {
            let count = 1 + (rng.gen::<f64>().powi(2) * 6.0) as usize;
            for site in 0..count {
                let (sup, sig, api, _) = eligible[rng.gen_range(0..eligible.len())].clone();
                let class = format!("rw.gen.app{index}.Cb{site}");
                injections.push(patterns::callback_override(
                    class.as_str(),
                    sup,
                    sig,
                    api,
                    "generated callback issue",
                ));
                injected.apc += 1;
            }
        }
    }

    // --- Permission-induced mismatches per RQ2 group rates.
    let mut wants_handler = false;
    let prm = prm_menu();
    if modern {
        if rng.gen_bool(0.1234) {
            // Request mismatch: dangerous usage, no handler.
            let (api, perm) = prm[rng.gen_range(0..prm.len())].clone();
            builder = builder.permission(Permission::android(perm));
            let class = format!("rw.gen.app{index}.Danger");
            injections.push(patterns::dangerous_usage(
                class.as_str(),
                "useFeature",
                api,
                saintdroid::MismatchKind::PermissionRequest,
                "generated permission-request issue",
            ));
            injected.prm_request = 1;
        } else if rng.gen_bool(0.35) {
            // Correctly handled dangerous usage: quiet.
            let (api, perm) = prm[rng.gen_range(0..prm.len())].clone();
            builder = builder.permission(Permission::android(perm));
            let class = format!("rw.gen.app{index}.Danger");
            injections.push(patterns::dangerous_usage(
                class.as_str(),
                "useFeature",
                api,
                saintdroid::MismatchKind::PermissionRequest,
                "handled — not a real issue",
            ));
            // Strip the truth entry: the handler below silences it.
            injections.last_mut().expect("just pushed").truth.clear();
            wants_handler = true;
            injected.baits += 1;
        }
    } else if rng.gen_bool(0.6868) {
        // Revocation mismatch: legacy target with dangerous usage.
        let (api, perm) = prm[rng.gen_range(0..prm.len())].clone();
        builder = builder.permission(Permission::android(perm));
        let class = format!("rw.gen.app{index}.Danger");
        injections.push(patterns::dangerous_usage(
            class.as_str(),
            "useFeature",
            api,
            saintdroid::MismatchKind::PermissionRevocation,
            "generated permission-revocation issue",
        ));
        injected.prm_revocation = 1;
    }
    if wants_handler {
        let class = format!("rw.gen.app{index}.PermissionGate");
        injections.push(patterns::permission_handler(class.as_str()));
    }

    // --- Guarded bait: safe code that weaker tools misreport.
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(1..=3);
        for i in 0..n {
            let (api, since) = menu[rng.gen_range(0..menu.len())].clone();
            let class = format!("rw.gen.app{index}.Safe{i}");
            injections.push(if rng.gen_bool(0.5) {
                patterns::guarded_api_call(class.as_str(), "careful", api, since)
            } else {
                patterns::cross_method_guarded(class.as_str(), api, since)
            });
            injected.baits += 1;
        }
    }

    // --- Filler sized to a Figure-3 style KLOC distribution (most
    // apps small, a tail out to ~80 KLOC), calling into the synthetic
    // framework so lazy loading has something to skip or chase.
    let kloc = (1.0 + rng.gen::<f64>().powi(3) * 79.0) * cfg.size_scale;
    let units_needed = (kloc * 2000.0) as usize;
    let per_method_units = 46; // pad 30 + call + overhead
    let methods_needed = (units_needed / per_method_units).max(3);
    let per_class = 12usize;
    let classes_needed = methods_needed.div_ceil(per_class);
    // Real apps use a clustered slice of the platform, not a uniform
    // sample — draw a small per-app API vocabulary first. This locality
    // is what lazy loading exploits (and what Figure 4 measures).
    let vocab: Vec<MethodRef> = if safe_menu.is_empty() {
        Vec::new()
    } else {
        let k = rng.gen_range(6usize..=30).min(safe_menu.len());
        (0..k)
            .map(|_| {
                let idx = if cfg.api_skew > 0.0 {
                    // Head-heavy draw: `⌊len · u^(1+s)⌋` concentrates
                    // the vocabulary on the menu's first entries, the
                    // hot platform core every large app leans on.
                    let u: f64 = rng.gen();
                    ((safe_menu.len() as f64) * u.powf(1.0 + cfg.api_skew)) as usize
                } else {
                    rng.gen_range(0..safe_menu.len())
                };
                safe_menu[idx.min(safe_menu.len() - 1)].clone()
            })
            .collect()
    };
    for c in 0..classes_needed {
        let class = format!("rw.gen.app{index}.Filler{c}");
        let mut cb =
            ClassBuilder::new(class.as_str(), ClassOrigin::App).extends("java.lang.Object");
        for m in 0..per_class.min(methods_needed - c * per_class) {
            let fw_ref = if vocab.is_empty() {
                well_known::activity_set_content_view()
            } else {
                vocab[rng.gen_range(0..vocab.len())].clone()
            };
            cb = cb
                .method(format!("work{m}"), "()V", move |b| {
                    b.pad(30);
                    b.invoke_virtual(fw_ref, &[], None);
                    b.ret_void();
                })
                .expect("unique generated names");
        }
        injections.push(Injection {
            classes: vec![cb.build()],
            truth: Vec::new(),
        });
    }

    for inj in injections {
        for class in inj.classes {
            builder = builder.class(class).expect("generated names are unique");
        }
    }
    // ≈ 3 % of AndroZoo apps could not be built (120 / 3,691).
    if rng.gen_bool(0.034) {
        builder = builder.without_source();
    }

    RealWorldApp {
        index,
        apk: builder.build(),
        injected,
    }
}

/// A streaming view over the corpus.
#[derive(Debug, Clone)]
pub struct RealWorldCorpus {
    cfg: RealWorldConfig,
    safe_menu: Arc<Vec<MethodRef>>,
}

impl RealWorldCorpus {
    /// Creates the corpus view, deriving the safe filler menu from the
    /// configured synthetic framework (built once, shared by all apps).
    #[must_use]
    pub fn new(cfg: RealWorldConfig) -> Self {
        let spec = saint_adf::synth::expanded_android_spec(&cfg.synth);
        let safe_menu = Arc::new(safe_framework_menu(&spec));
        RealWorldCorpus { cfg, safe_menu }
    }

    /// Number of apps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cfg.apps
    }

    /// Whether the corpus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cfg.apps == 0
    }

    /// Generates app `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn get(&self, index: usize) -> RealWorldApp {
        assert!(index < self.cfg.apps, "corpus has {} apps", self.cfg.apps);
        generate_app(&self.cfg, index, &self.safe_menu)
    }

    /// Iterates the whole corpus, generating lazily.
    pub fn iter(&self) -> impl Iterator<Item = RealWorldApp> + '_ {
        (0..self.cfg.apps).map(move |i| self.get(i))
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RealWorldConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let corpus = RealWorldCorpus::new(RealWorldConfig::small());
        let a = corpus.get(7);
        let b = corpus.get(7);
        assert_eq!(a.apk, b.apk);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn different_indices_differ() {
        let corpus = RealWorldCorpus::new(RealWorldConfig::small());
        let a = corpus.get(1);
        let b = corpus.get(2);
        assert_ne!(a.apk.manifest.package, b.apk.manifest.package);
    }

    #[test]
    fn safe_menu_methods_are_always_available() {
        let cfg = RealWorldConfig::small();
        let spec = saint_adf::synth::expanded_android_spec(&cfg.synth);
        let menu = safe_framework_menu(&spec);
        assert!(!menu.is_empty());
        let db = saint_adf::ApiDatabase::mine(&spec);
        for m in &menu {
            for level in ApiLevel::all_modeled() {
                assert!(db.contains(m, level), "{m} missing at {level}");
            }
        }
    }

    #[test]
    fn corpus_prevalence_tracks_rq2() {
        // On a few hundred generated apps the prevalence rates must be
        // near the paper's percentages.
        let cfg = RealWorldConfig {
            apps: 400,
            ..RealWorldConfig::small()
        };
        let corpus = RealWorldCorpus::new(cfg);
        let mut api_apps = 0usize;
        let mut apc_apps = 0usize;
        let mut modern = 0usize;
        let mut request = 0usize;
        let mut legacy = 0usize;
        let mut revocation = 0usize;
        for app in corpus.iter() {
            if app.injected.api > 0 {
                api_apps += 1;
            }
            if app.injected.apc > 0 {
                apc_apps += 1;
            }
            if app.apk.manifest.targets_runtime_permissions() {
                modern += 1;
                request += app.injected.prm_request;
            } else {
                legacy += 1;
                revocation += app.injected.prm_revocation;
            }
        }
        let pct = |n: usize, d: usize| n as f64 / d as f64 * 100.0;
        let api_pct = pct(api_apps, corpus.len());
        assert!(
            (30.0..53.0).contains(&api_pct),
            "API prevalence {api_pct:.1}%"
        );
        let apc_pct = pct(apc_apps, corpus.len());
        assert!(
            (13.0..28.0).contains(&apc_pct),
            "APC prevalence {apc_pct:.1}%"
        );
        let req_pct = pct(request, modern.max(1));
        assert!((6.0..20.0).contains(&req_pct), "request rate {req_pct:.1}%");
        let rev_pct = pct(revocation, legacy.max(1));
        assert!(
            (58.0..80.0).contains(&rev_pct),
            "revocation rate {rev_pct:.1}%"
        );
    }

    #[test]
    fn sizes_have_a_tail() {
        let cfg = RealWorldConfig::small();
        let corpus = RealWorldCorpus::new(cfg);
        let klocs: Vec<f64> = corpus.iter().map(|a| a.apk.kloc()).collect();
        let max = klocs.iter().cloned().fold(0.0, f64::max);
        let min = klocs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max > min * 5.0,
            "size distribution too flat: {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn apps_roundtrip_through_codec() {
        let corpus = RealWorldCorpus::new(RealWorldConfig::small());
        for i in [0usize, 13, 47] {
            let app = corpus.get(i);
            let bytes = saint_ir::codec::encode_apk(&app.apk);
            assert_eq!(saint_ir::codec::decode_apk(&bytes).unwrap(), app.apk);
        }
    }

    #[test]
    #[should_panic(expected = "corpus has")]
    fn out_of_range_panics() {
        let _ = RealWorldCorpus::new(RealWorldConfig::small()).get(9999);
    }
}
