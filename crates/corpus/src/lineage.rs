//! Synthetic version lineages — app-update traffic for the incremental
//! scan layer.
//!
//! A lineage starts from a [`RealWorldCorpus`] app and evolves it
//! through a fixed number of versions with *controlled class churn*:
//! each version mutates a configured fraction of the previous
//! version's classes (an analysis-neutral field append, which still
//! changes the class's content hash and byte size), optionally
//! introduces a known-incompatible class at one version, and removes
//! it again at a later one. Deterministic in the config.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use saint_adf::well_known;
use saint_ir::{Apk, ClassBuilder, ClassName, ClassOrigin, FieldDef};

use crate::realworld::{RealWorldConfig, RealWorldCorpus};

/// Name of the class the introduce/fix events add and remove.
pub const EVO_CLASS: &str = "evo.EvoIssue";

/// Lineage configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageConfig {
    /// Base corpus the first version is drawn from.
    pub base: RealWorldConfig,
    /// Which corpus app seeds the lineage.
    pub app_index: usize,
    /// Number of versions (≥ 1), labeled `v0 … v{n-1}`.
    pub versions: usize,
    /// Fraction of the previous version's classes mutated per update
    /// (rounded up to at least one class when positive).
    pub churn: f64,
    /// Lineage seed (independent of the base corpus seed).
    pub seed: u64,
    /// Version at which [`EVO_CLASS`] — an unguarded call to a
    /// level-26 API from a primary-dex root — is added.
    pub introduce_at: Option<usize>,
    /// Version at which [`EVO_CLASS`] is removed again.
    pub fix_at: Option<usize>,
}

impl LineageConfig {
    /// A small deterministic lineage for tests: 4 versions, 10% churn,
    /// a mismatch introduced at v1 and fixed at v3.
    #[must_use]
    pub fn small() -> Self {
        LineageConfig {
            base: RealWorldConfig::small(),
            app_index: 0,
            versions: 4,
            churn: 0.1,
            seed: 0x11EA6E,
            introduce_at: Some(1),
            fix_at: Some(3),
        }
    }
}

/// Generates the lineage, oldest first, as `(label, apk)` pairs.
///
/// # Panics
///
/// Panics if `versions == 0` or `app_index` is out of the base corpus.
#[must_use]
pub fn generate_lineage(cfg: &LineageConfig) -> Vec<(String, Apk)> {
    assert!(cfg.versions >= 1, "a lineage needs at least one version");
    let corpus = RealWorldCorpus::new(cfg.base.clone());
    let mut current = corpus.get(cfg.app_index).apk;
    let mut out = Vec::with_capacity(cfg.versions);
    out.push(("v0".to_string(), current.clone()));

    for v in 1..cfg.versions {
        let mut rng =
            SmallRng::seed_from_u64(cfg.seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        churn_classes(&mut current, cfg.churn, v, &mut rng);
        if cfg.introduce_at == Some(v) {
            current.primary.update_class(evo_class());
        }
        if cfg.fix_at == Some(v) {
            current.primary.remove_class(&ClassName::new(EVO_CLASS));
        }
        out.push((format!("v{v}"), current.clone()));
    }
    out
}

/// Applies one update wave to an app in place: mutates `churn` of its
/// classes with the lineage's analysis-neutral pad-field append.
/// Deterministic in `seed`. The bench harness uses this to model a
/// store-wide app-update wave outside any lineage.
pub fn churn_wave(apk: &mut Apk, churn: f64, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    churn_classes(apk, churn, 1, &mut rng);
}

/// Mutates `churn` of the app's classes in place: appends a version-
/// tagged pad field, which changes the class's canonical encoding (and
/// thus its content hash and metered size) without touching any code
/// path the detectors look at.
fn churn_classes(apk: &mut Apk, churn: f64, version: usize, rng: &mut SmallRng) {
    let names: Vec<(u32, ClassName)> = apk
        .primary
        .classes()
        .map(|c| (0u32, c.name.clone()))
        .chain(apk.secondary.iter().enumerate().flat_map(|(i, d)| {
            d.classes()
                .map(move |c| (i as u32 + 1, c.name.clone()))
                .collect::<Vec<_>>()
        }))
        .collect();
    if names.is_empty() || churn <= 0.0 {
        return;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let count = ((names.len() as f64 * churn).ceil() as usize).clamp(1, names.len());
    // Floyd-style distinct sampling, deterministic in the rng.
    let mut picked: Vec<usize> = Vec::with_capacity(count);
    for j in names.len() - count..names.len() {
        let t = rng.gen_range(0..=j);
        if picked.contains(&t) {
            picked.push(j);
        } else {
            picked.push(t);
        }
    }
    for idx in picked {
        let (slot, name) = &names[idx];
        let dex = if *slot == 0 {
            &mut apk.primary
        } else {
            &mut apk.secondary[*slot as usize - 1]
        };
        if let Some(class) = dex.class(name) {
            let mut class = class.clone();
            class.fields.push(FieldDef {
                name: format!("evoPad{version}"),
                is_static: false,
            });
            dex.update_class(class);
        }
    }
}

/// The known-incompatible class the introduce event adds: a primary-dex
/// root method calling `NotificationManager.createNotificationChannel`
/// (API 26) unguarded — an invocation mismatch on any app whose
/// supported range starts below 26.
fn evo_class() -> saint_ir::ClassDef {
    ClassBuilder::new(EVO_CLASS, ClassOrigin::App)
        .method("trigger", "()V", |b| {
            b.invoke_virtual(well_known::create_notification_channel(), &[], None);
            b.ret_void();
        })
        .unwrap_or_else(|e| panic!("evo class body: {e}"))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineage_is_deterministic_and_churns() {
        let cfg = LineageConfig::small();
        let a = generate_lineage(&cfg);
        let b = generate_lineage(&cfg);
        assert_eq!(a.len(), 4);
        for ((la, va), (lb, vb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(va, vb, "same config must generate identical lineages");
        }
        // Consecutive versions differ but share most classes.
        assert_ne!(a[0].1, a[1].1);
        let names =
            |apk: &Apk| -> Vec<ClassName> { apk.all_classes().map(|c| c.name.clone()).collect() };
        let n0 = names(&a[0].1);
        let n1 = names(&a[1].1);
        let shared = n0.iter().filter(|n| n1.contains(n)).count();
        assert!(shared * 2 > n0.len(), "churn must not replace the app");
    }

    #[test]
    fn introduce_and_fix_events_add_and_remove_the_class() {
        let cfg = LineageConfig::small();
        let lineage = generate_lineage(&cfg);
        let has = |apk: &Apk| apk.primary.class(&ClassName::new(EVO_CLASS)).is_some();
        assert!(!has(&lineage[0].1));
        assert!(has(&lineage[1].1));
        assert!(has(&lineage[2].1));
        assert!(!has(&lineage[3].1));
    }
}
