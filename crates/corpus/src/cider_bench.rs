//! CIDER-Bench: the 12 usable real-world benchmark apps of Huang et
//! al., rebuilt as synthetic packages with the same names and the issue
//! *shapes* the paper's Tables II/III report — including the apps CID
//! fails on (multi-dex), the app Lint cannot build, the Simple
//! Solitaire `onAttach(Context)` case (paper Listing 2), and the
//! anonymous-class issues SAINTDroid knowingly misses.

use saint_adf::well_known;
use saint_ir::{ApiLevel, ApkBuilder, DexFile, MethodRef, MethodSig, Permission};
use saintdroid::MismatchKind;

use crate::patterns::{
    anon_guarded_helper, anonymous_callback_override, callback_override, cross_method_guarded,
    dangerous_usage, deep_facade_call, filler, guarded_api_call, library_filler,
    library_unguarded_call, permission_handler, unguarded_api_call, Injection,
};
use crate::truth::{BenchApp, Suite};

struct Assembly {
    name: &'static str,
    package: &'static str,
    min: u8,
    target: u8,
    permissions: Vec<Permission>,
    injections: Vec<Injection>,
    multidex: bool,
    has_source: bool,
}

impl Assembly {
    fn build(self) -> BenchApp {
        let mut builder = ApkBuilder::new(
            self.package,
            ApiLevel::new(self.min),
            ApiLevel::new(self.target),
        );
        for p in self.permissions {
            builder = builder.permission(p);
        }
        let mut truth = Vec::new();
        for inj in self.injections {
            for class in inj.classes {
                builder = builder.class(class).expect("unique class names per app");
            }
            truth.extend(inj.truth);
        }
        if self.multidex {
            builder = builder.secondary_dex(DexFile::new("assets/secondary.dex"));
        }
        if !self.has_source {
            builder = builder.without_source();
        }
        BenchApp {
            name: self.name,
            suite: Suite::CiderBench,
            apk: builder.build(),
            truth,
        }
    }
}

fn wvc_on_received_http_error() -> (MethodSig, MethodRef) {
    let sig = MethodSig::new(
        "onReceivedHttpError",
        "(Landroid/webkit/WebView;Landroid/webkit/WebResourceRequest;Landroid/webkit/WebResourceResponse;)V",
    );
    let api = sig.on_class("android.webkit.WebViewClient");
    (sig, api)
}

/// Builds the 12 CIDER-Bench apps at unit size (fast; used by tests).
#[must_use]
pub fn cider_bench() -> Vec<BenchApp> {
    cider_bench_scaled(1)
}

/// Builds the 12 CIDER-Bench apps with filler code scaled by `f` —
/// the paper's apps range from 10.4 to 294.4 KLOC of dex code, so the
/// timing/memory harnesses (Table III, Figure 4) run with larger `f`
/// to reach realistic sizes. Ground truth is identical at every scale.
#[must_use]
pub fn cider_bench_scaled(f: usize) -> Vec<BenchApp> {
    let f = f.max(1);
    let mut apps = Vec::new();

    // AFWall+ — multi-dex firewall app; CID crashes on it (Table III
    // dash).
    apps.push(
        Assembly {
            name: "AFWall+",
            package: "dev.ukanth.ufirewall",
            min: 15,
            target: 25,
            permissions: vec![],
            injections: vec![
                library_unguarded_call(
                    "com.haibison.apksig.ThemeKit",
                    "applyTheme",
                    well_known::context_get_color_state_list(),
                    "library code calling getColorStateList (23) with min 15",
                ),
                unguarded_api_call(
                    "dev.ukanth.ufirewall.RulesActivity",
                    "loadIcon",
                    well_known::context_get_drawable(),
                    "getDrawable (21) with min 15",
                ),
                callback_override(
                    "dev.ukanth.ufirewall.LogView",
                    "android.widget.FrameLayout",
                    MethodSig::new(
                        "onApplyWindowInsets",
                        "(Landroid/view/WindowInsets;)Landroid/view/WindowInsets;",
                    ),
                    MethodRef::new(
                        "android.view.View",
                        "onApplyWindowInsets",
                        "(Landroid/view/WindowInsets;)Landroid/view/WindowInsets;",
                    ),
                    "View.onApplyWindowInsets (20) with min 15",
                ),
                guarded_api_call(
                    "dev.ukanth.ufirewall.SafeTheme",
                    "applySafely",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("dev.ukanth.ufirewall.Rules", 14 * f, 30),
                library_filler("org.iptables.Wrapper", 10 * f, 40),
            ],
            multidex: true,
            has_source: true,
        }
        .build(),
    );

    // DuckDuckGo — notification-channel API beyond CID's level
    // ceiling, a WebViewClient callback CIDER does not model, and a
    // deep facade path.
    apps.push(
        Assembly {
            name: "DuckDuckGo",
            package: "com.duckduckgo.mobile.android",
            min: 21,
            target: 26,
            permissions: vec![],
            injections: vec![
                unguarded_api_call(
                    "com.duckduckgo.mobile.android.Notifier",
                    "setupChannel",
                    well_known::create_notification_channel(),
                    "createNotificationChannel (26) with min 21; beyond CID's API-25 model",
                ),
                {
                    let (sig, api) = wvc_on_received_http_error();
                    callback_override(
                        "com.duckduckgo.mobile.android.BrowserClient",
                        "android.webkit.WebViewClient",
                        sig,
                        api,
                        "WebViewClient.onReceivedHttpError (23) with min 21; class unmodeled by CIDER",
                    )
                },
                deep_facade_call(
                    "com.duckduckgo.mobile.android.TabView",
                    "decorate",
                    well_known::tint_helper_apply_tint(),
                    MethodRef::new("android.view.View", "setForeground", "(Landroid/graphics/drawable/Drawable;)V"),
                    "deep: applyTint -> setForeground (23) with min 21",
                ),
                cross_method_guarded(
                    "com.duckduckgo.mobile.android.ThemeHelper",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("com.duckduckgo.mobile.android.Search", 20 * f, 35),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // FOSS Browser — a modeled WebView callback CIDER *does* catch,
    // plus the anonymous-guard false-alarm bait for SAINTDroid.
    apps.push(
        Assembly {
            name: "FOSS Browser",
            package: "de.baumann.browser",
            min: 19,
            target: 25,
            permissions: vec![],
            injections: vec![
                callback_override(
                    "de.baumann.browser.NinjaWebView",
                    "android.webkit.WebView",
                    MethodSig::new(
                        "onProvideVirtualStructure",
                        "(Landroid/view/ViewStructure;)V",
                    ),
                    MethodRef::new(
                        "android.webkit.WebView",
                        "onProvideVirtualStructure",
                        "(Landroid/view/ViewStructure;)V",
                    ),
                    "WebView.onProvideVirtualStructure (23) with min 19; modeled by CIDER",
                ),
                library_unguarded_call(
                    "org.mozilla.geckoview.PageRenderer",
                    "postMessage",
                    MethodRef::new(
                        "android.webkit.WebView",
                        "postWebMessage",
                        "(Landroid/webkit/WebMessage;Landroid/net/Uri;)V",
                    ),
                    "postWebMessage (23) with min 19",
                ),
                anon_guarded_helper(
                    "de.baumann.browser.NightMode",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("de.baumann.browser.History", 10 * f, 25),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // Kolab notes — the paper's permission-request case study (§V-B).
    apps.push(
        Assembly {
            name: "Kolab notes",
            package: "org.kore.kolabnotes.android",
            min: 19,
            target: 26,
            permissions: vec![Permission::android("WRITE_EXTERNAL_STORAGE")],
            injections: vec![
                dangerous_usage(
                    "org.kore.kolabnotes.android.ExportActivity",
                    "exportToSdCard",
                    well_known::get_external_storage_directory(),
                    MismatchKind::PermissionRequest,
                    "WRITE_EXTERNAL_STORAGE used, target 26, no runtime request (Kolab Notes case)",
                ),
                library_unguarded_call(
                    "com.mikepenz.materialdrawer.Tinter",
                    "tintToolbar",
                    well_known::context_get_color_state_list(),
                    "library code calling getColorStateList (23) with min 19",
                ),
                callback_override(
                    "org.kore.kolabnotes.android.NoteFragment",
                    "android.app.Fragment",
                    well_known::fragment_on_attach_context_sig(),
                    MethodRef::new(
                        "android.app.Fragment",
                        "onAttach",
                        "(Landroid/content/Context;)V",
                    ),
                    "Fragment.onAttach(Context) (23) with min 19",
                ),
                filler("org.kore.kolabnotes.android.Sync", 12 * f, 30),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // MaterialFBook — min 11; carries the WebView.onPause override that
    // trips CIDER's documentation bug, plus an anonymous-class APC that
    // everyone (including SAINTDroid) misses.
    apps.push(
        Assembly {
            name: "MaterialFBook",
            package: "me.zeeroooo.materialfb",
            min: 11,
            target: 25,
            permissions: vec![],
            injections: vec![
                library_unguarded_call(
                    "com.github.clans.fab.Styler",
                    "styleBadge",
                    MethodRef::new("android.widget.TextView", "setTextAppearance", "(I)V"),
                    "TextView.setTextAppearance(int) (23) with min 11",
                ),
                {
                    // Overriding WebView.onPause (API 11) with min 11 is
                    // *correct*; CIDER's doc-derived model says 12 and
                    // misfires.
                    let built = saint_ir::ClassBuilder::new(
                        "me.zeeroooo.materialfb.FBWebView",
                        saint_ir::ClassOrigin::App,
                    )
                    .extends("android.webkit.WebView")
                    .method("onPause", "()V", |b| {
                        b.ret_void();
                    })
                    .unwrap()
                    .build();
                    Injection {
                        classes: vec![built],
                        truth: Vec::new(),
                    }
                },
                anonymous_callback_override(
                    "me.zeeroooo.materialfb.Chat",
                    "android.webkit.WebViewClient",
                    MethodSig::new(
                        "onPageCommitVisible",
                        "(Landroid/webkit/WebView;Ljava/lang/String;)V",
                    ),
                    MethodRef::new(
                        "android.webkit.WebViewClient",
                        "onPageCommitVisible",
                        "(Landroid/webkit/WebView;Ljava/lang/String;)V",
                    ),
                    "onPageCommitVisible (23) inside Chat$1 — invisible to static analysis",
                ),
                filler("me.zeeroooo.materialfb.Feed", 8 * f, 20),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // NetworkMonitor — multi-dex (CID dash) with a deep permission
    // usage only SAINTDroid attributes.
    apps.push(
        Assembly {
            name: "NetworkMonitor",
            package: "ca.rmen.android.networkmonitor",
            min: 14,
            target: 24,
            permissions: vec![Permission::android("ACCESS_FINE_LOCATION")],
            injections: vec![
                library_unguarded_call(
                    "com.google.mapslite.IconLoader",
                    "loadMapIcons",
                    well_known::context_get_drawable(),
                    "getDrawable (21) with min 14",
                ),
                dangerous_usage(
                    "ca.rmen.android.networkmonitor.LocationProbe",
                    "probe",
                    well_known::request_location_updates(),
                    MismatchKind::PermissionRequest,
                    "ACCESS_FINE_LOCATION used, target 24, no runtime request",
                ),
                guarded_api_call(
                    "ca.rmen.android.networkmonitor.SafeProbe",
                    "probeSafely",
                    well_known::context_check_self_permission(),
                    23,
                ),
                filler("ca.rmen.android.networkmonitor.Log", 16 * f, 30),
            ],
            multidex: true,
            has_source: true,
        }
        .build(),
    );

    // NyaaPantsu — cannot be built from source (the Lint dash in
    // Table III).
    apps.push(
        Assembly {
            name: "NyaaPantsu",
            package: "cat.pantsu.nyaapantsu",
            min: 15,
            target: 24,
            permissions: vec![],
            injections: vec![
                unguarded_api_call(
                    "cat.pantsu.nyaapantsu.TorrentList",
                    "tintRows",
                    MethodRef::new(
                        "android.view.View",
                        "setBackgroundTintList",
                        "(Landroid/content/res/ColorStateList;)V",
                    ),
                    "setBackgroundTintList (21) with min 15",
                ),
                callback_override(
                    "cat.pantsu.nyaapantsu.UploadFragment",
                    "android.app.Fragment",
                    well_known::fragment_on_attach_context_sig(),
                    MethodRef::new(
                        "android.app.Fragment",
                        "onAttach",
                        "(Landroid/content/Context;)V",
                    ),
                    "Fragment.onAttach(Context) (23) with min 15",
                ),
                filler("cat.pantsu.nyaapantsu.Api", 9 * f, 25),
            ],
            multidex: false,
            has_source: false,
        }
        .build(),
    );

    // Padland — small app; one real issue, one guarded bait.
    apps.push(
        Assembly {
            name: "Padland",
            package: "com.mikifus.padland",
            min: 16,
            target: 23,
            permissions: vec![],
            injections: vec![
                library_unguarded_call(
                    "org.etherpad.lite.PadWidget",
                    "elevate",
                    MethodRef::new(
                        "android.view.View",
                        "setBackgroundTintList",
                        "(Landroid/content/res/ColorStateList;)V",
                    ),
                    "setBackgroundTintList (21) with min 16",
                ),
                guarded_api_call(
                    "com.mikifus.padland.SafePad",
                    "colorize",
                    well_known::context_get_color_state_list(),
                    23,
                ),
                filler("com.mikifus.padland.PadList", 6 * f, 20),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // PassAndroid — the largest app; multi-dex (CID dash); library
    // issue invisible to Lint; a three-hop deep chain; an anonymous APC
    // miss; permission usage *with* a proper handler (quiet).
    apps.push(
        Assembly {
            name: "PassAndroid",
            package: "org.ligi.passandroid",
            min: 14,
            target: 27,
            permissions: vec![Permission::android("CAMERA")],
            injections: vec![
                unguarded_api_call(
                    "org.ligi.passandroid.PassViewActivity",
                    "applyPalette",
                    well_known::context_get_color_state_list(),
                    "getColorStateList (23) with min 14",
                ),
                library_unguarded_call(
                    "com.squareup.barcode.Renderer",
                    "render",
                    well_known::context_get_drawable(),
                    "library code calling getDrawable (21) with min 14; outside Lint's source scope",
                ),
                deep_facade_call(
                    "org.ligi.passandroid.FontStyler",
                    "styleTitle",
                    well_known::font_facade_apply_font(),
                    MethodRef::new("android.content.res.Resources", "getFont", "(I)Landroid/graphics/Typeface;"),
                    "deep 3-hop: applyFont -> resolveFont -> getFont (26) with min 14",
                ),
                anonymous_callback_override(
                    "org.ligi.passandroid.Scanner",
                    "android.webkit.WebViewClient",
                    MethodSig::new("onPageCommitVisible", "(Landroid/webkit/WebView;Ljava/lang/String;)V"),
                    MethodRef::new("android.webkit.WebViewClient", "onPageCommitVisible", "(Landroid/webkit/WebView;Ljava/lang/String;)V"),
                    "onPageCommitVisible (23) inside Scanner$1 — invisible to static analysis",
                ),
                permission_handler("org.ligi.passandroid.CameraActivity"),
                filler("org.ligi.passandroid.PassStore", 30 * f, 40),
                library_filler("com.squareup.okio.Buffer", 20 * f, 35),
            ],
            multidex: true,
            has_source: true,
        }
        .build(),
    );

    // SimpleSolitaire — paper Listing 2.
    apps.push(
        Assembly {
            name: "SimpleSolitaire",
            package: "de.tobiasbielefeld.solitaire",
            min: 14,
            target: 27,
            permissions: vec![],
            injections: vec![
                callback_override(
                    "de.tobiasbielefeld.solitaire.GameFragment",
                    "android.app.Fragment",
                    well_known::fragment_on_attach_context_sig(),
                    MethodRef::new(
                        "android.app.Fragment",
                        "onAttach",
                        "(Landroid/content/Context;)V",
                    ),
                    "Listing 2: Fragment.onAttach(Context) (23) with min 14",
                ),
                library_unguarded_call(
                    "com.cardlib.render.CardSkin",
                    "highlight",
                    well_known::context_get_drawable(),
                    "getDrawable (21) with min 14",
                ),
                filler("de.tobiasbielefeld.solitaire.Stack", 12 * f, 25),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // SurvivalManual — one modeled Activity callback (CIDER catches
    // it) and otherwise safe, guarded code.
    apps.push(
        Assembly {
            name: "SurvivalManual",
            package: "org.ligi.survivalmanual",
            min: 19,
            target: 26,
            permissions: vec![],
            injections: vec![
                callback_override(
                    "org.ligi.survivalmanual.MainActivity",
                    "android.app.Activity",
                    MethodSig::new("onMultiWindowModeChanged", "(Z)V"),
                    MethodRef::new("android.app.Activity", "onMultiWindowModeChanged", "(Z)V"),
                    "Activity.onMultiWindowModeChanged (24) with min 19; modeled by CIDER",
                ),
                guarded_api_call(
                    "org.ligi.survivalmanual.ImageLoader",
                    "loadVector",
                    well_known::context_get_drawable(),
                    21,
                ),
                filler("org.ligi.survivalmanual.Markdown", 10 * f, 22),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    // Uber ride — camera2 usage below its introduction level plus a
    // permission-request mismatch.
    apps.push(
        Assembly {
            name: "Uber ride",
            package: "com.example.uberride",
            min: 16,
            target: 25,
            permissions: vec![Permission::android("CAMERA")],
            injections: vec![
                library_unguarded_call(
                    "com.squareup.camerakit.ProfilePhoto",
                    "openCamera2",
                    MethodRef::new(
                        "android.hardware.camera2.CameraManager",
                        "openCamera",
                        "(Ljava/lang/String;Landroid/hardware/camera2/CameraDevice$StateCallback;Landroid/os/Handler;)V",
                    ),
                    "camera2 openCamera (21) with min 16",
                ),
                dangerous_usage(
                    "com.example.uberride.LegacyCamera",
                    "capture",
                    well_known::camera_open(),
                    MismatchKind::PermissionRequest,
                    "CAMERA used, target 25, no runtime request",
                ),
                // The camera2 call above is *also* a dangerous-permission
                // usage (openCamera requires CAMERA): record the PRM
                // truth alongside its API-invocation truth.
                Injection {
                    classes: vec![],
                    truth: vec![crate::truth::GroundTruthIssue {
                        kind: MismatchKind::PermissionRequest,
                        site: MethodRef::new("com.squareup.camerakit.ProfilePhoto", "openCamera2", "()V"),
                        api: MethodRef::new(
                            "android.hardware.camera2.CameraManager",
                            "openCamera",
                            "(Ljava/lang/String;Landroid/hardware/camera2/CameraDevice$StateCallback;Landroid/os/Handler;)V",
                        ),
                        note: "openCamera requires CAMERA; target 25, no runtime request",
                    }],
                },
                filler("com.example.uberride.RideList", 10 * f, 25),
            ],
            multidex: false,
            has_source: true,
        }
        .build(),
    );

    apps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_apps_matching_table_iii() {
        let apps = cider_bench();
        assert_eq!(apps.len(), 12);
        let names: Vec<_> = apps.iter().map(|a| a.name).collect();
        for expected in [
            "AFWall+",
            "DuckDuckGo",
            "FOSS Browser",
            "Kolab notes",
            "MaterialFBook",
            "NetworkMonitor",
            "NyaaPantsu",
            "Padland",
            "PassAndroid",
            "SimpleSolitaire",
            "SurvivalManual",
            "Uber ride",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn cid_dash_apps_are_multidex() {
        let apps = cider_bench();
        for name in ["AFWall+", "NetworkMonitor", "PassAndroid"] {
            let app = apps.iter().find(|a| a.name == name).unwrap();
            assert!(!app.apk.secondary.is_empty(), "{name} should be multi-dex");
        }
    }

    #[test]
    fn lint_dash_app_has_no_source() {
        let apps = cider_bench();
        let nyaa = apps.iter().find(|a| a.name == "NyaaPantsu").unwrap();
        assert!(!nyaa.apk.has_source);
        assert!(apps.iter().filter(|a| !a.apk.has_source).count() == 1);
    }

    #[test]
    fn every_app_has_truth_and_unique_classes() {
        for app in cider_bench() {
            assert!(!app.truth.is_empty(), "{} has no ground truth", app.name);
            assert!(app.apk.class_count() >= 3, "{} too small", app.name);
        }
    }

    #[test]
    fn suite_contains_anonymous_class_issues() {
        let apps = cider_bench();
        let anon_truths: usize = apps
            .iter()
            .flat_map(|a| &a.truth)
            .filter(|t| t.site.class.is_anonymous_inner())
            .count();
        assert_eq!(
            anon_truths, 2,
            "two known-miss anonymous issues (40-of-42 shape)"
        );
    }

    #[test]
    fn apps_roundtrip_through_codec() {
        for app in cider_bench() {
            let bytes = saint_ir::codec::encode_apk(&app.apk);
            let back = saint_ir::codec::decode_apk(&bytes).unwrap();
            assert_eq!(app.apk, back, "{}", app.name);
        }
    }
}
