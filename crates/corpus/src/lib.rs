//! # saint-corpus — the objects of analysis
//!
//! Everything the paper's evaluation runs on, rebuilt synthetically:
//!
//! * [`cider_bench`] — the 12 usable CIDER-Bench apps (Table II/III),
//!   with recorded ground truth, the multi-dex apps CID crashes on and
//!   the source-less app Lint cannot build;
//! * [`cid_bench`] — the 7 CID-Bench micro-apps (Basic … Varargs);
//! * [`cases`] — the four §V-B case studies (Offline Calendar, FOSDEM,
//!   Kolab Notes, AdAway);
//! * [`RealWorldCorpus`] — a streaming, seeded generator of
//!   thousands of apps calibrated to the paper's RQ2 structure;
//! * [`planted_suite`] — six apps with exactly-known planted defects
//!   across all four mismatch families (the three AMD families plus
//!   declared-SDK consistency), the golden corpus behind the
//!   comparative harness's precision/recall pins.
//!
//! ```
//! use saint_corpus::{benchmark_suite, Suite};
//!
//! let apps = benchmark_suite();
//! assert_eq!(apps.len(), 19); // 12 CIDER-Bench + 7 CID-Bench
//! assert!(apps.iter().any(|a| a.suite == Suite::CidBench));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cases;
mod cid_bench;
mod cider_bench;
mod lineage;
pub mod patterns;
mod planted;
mod realworld;
mod truth;

pub use cid_bench::cid_bench;
pub use cider_bench::{cider_bench, cider_bench_scaled};
pub use lineage::{churn_wave, generate_lineage, LineageConfig, EVO_CLASS};
pub use planted::planted_suite;
pub use realworld::{generate_app, InjectedCounts, RealWorldApp, RealWorldConfig, RealWorldCorpus};
pub use truth::{score, Accuracy, BenchApp, GroundTruthIssue, Suite};

/// The full 19-app benchmark suite of the paper's accuracy evaluation
/// (27 apps minus the 8 that could not be built; paper §IV-A).
#[must_use]
pub fn benchmark_suite() -> Vec<BenchApp> {
    let mut apps = cider_bench();
    apps.extend(cid_bench());
    apps
}
