//! The four case-study apps of paper §V-B, one per mismatch family.

use saint_adf::well_known;
use saint_ir::{ApiLevel, Apk, ApkBuilder, ClassBuilder, ClassOrigin, MethodRef, Permission};

use crate::patterns::filler;

/// Offline Calendar (§V-B, API invocation): `PreferencesActivity.onCreate`
/// calls `getFragmentManager()` (API 11) while `minSdkVersion` is 8 —
/// "the app will crash if running on API levels 8 to 11".
#[must_use]
pub fn offline_calendar() -> Apk {
    let prefs = ClassBuilder::new(
        "org.sufficientlysecure.localcalendar.PreferencesActivity",
        ClassOrigin::App,
    )
    .extends("android.preference.PreferenceActivity")
    .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
        b.invoke_virtual(well_known::activity_set_content_view(), &[], None);
        b.invoke_virtual(
            MethodRef::new(
                "org.sufficientlysecure.localcalendar.PreferencesActivity",
                "getFragmentManager",
                "()Landroid/app/FragmentManager;",
            ),
            &[],
            None,
        );
        b.ret_void();
    })
    .unwrap()
    .build();
    let mut builder = ApkBuilder::new(
        "org.sufficientlysecure.localcalendar",
        ApiLevel::new(8),
        ApiLevel::new(25),
    )
    .activity("org.sufficientlysecure.localcalendar.PreferencesActivity")
    .class(prefs)
    .unwrap();
    for inj in [filler(
        "org.sufficientlysecure.localcalendar.CalendarController",
        8,
        20,
    )] {
        for c in inj.classes {
            builder = builder.class(c).unwrap();
        }
    }
    builder.build()
}

/// FOSDEM (§V-B, API callback): `ForegroundLinearLayout` overrides
/// `View.drawableHotspotChanged` (API 21) while `minSdkVersion` is 15.
#[must_use]
pub fn fosdem() -> Apk {
    let layout = ClassBuilder::new(
        "be.digitalia.fosdem.widgets.ForegroundLinearLayout",
        ClassOrigin::App,
    )
    .extends("android.widget.LinearLayout")
    .method("drawableHotspotChanged", "(FF)V", |b| {
        b.pad(2);
        b.ret_void();
    })
    .unwrap()
    .build();
    let mut builder = ApkBuilder::new("be.digitalia.fosdem", ApiLevel::new(15), ApiLevel::new(27))
        .class(layout)
        .unwrap();
    for inj in [filler("be.digitalia.fosdem.ScheduleLoader", 10, 25)] {
        for c in inj.classes {
            builder = builder.class(c).unwrap();
        }
    }
    builder.build()
}

/// Kolab Notes (§V-B, permission request): targets API 26, uses
/// `WRITE_EXTERNAL_STORAGE`, never implements the runtime request
/// protocol.
#[must_use]
pub fn kolab_notes() -> Apk {
    let export = ClassBuilder::new(
        "org.kore.kolabnotes.android.ExportActivity",
        ClassOrigin::App,
    )
    .extends("android.app.Activity")
    .method("saveToCard", "()V", |b| {
        b.invoke_static(well_known::get_external_storage_directory(), &[], None);
        b.ret_void();
    })
    .unwrap()
    // The export path runs when the user taps "save"; the click
    // listener is framework-invoked.
    .method("onOptionsItemSelected", "(Landroid/view/MenuItem;)Z", |b| {
        b.invoke_virtual(
            MethodRef::new(
                "org.kore.kolabnotes.android.ExportActivity",
                "saveToCard",
                "()V",
            ),
            &[],
            None,
        );
        let r = b.alloc_reg();
        b.const_int(r, 1);
        b.ret(r);
    })
    .unwrap()
    .build();
    ApkBuilder::new(
        "org.kore.kolabnotes.android.case",
        ApiLevel::new(19),
        ApiLevel::new(26),
    )
    .permission(Permission::android("WRITE_EXTERNAL_STORAGE"))
    .activity("org.kore.kolabnotes.android.ExportActivity")
    .class(export)
    .unwrap()
    .build()
}

/// AdAway (§V-B, permission revocation): targets API 22, uses
/// `WRITE_EXTERNAL_STORAGE`; on a ≥ 23 device the user can revoke it
/// and the export path crashes.
#[must_use]
pub fn adaway() -> Apk {
    let exporter = ClassBuilder::new("org.adaway.HostsExporter", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("exportHosts", "()V", |b| {
            b.invoke_static(well_known::get_external_storage_directory(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .method("onOptionsItemSelected", "(Landroid/view/MenuItem;)Z", |b| {
            b.invoke_virtual(
                MethodRef::new("org.adaway.HostsExporter", "exportHosts", "()V"),
                &[],
                None,
            );
            let r = b.alloc_reg();
            b.const_int(r, 1);
            b.ret(r);
        })
        .unwrap()
        .build();
    ApkBuilder::new("org.adaway", ApiLevel::new(15), ApiLevel::new(22))
        .permission(Permission::android("WRITE_EXTERNAL_STORAGE"))
        .activity("org.adaway.HostsExporter")
        .class(exporter)
        .unwrap()
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_apps_build() {
        assert_eq!(offline_calendar().manifest.min_sdk, ApiLevel::new(8));
        assert_eq!(fosdem().manifest.min_sdk, ApiLevel::new(15));
        assert!(kolab_notes().manifest.targets_runtime_permissions());
        assert!(!adaway().manifest.targets_runtime_permissions());
    }
}
