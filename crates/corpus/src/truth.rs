//! Ground truth and accuracy scoring.
//!
//! The paper measures accuracy (Table II) against the known
//! vulnerabilities reported by the benchmark authors. Each benchmark
//! app here records its injected issues as [`GroundTruthIssue`]s; a
//! detector's report is scored by exact `(kind, site, api)` matching.

use saint_ir::{Apk, MethodRef};
use saintdroid::{Mismatch, MismatchKind, Report};
use serde::{Deserialize, Serialize};

/// One known issue in a benchmark app.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthIssue {
    /// Kind of mismatch.
    pub kind: MismatchKind,
    /// App method anchoring the issue.
    pub site: MethodRef,
    /// Framework API involved (declaring-class form).
    pub api: MethodRef,
    /// Free-form note on what pattern was injected.
    pub note: &'static str,
}

impl GroundTruthIssue {
    fn matches(&self, m: &Mismatch) -> bool {
        self.kind == m.kind && self.site == m.site && self.api == m.api
    }
}

/// Which suite a benchmark app belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    /// The 12 usable apps of CIDER-Bench (Huang et al.).
    CiderBench,
    /// The 7 micro-apps of CID-Bench (Li et al.).
    CidBench,
    /// The planted-defect golden corpus for the comparative harness
    /// (exactly-known AMD *and* declared-SDK defects).
    Planted,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::CiderBench => "CIDER-Bench",
            Suite::CidBench => "CID-Bench",
            Suite::Planted => "Planted",
        })
    }
}

/// A benchmark app: package plus recorded ground truth.
#[derive(Debug)]
pub struct BenchApp {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Which suite it belongs to.
    pub suite: Suite,
    /// The app package.
    pub apk: Apk,
    /// Known issues.
    pub truth: Vec<GroundTruthIssue>,
}

/// A confusion-matrix tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Reported issues matching ground truth.
    pub tp: usize,
    /// Reported issues matching nothing.
    pub fp: usize,
    /// Ground-truth issues nobody reported.
    pub fn_: usize,
}

impl Accuracy {
    /// Precision = TP / (TP + FP); 1.0 when nothing was reported.
    #[must_use]
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when there was nothing to find.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    #[must_use]
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Sums another tally into this one.
    pub fn absorb(&mut self, other: Accuracy) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TP {} FP {} FN {} | P {:.0}% R {:.0}% F {:.0}%",
            self.tp,
            self.fp,
            self.fn_,
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f_measure() * 100.0
        )
    }
}

/// Scores a report against a truth list, optionally restricted to the
/// mismatch kinds in `kinds` (pass `None` to score everything) — tools
/// are only penalized for families they claim to detect, mirroring the
/// per-column scoring of the paper's Table II.
#[must_use]
pub fn score(
    report: &Report,
    truth: &[GroundTruthIssue],
    kinds: Option<&[MismatchKind]>,
) -> Accuracy {
    let relevant_kind = |k: MismatchKind| kinds.is_none_or(|ks| ks.contains(&k));
    let reported: Vec<&Mismatch> = report
        .mismatches
        .iter()
        .filter(|m| relevant_kind(m.kind))
        .collect();
    let truths: Vec<&GroundTruthIssue> = truth.iter().filter(|t| relevant_kind(t.kind)).collect();
    let tp = truths
        .iter()
        .filter(|t| reported.iter().any(|m| t.matches(m)))
        .count();
    let fn_ = truths.len() - tp;
    let fp = reported
        .iter()
        .filter(|m| !truths.iter().any(|t| t.matches(m)))
        .count();
    Accuracy { tp, fp, fn_ }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_adf::spec::LifeSpan;
    use saint_ir::ApiLevel;

    fn truth_item(site: &str, api: &str) -> GroundTruthIssue {
        GroundTruthIssue {
            kind: MismatchKind::ApiInvocation,
            site: MethodRef::new("p.C", site, "()V"),
            api: MethodRef::new("android.x.Y", api, "()V"),
            note: "test",
        }
    }

    fn reported(site: &str, api: &str) -> Mismatch {
        Mismatch {
            kind: MismatchKind::ApiInvocation,
            site: MethodRef::new("p.C", site, "()V"),
            api: MethodRef::new("android.x.Y", api, "()V"),
            api_life: Some(LifeSpan::since(23)),
            missing_levels: vec![ApiLevel::new(21)],
            context: None,
            permission: None,
            via: Vec::new(),
        }
    }

    #[test]
    fn exact_match_scoring() {
        let mut report = Report::new("p", "t");
        report.extend_deduped([reported("a", "x"), reported("b", "wrong")]);
        let truth = vec![truth_item("a", "x"), truth_item("c", "x")];
        let acc = score(&report, &truth, None);
        assert_eq!(
            acc,
            Accuracy {
                tp: 1,
                fp: 1,
                fn_: 1
            }
        );
        assert!((acc.precision() - 0.5).abs() < 1e-9);
        assert!((acc.recall() - 0.5).abs() < 1e-9);
        assert!((acc.f_measure() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kind_restriction_ignores_other_families() {
        let mut report = Report::new("p", "t");
        report.extend_deduped([reported("a", "x")]);
        let mut apc = truth_item("b", "y");
        apc.kind = MismatchKind::ApiCallback;
        let truth = vec![truth_item("a", "x"), apc];
        // Scored as an API-only tool: the APC truth is out of scope.
        let acc = score(&report, &truth, Some(&[MismatchKind::ApiInvocation]));
        assert_eq!(
            acc,
            Accuracy {
                tp: 1,
                fp: 0,
                fn_: 0
            }
        );
        // Scored over everything: the APC item counts as a miss.
        let all = score(&report, &truth, None);
        assert_eq!(all.fn_, 1);
    }

    #[test]
    fn empty_cases() {
        let report = Report::new("p", "t");
        let acc = score(&report, &[], None);
        assert_eq!(acc.precision(), 1.0);
        assert_eq!(acc.recall(), 1.0);
        assert_eq!(acc.f_measure(), 1.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = Accuracy {
            tp: 1,
            fp: 2,
            fn_: 3,
        };
        a.absorb(Accuracy {
            tp: 4,
            fp: 0,
            fn_: 1,
        });
        assert_eq!(
            a,
            Accuracy {
                tp: 5,
                fp: 2,
                fn_: 4
            }
        );
    }

    #[test]
    fn display_percentages() {
        let a = Accuracy {
            tp: 3,
            fp: 1,
            fn_: 1,
        };
        let s = a.to_string();
        assert!(s.contains("P 75%"));
        assert!(s.contains("R 75%"));
    }
}
