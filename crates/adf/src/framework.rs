//! The assembled framework: spec + mined database + permission map +
//! lazily materialized per-level classes.
//!
//! [`AndroidFramework`] is the artifact shared across all app analyses:
//! the database and permission map are built **once** per framework
//! (paper §III-B, "the API database is constructed once for a given
//! framework … as a reusable model"), while class *bodies* are
//! materialized per `(level, class)` on first request — the on-demand
//! path the CLVM rides, and the thing eager baselines bypass by calling
//! [`AndroidFramework::all_classes_at`].

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use saint_ir::{ApiLevel, ClassDef, ClassName};

use crate::database::ApiDatabase;
use crate::permissions::PermissionMap;
use crate::spec::FrameworkSpec;
use crate::synth::SynthConfig;

/// An alternative origin for materialized framework classes.
///
/// A source answers `Some(answer)` when it is authoritative for
/// `(level, name)` — `Some(None)` meaning "the class does not exist at
/// that level" — and `None` when it has no opinion, in which case the
/// framework falls back to materializing from its spec. The frozen
/// artifact layer installs one of these so class bodies come from an
/// mmapped image instead of the spec materializer.
pub trait ClassSource: Send + Sync {
    /// The class as it exists at `level`, if this source is
    /// authoritative for it.
    fn class_at(&self, level: ApiLevel, name: &ClassName) -> Option<Option<Arc<ClassDef>>>;
}

/// A ready-to-analyze Android framework model.
pub struct AndroidFramework {
    spec: FrameworkSpec,
    database: OnceLock<Arc<ApiDatabase>>,
    permissions: OnceLock<Arc<PermissionMap>>,
    class_source: OnceLock<Arc<dyn ClassSource>>,
    #[allow(clippy::type_complexity)]
    class_cache: Mutex<HashMap<(ApiLevel, ClassName), Option<Arc<ClassDef>>>>,
}

impl AndroidFramework {
    /// Wraps an arbitrary spec.
    #[must_use]
    pub fn from_spec(spec: FrameworkSpec) -> Self {
        AndroidFramework {
            spec,
            database: OnceLock::new(),
            permissions: OnceLock::new(),
            class_source: OnceLock::new(),
            class_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The curated surface only — fast, used by most unit tests.
    #[must_use]
    pub fn curated() -> Self {
        Self::from_spec(crate::android::android_spec())
    }

    /// Curated surface plus a synthetic expansion.
    #[must_use]
    pub fn with_scale(cfg: &SynthConfig) -> Self {
        Self::from_spec(crate::synth::expanded_android_spec(cfg))
    }

    /// The underlying spec.
    #[must_use]
    pub fn spec(&self) -> &FrameworkSpec {
        &self.spec
    }

    /// The mined API database (mined on first use, then shared).
    #[must_use]
    pub fn database(&self) -> Arc<ApiDatabase> {
        Arc::clone(
            self.database
                .get_or_init(|| Arc::new(ApiDatabase::mine(&self.spec))),
        )
    }

    /// The PScout-style permission map (built on first use, then
    /// shared).
    #[must_use]
    pub fn permission_map(&self) -> Arc<PermissionMap> {
        Arc::clone(
            self.permissions
                .get_or_init(|| Arc::new(PermissionMap::from_spec(&self.spec))),
        )
    }

    /// Seeds the database slot with an externally reconstructed
    /// database (e.g. decoded from a frozen artifact), so the first
    /// [`AndroidFramework::database`] call never mines. Returns `false`
    /// if the slot was already populated (the seed is dropped).
    pub fn seed_database(&self, db: Arc<ApiDatabase>) -> bool {
        self.database.set(db).is_ok()
    }

    /// Seeds the permission-map slot. Returns `false` if the slot was
    /// already populated (the seed is dropped).
    pub fn seed_permission_map(&self, map: Arc<PermissionMap>) -> bool {
        self.permissions.set(map).is_ok()
    }

    /// Installs an alternative [`ClassSource`] consulted by
    /// [`AndroidFramework::class_at`] before the spec materializer.
    /// Returns `false` if a source was already installed (the new one
    /// is dropped).
    pub fn install_class_source(&self, source: Arc<dyn ClassSource>) -> bool {
        self.class_source.set(source).is_ok()
    }

    /// Materializes one framework class as it exists at `level`,
    /// caching the result. Returns `None` for unknown classes or levels
    /// where the class does not exist.
    #[must_use]
    pub fn class_at(&self, level: ApiLevel, name: &ClassName) -> Option<Arc<ClassDef>> {
        let key = (level, name.clone());
        let mut cache = self.class_cache.lock();
        if let Some(hit) = cache.get(&key) {
            return hit.clone();
        }
        let materialized = self
            .class_source
            .get()
            .and_then(|src| src.class_at(level, name))
            .unwrap_or_else(|| self.spec.materialize_class(name, level).map(Arc::new));
        cache.insert(key, materialized.clone());
        materialized
    }

    /// Materializes the *entire* framework at `level` — the eager,
    /// monolithic path that CID-style tools take, and exactly the cost
    /// the CLVM avoids.
    #[must_use]
    pub fn all_classes_at(&self, level: ApiLevel) -> Vec<Arc<ClassDef>> {
        self.spec
            .classes()
            .filter_map(|c| self.class_at(level, &c.name))
            .collect()
    }

    /// Total number of classes in the spec (across all levels).
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.spec.len()
    }
}

impl std::fmt::Debug for AndroidFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AndroidFramework")
            .field("classes", &self.spec.len())
            .field("database_mined", &self.database.get().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_mined_once_and_shared() {
        let fw = AndroidFramework::curated();
        let a = fw.database();
        let b = fw.database();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn class_cache_returns_shared_definitions() {
        let fw = AndroidFramework::curated();
        let name = ClassName::new("android.app.Activity");
        let a = fw.class_at(ApiLevel::new(28), &name).unwrap();
        let b = fw.class_at(ApiLevel::new(28), &name).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn per_level_views_differ() {
        let fw = AndroidFramework::curated();
        let name = ClassName::new("android.app.Activity");
        let old = fw.class_at(ApiLevel::new(10), &name).unwrap();
        let new = fw.class_at(ApiLevel::new(28), &name).unwrap();
        assert!(new.methods.len() > old.methods.len());
    }

    #[test]
    fn missing_class_is_cached_none() {
        let fw = AndroidFramework::curated();
        let ghost = ClassName::new("android.no.Such");
        assert!(fw.class_at(ApiLevel::new(28), &ghost).is_none());
        assert!(fw.class_at(ApiLevel::new(28), &ghost).is_none());
    }

    #[test]
    fn eager_load_covers_spec() {
        let fw = AndroidFramework::curated();
        let all = fw.all_classes_at(ApiLevel::new(28));
        // NotificationChannel (26) included, apache http (removed 23) not.
        let names: Vec<&str> = all.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"android.app.NotificationChannel"));
        assert!(!names.contains(&"org.apache.http.client.HttpClient"));
    }

    #[test]
    fn seeded_database_shortcuts_mining() {
        let fw = AndroidFramework::curated();
        let seeded = Arc::new(ApiDatabase::mine(fw.spec()));
        assert!(fw.seed_database(Arc::clone(&seeded)));
        assert!(Arc::ptr_eq(&fw.database(), &seeded));
        // A second seed is rejected once the slot is filled.
        assert!(!fw.seed_database(Arc::new(ApiDatabase::default())));
        assert!(Arc::ptr_eq(&fw.database(), &seeded));
    }

    #[test]
    fn class_source_is_consulted_before_spec() {
        struct Fixed(Arc<ClassDef>);
        impl ClassSource for Fixed {
            fn class_at(
                &self,
                _level: ApiLevel,
                name: &ClassName,
            ) -> Option<Option<Arc<ClassDef>>> {
                (name.as_str() == "android.app.Activity").then(|| Some(Arc::clone(&self.0)))
            }
        }
        let fw = AndroidFramework::curated();
        let canned = Arc::new(ClassDef::new(
            "android.app.Activity",
            saint_ir::ClassOrigin::Framework,
        ));
        assert!(fw.install_class_source(Arc::new(Fixed(Arc::clone(&canned)))));
        let got = fw
            .class_at(ApiLevel::new(28), &ClassName::new("android.app.Activity"))
            .unwrap();
        assert!(Arc::ptr_eq(&got, &canned));
        // Names the source has no opinion on still fall back to the spec.
        assert!(fw
            .class_at(
                ApiLevel::new(28),
                &ClassName::new("android.app.NotificationChannel")
            )
            .is_some());
    }

    #[test]
    fn framework_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AndroidFramework>();
    }
}
