//! The assembled framework: spec + mined database + permission map +
//! lazily materialized per-level classes.
//!
//! [`AndroidFramework`] is the artifact shared across all app analyses:
//! the database and permission map are built **once** per framework
//! (paper §III-B, "the API database is constructed once for a given
//! framework … as a reusable model"), while class *bodies* are
//! materialized per `(level, class)` on first request — the on-demand
//! path the CLVM rides, and the thing eager baselines bypass by calling
//! [`AndroidFramework::all_classes_at`].

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use saint_ir::{ApiLevel, ClassDef, ClassName};

use crate::database::ApiDatabase;
use crate::permissions::PermissionMap;
use crate::spec::FrameworkSpec;
use crate::synth::SynthConfig;

/// A ready-to-analyze Android framework model.
pub struct AndroidFramework {
    spec: FrameworkSpec,
    database: OnceLock<Arc<ApiDatabase>>,
    permissions: OnceLock<Arc<PermissionMap>>,
    #[allow(clippy::type_complexity)]
    class_cache: Mutex<HashMap<(ApiLevel, ClassName), Option<Arc<ClassDef>>>>,
}

impl AndroidFramework {
    /// Wraps an arbitrary spec.
    #[must_use]
    pub fn from_spec(spec: FrameworkSpec) -> Self {
        AndroidFramework {
            spec,
            database: OnceLock::new(),
            permissions: OnceLock::new(),
            class_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The curated surface only — fast, used by most unit tests.
    #[must_use]
    pub fn curated() -> Self {
        Self::from_spec(crate::android::android_spec())
    }

    /// Curated surface plus a synthetic expansion.
    #[must_use]
    pub fn with_scale(cfg: &SynthConfig) -> Self {
        Self::from_spec(crate::synth::expanded_android_spec(cfg))
    }

    /// The underlying spec.
    #[must_use]
    pub fn spec(&self) -> &FrameworkSpec {
        &self.spec
    }

    /// The mined API database (mined on first use, then shared).
    #[must_use]
    pub fn database(&self) -> Arc<ApiDatabase> {
        Arc::clone(
            self.database
                .get_or_init(|| Arc::new(ApiDatabase::mine(&self.spec))),
        )
    }

    /// The PScout-style permission map (built on first use, then
    /// shared).
    #[must_use]
    pub fn permission_map(&self) -> Arc<PermissionMap> {
        Arc::clone(
            self.permissions
                .get_or_init(|| Arc::new(PermissionMap::from_spec(&self.spec))),
        )
    }

    /// Materializes one framework class as it exists at `level`,
    /// caching the result. Returns `None` for unknown classes or levels
    /// where the class does not exist.
    #[must_use]
    pub fn class_at(&self, level: ApiLevel, name: &ClassName) -> Option<Arc<ClassDef>> {
        let key = (level, name.clone());
        let mut cache = self.class_cache.lock();
        if let Some(hit) = cache.get(&key) {
            return hit.clone();
        }
        let materialized = self.spec.materialize_class(name, level).map(Arc::new);
        cache.insert(key, materialized.clone());
        materialized
    }

    /// Materializes the *entire* framework at `level` — the eager,
    /// monolithic path that CID-style tools take, and exactly the cost
    /// the CLVM avoids.
    #[must_use]
    pub fn all_classes_at(&self, level: ApiLevel) -> Vec<Arc<ClassDef>> {
        self.spec
            .classes()
            .filter_map(|c| self.class_at(level, &c.name))
            .collect()
    }

    /// Total number of classes in the spec (across all levels).
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.spec.len()
    }
}

impl std::fmt::Debug for AndroidFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AndroidFramework")
            .field("classes", &self.spec.len())
            .field("database_mined", &self.database.get().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_mined_once_and_shared() {
        let fw = AndroidFramework::curated();
        let a = fw.database();
        let b = fw.database();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn class_cache_returns_shared_definitions() {
        let fw = AndroidFramework::curated();
        let name = ClassName::new("android.app.Activity");
        let a = fw.class_at(ApiLevel::new(28), &name).unwrap();
        let b = fw.class_at(ApiLevel::new(28), &name).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn per_level_views_differ() {
        let fw = AndroidFramework::curated();
        let name = ClassName::new("android.app.Activity");
        let old = fw.class_at(ApiLevel::new(10), &name).unwrap();
        let new = fw.class_at(ApiLevel::new(28), &name).unwrap();
        assert!(new.methods.len() > old.methods.len());
    }

    #[test]
    fn missing_class_is_cached_none() {
        let fw = AndroidFramework::curated();
        let ghost = ClassName::new("android.no.Such");
        assert!(fw.class_at(ApiLevel::new(28), &ghost).is_none());
        assert!(fw.class_at(ApiLevel::new(28), &ghost).is_none());
    }

    #[test]
    fn eager_load_covers_spec() {
        let fw = AndroidFramework::curated();
        let all = fw.all_classes_at(ApiLevel::new(28));
        // NotificationChannel (26) included, apache http (removed 23) not.
        let names: Vec<&str> = all.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"android.app.NotificationChannel"));
        assert!(!names.contains(&"org.apache.http.client.HttpClient"));
    }

    #[test]
    fn framework_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AndroidFramework>();
    }
}
