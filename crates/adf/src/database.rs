//! The mined API database.
//!
//! The ARM component "constructs an API database containing all public
//! APIs defined in Android API levels 2 through [29], allowing
//! SAINTDroid to determine which methods and callbacks exist in each
//! level within the app's supported range" (paper §III-B). Mining here
//! means diffing the per-level API *surfaces* materialized from the
//! framework history — the database never peeks at spec lifetimes, so
//! tests can verify the miner recovers them.

use std::collections::HashMap;

use saint_ir::{ApiLevel, ClassName, MethodRef, MethodSig};

use crate::spec::{FrameworkSpec, LifeSpan};

/// The queryable database of API method and class lifetimes.
#[derive(Debug, Clone, Default)]
pub struct ApiDatabase {
    methods: HashMap<MethodRef, LifeSpan>,
    classes: HashMap<ClassName, LifeSpan>,
    supers: HashMap<ClassName, Option<ClassName>>,
}

impl ApiDatabase {
    /// Mines the database from a framework history by materializing and
    /// diffing the API surface of every modeled level.
    #[must_use]
    pub fn mine(spec: &FrameworkSpec) -> Self {
        let mut method_first: HashMap<MethodRef, ApiLevel> = HashMap::new();
        let mut method_removed: HashMap<MethodRef, ApiLevel> = HashMap::new();
        let mut class_first: HashMap<ClassName, ApiLevel> = HashMap::new();
        let mut class_removed: HashMap<ClassName, ApiLevel> = HashMap::new();
        let mut supers: HashMap<ClassName, Option<ClassName>> = HashMap::new();

        for level in ApiLevel::all_modeled() {
            let mut seen_classes: Vec<ClassName> = Vec::new();
            let mut seen_methods: Vec<MethodRef> = Vec::new();
            for class in spec.classes() {
                if !class.life.exists_at(level) {
                    continue;
                }
                seen_classes.push(class.name.clone());
                supers
                    .entry(class.name.clone())
                    .or_insert_with(|| class.super_class.clone());
                for m in &class.methods {
                    if m.life.exists_at(level) {
                        seen_methods.push(class.method_ref(&m.name, &m.descriptor));
                    }
                }
            }
            for c in &seen_classes {
                class_first.entry(c.clone()).or_insert(level);
            }
            for m in &seen_methods {
                method_first.entry(m.clone()).or_insert(level);
            }
            // Removal detection: anything previously seen but absent now.
            let class_set: std::collections::HashSet<&ClassName> = seen_classes.iter().collect();
            for (c, _) in class_first.iter() {
                if !class_set.contains(c) {
                    class_removed.entry(c.clone()).or_insert(level);
                }
            }
            let method_set: std::collections::HashSet<&MethodRef> = seen_methods.iter().collect();
            for (m, _) in method_first.iter() {
                if !method_set.contains(m) {
                    method_removed.entry(m.clone()).or_insert(level);
                }
            }
        }

        let methods = method_first
            .into_iter()
            .map(|(m, since)| {
                let removed = method_removed.get(&m).copied();
                (m, LifeSpan { since, removed })
            })
            .collect();
        let classes = class_first
            .into_iter()
            .map(|(c, since)| {
                let removed = class_removed.get(&c).copied();
                (c, LifeSpan { since, removed })
            })
            .collect();
        ApiDatabase {
            methods,
            classes,
            supers,
        }
    }

    /// Reassembles a database from previously mined parts.
    ///
    /// This is the load path for frozen artifacts: a database mined
    /// once, serialized, and reconstructed without re-materializing any
    /// API surface. Content-equal to the [`ApiDatabase::mine`] result
    /// it was built from.
    #[must_use]
    pub fn from_parts(
        methods: HashMap<MethodRef, LifeSpan>,
        classes: HashMap<ClassName, LifeSpan>,
        supers: HashMap<ClassName, Option<ClassName>>,
    ) -> Self {
        ApiDatabase {
            methods,
            classes,
            supers,
        }
    }

    /// Iterates every mined class with its lifetime.
    pub fn classes(&self) -> impl Iterator<Item = (&ClassName, LifeSpan)> {
        self.classes.iter().map(|(c, l)| (c, *l))
    }

    /// Iterates every known `class -> direct superclass` edge.
    pub fn supers(&self) -> impl Iterator<Item = (&ClassName, Option<&ClassName>)> {
        self.supers.iter().map(|(c, s)| (c, s.as_ref()))
    }

    /// Whether the database knows `class` as a framework class (at any
    /// level).
    #[must_use]
    pub fn is_api_class(&self, class: &ClassName) -> bool {
        self.classes.contains_key(class)
    }

    /// Whether `class` exists at `level`.
    #[must_use]
    pub fn class_exists(&self, class: &ClassName, level: ApiLevel) -> bool {
        self.classes.get(class).is_some_and(|l| l.exists_at(level))
    }

    /// The mined lifetime of a method, if it is a framework API.
    #[must_use]
    pub fn method_lifespan(&self, method: &MethodRef) -> Option<LifeSpan> {
        self.methods.get(method).copied()
    }

    /// The mined lifetime of a class.
    #[must_use]
    pub fn class_lifespan(&self, class: &ClassName) -> Option<LifeSpan> {
        self.classes.get(class).copied()
    }

    /// Whether `method` (exact class + signature) exists at `level` —
    /// the `apidb.CONTAINS(block, lvl)` query of paper Algorithm 2.
    #[must_use]
    pub fn contains(&self, method: &MethodRef, level: ApiLevel) -> bool {
        self.methods.get(method).is_some_and(|l| l.exists_at(level))
    }

    /// Whether the database knows `method` as a framework API at any
    /// level.
    #[must_use]
    pub fn is_api_method(&self, method: &MethodRef) -> bool {
        self.methods.contains_key(method)
    }

    /// The direct superclass of a framework class.
    #[must_use]
    pub fn super_class(&self, class: &ClassName) -> Option<&ClassName> {
        self.supers.get(class).and_then(Option::as_ref)
    }

    /// Resolves a virtual call `class.sig` by walking up the framework
    /// hierarchy to the declaring class, returning the declared
    /// [`MethodRef`] and its lifetime.
    ///
    /// This is how calls like `MainActivity.getFragmentManager()` (a
    /// method declared on `android.app.Activity`) are attributed to the
    /// framework API that actually carries the lifetime.
    #[must_use]
    pub fn resolve(&self, class: &ClassName, sig: &MethodSig) -> Option<(MethodRef, LifeSpan)> {
        let mut current = Some(class.clone());
        // Bounded walk protects against (malformed) hierarchy cycles.
        for _ in 0..64 {
            let c = current?;
            let candidate = sig.on_class(c.clone());
            if let Some(life) = self.methods.get(&candidate) {
                return Some((candidate, *life));
            }
            current = self.supers.get(&c).cloned().flatten();
        }
        None
    }

    /// Whether the method is a framework *callback*: an API method apps
    /// override, classified automatically from the mined surface by the
    /// platform's `on…` handler convention. This is what lets
    /// SAINTDroid cover "all classes in the Android API" without
    /// CIDER's hand-built models (paper §V-A).
    #[must_use]
    pub fn is_callback(&self, method: &MethodRef) -> bool {
        self.is_api_method(method) && Self::callback_name(&method.name)
    }

    /// The `on…` naming convention test used for callback
    /// classification.
    #[must_use]
    pub fn callback_name(name: &str) -> bool {
        name.len() > 2
            && name.starts_with("on")
            && name.as_bytes().get(2).is_some_and(u8::is_ascii_uppercase)
    }

    /// Finds the framework method an app-level method with signature
    /// `sig`, declared in a class extending `app_super`, overrides:
    /// walks the framework hierarchy from `app_super` and returns the
    /// first matching API method.
    ///
    /// No naming filter is applied: Algorithm 3 checks *any* overridden
    /// API method against the supported range (the paper's FOSDEM case
    /// study is `View.drawableHotspotChanged`, which no `on…`
    /// convention would catch). The [`ApiDatabase::callback_name`]
    /// convention exists only for the CIDER baseline's modeled lists.
    #[must_use]
    pub fn overridden_callback(
        &self,
        app_super: &ClassName,
        sig: &MethodSig,
    ) -> Option<(MethodRef, LifeSpan)> {
        self.resolve(app_super, sig)
    }

    /// Number of mined API methods.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of mined API classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Iterates every mined method with its lifetime.
    pub fn methods(&self) -> impl Iterator<Item = (&MethodRef, LifeSpan)> {
        self.methods.iter().map(|(m, l)| (m, *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClassSpec, MethodSpec};

    fn demo_spec() -> FrameworkSpec {
        let mut s = FrameworkSpec::new();
        s.add_class(
            ClassSpec::new("android.app.Activity")
                .method(MethodSpec::leaf(
                    "onCreate",
                    "(Landroid/os/Bundle;)V",
                    LifeSpan::always(),
                ))
                .method(MethodSpec::leaf(
                    "getFragmentManager",
                    "()V",
                    LifeSpan::since(11),
                ))
                .method(MethodSpec::leaf(
                    "onRequestPermissionsResult",
                    "(I)V",
                    LifeSpan::since(23),
                ))
                .method(MethodSpec::leaf(
                    "managedQuery",
                    "()V",
                    LifeSpan::between(2, 11),
                )),
        );
        s.add_class(
            ClassSpec::new("android.app.NotificationChannel")
                .life(LifeSpan::since(26))
                .method(MethodSpec::leaf("setName", "()V", LifeSpan::since(26))),
        );
        s.add_class(
            ClassSpec::new("android.app.ListActivity")
                .extends("android.app.Activity")
                .method(MethodSpec::leaf("getListView", "()V", LifeSpan::always())),
        );
        s
    }

    #[test]
    fn mining_recovers_lifetimes() {
        let db = ApiDatabase::mine(&demo_spec());
        let gfm = MethodRef::new("android.app.Activity", "getFragmentManager", "()V");
        assert_eq!(
            db.method_lifespan(&gfm),
            Some(LifeSpan::since(11)),
            "introduction level recovered by diffing"
        );
        let mq = MethodRef::new("android.app.Activity", "managedQuery", "()V");
        assert_eq!(db.method_lifespan(&mq), Some(LifeSpan::between(2, 11)));
    }

    #[test]
    fn mining_recovers_class_lifetimes() {
        let db = ApiDatabase::mine(&demo_spec());
        let nc = ClassName::new("android.app.NotificationChannel");
        assert_eq!(db.class_lifespan(&nc), Some(LifeSpan::since(26)));
        assert!(!db.class_exists(&nc, ApiLevel::new(25)));
        assert!(db.class_exists(&nc, ApiLevel::new(26)));
    }

    #[test]
    fn contains_respects_levels() {
        let db = ApiDatabase::mine(&demo_spec());
        let gfm = MethodRef::new("android.app.Activity", "getFragmentManager", "()V");
        assert!(!db.contains(&gfm, ApiLevel::new(10)));
        assert!(db.contains(&gfm, ApiLevel::new(11)));
        assert!(db.contains(&gfm, ApiLevel::new(29)));
    }

    #[test]
    fn resolve_walks_hierarchy() {
        let db = ApiDatabase::mine(&demo_spec());
        // ListActivity does not declare getFragmentManager; resolution
        // must attribute it to Activity.
        let (declared, life) = db
            .resolve(
                &ClassName::new("android.app.ListActivity"),
                &MethodSig::new("getFragmentManager", "()V"),
            )
            .unwrap();
        assert_eq!(declared.class.as_str(), "android.app.Activity");
        assert_eq!(life, LifeSpan::since(11));
    }

    #[test]
    fn resolve_unknown_is_none() {
        let db = ApiDatabase::mine(&demo_spec());
        assert!(db
            .resolve(
                &ClassName::new("android.app.Activity"),
                &MethodSig::new("noSuchMethod", "()V")
            )
            .is_none());
    }

    #[test]
    fn callback_naming_convention() {
        assert!(ApiDatabase::callback_name("onCreate"));
        assert!(ApiDatabase::callback_name("onRequestPermissionsResult"));
        assert!(!ApiDatabase::callback_name("once"));
        assert!(!ApiDatabase::callback_name("on"));
        assert!(!ApiDatabase::callback_name("open"));
        assert!(!ApiDatabase::callback_name("getFragmentManager"));
    }

    #[test]
    fn overridden_callback_resolution() {
        let db = ApiDatabase::mine(&demo_spec());
        // An app class extending ListActivity overriding onCreate: the
        // callback resolves two levels up the hierarchy.
        let found = db
            .overridden_callback(
                &ClassName::new("android.app.ListActivity"),
                &MethodSig::new("onCreate", "(Landroid/os/Bundle;)V"),
            )
            .unwrap();
        assert_eq!(found.0.class.as_str(), "android.app.Activity");
        // Non-`on…` overrides also resolve (FOSDEM-style cases): any
        // overridden API method is a candidate for Algorithm 3.
        assert!(db
            .overridden_callback(
                &ClassName::new("android.app.ListActivity"),
                &MethodSig::new("getListView", "()V")
            )
            .is_some());
        // Methods the framework never declared do not resolve.
        assert!(db
            .overridden_callback(
                &ClassName::new("android.app.ListActivity"),
                &MethodSig::new("purelyAppLogic", "()V")
            )
            .is_none());
    }

    #[test]
    fn counts() {
        let db = ApiDatabase::mine(&demo_spec());
        assert_eq!(db.class_count(), 3);
        assert_eq!(db.method_count(), 6);
    }
}
