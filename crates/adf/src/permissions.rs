//! Dangerous permissions and the PScout-style permission map.
//!
//! The paper's ARM component "extends the database with mappings
//! between Android API methods and the permissions required by the
//! Android framework during the execution of those methods", built on
//! PScout (§III-B). Our map is generated from the framework spec's
//! permission annotations — the same role, same query interface.

use std::collections::BTreeMap;

use saint_ir::{MethodRef, Permission};

use crate::spec::FrameworkSpec;

/// The 26 permissions Android classifies as *dangerous* under the
/// API-23 runtime permission system (paper §II-C: "In total, Android
/// classifies 26 permissions as dangerous").
pub const DANGEROUS_PERMISSIONS: [&str; 26] = [
    "android.permission.READ_CALENDAR",
    "android.permission.WRITE_CALENDAR",
    "android.permission.CAMERA",
    "android.permission.READ_CONTACTS",
    "android.permission.WRITE_CONTACTS",
    "android.permission.GET_ACCOUNTS",
    "android.permission.ACCESS_FINE_LOCATION",
    "android.permission.ACCESS_COARSE_LOCATION",
    "android.permission.RECORD_AUDIO",
    "android.permission.READ_PHONE_STATE",
    "android.permission.READ_PHONE_NUMBERS",
    "android.permission.CALL_PHONE",
    "android.permission.ANSWER_PHONE_CALLS",
    "android.permission.READ_CALL_LOG",
    "android.permission.WRITE_CALL_LOG",
    "android.permission.ADD_VOICEMAIL",
    "android.permission.USE_SIP",
    "android.permission.PROCESS_OUTGOING_CALLS",
    "android.permission.BODY_SENSORS",
    "android.permission.SEND_SMS",
    "android.permission.RECEIVE_SMS",
    "android.permission.READ_SMS",
    "android.permission.RECEIVE_WAP_PUSH",
    "android.permission.RECEIVE_MMS",
    "android.permission.READ_EXTERNAL_STORAGE",
    "android.permission.WRITE_EXTERNAL_STORAGE",
];

/// Whether a permission is one of the 26 dangerous permissions.
#[must_use]
pub fn is_dangerous(p: &Permission) -> bool {
    DANGEROUS_PERMISSIONS.contains(&p.as_str())
}

/// The dangerous permissions as [`Permission`] values.
#[must_use]
pub fn dangerous_permissions() -> Vec<Permission> {
    DANGEROUS_PERMISSIONS
        .iter()
        .map(|p| Permission::new(*p))
        .collect()
}

/// Maps framework API methods to the permissions the framework enforces
/// while executing them.
///
/// Built once per framework and reused across app analyses (paper
/// §III-B: "permission maps are constructed once and reused in the
/// subsequent analyses").
#[derive(Debug, Clone, Default)]
pub struct PermissionMap {
    map: BTreeMap<MethodRef, Vec<Permission>>,
}

impl PermissionMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        PermissionMap::default()
    }

    /// Builds the map from a framework spec's annotations.
    #[must_use]
    pub fn from_spec(spec: &FrameworkSpec) -> Self {
        let mut map = BTreeMap::new();
        for class in spec.classes() {
            for m in &class.methods {
                if !m.permissions.is_empty() {
                    map.insert(
                        class.method_ref(&m.name, &m.descriptor),
                        m.permissions.clone(),
                    );
                }
            }
        }
        PermissionMap { map }
    }

    /// Records a mapping.
    pub fn insert(&mut self, method: MethodRef, permissions: Vec<Permission>) {
        self.map.insert(method, permissions);
    }

    /// Permissions required to execute `method`; empty if unmapped.
    #[must_use]
    pub fn required(&self, method: &MethodRef) -> &[Permission] {
        self.map.get(method).map_or(&[], Vec::as_slice)
    }

    /// Dangerous permissions required to execute `method`.
    pub fn required_dangerous<'a>(
        &'a self,
        method: &MethodRef,
    ) -> impl Iterator<Item = &'a Permission> {
        self.required(method).iter().filter(|p| is_dangerous(p))
    }

    /// Number of mapped methods.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates all `(method, permissions)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&MethodRef, &[Permission])> {
        self.map.iter().map(|(m, p)| (m, p.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ClassSpec, LifeSpan, MethodSpec};

    #[test]
    fn exactly_26_dangerous_permissions() {
        assert_eq!(DANGEROUS_PERMISSIONS.len(), 26);
        // no duplicates
        let mut sorted = DANGEROUS_PERMISSIONS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 26);
    }

    #[test]
    fn dangerous_membership() {
        assert!(is_dangerous(&Permission::android("CAMERA")));
        assert!(is_dangerous(&Permission::android("WRITE_EXTERNAL_STORAGE")));
        assert!(!is_dangerous(&Permission::android("INTERNET")));
        assert!(!is_dangerous(&Permission::android("VIBRATE")));
    }

    #[test]
    fn map_from_spec_annotations() {
        let mut spec = FrameworkSpec::new();
        spec.add_class(
            ClassSpec::new("android.hardware.Camera").method(
                MethodSpec::leaf("open", "()V", LifeSpan::always())
                    .requires(Permission::android("CAMERA")),
            ),
        );
        spec.add_class(ClassSpec::new("android.test.Free").method(MethodSpec::leaf(
            "free",
            "()V",
            LifeSpan::always(),
        )));
        let map = PermissionMap::from_spec(&spec);
        assert_eq!(map.len(), 1);
        let open = MethodRef::new("android.hardware.Camera", "open", "()V");
        assert_eq!(map.required(&open), &[Permission::android("CAMERA")]);
        let free = MethodRef::new("android.test.Free", "free", "()V");
        assert!(map.required(&free).is_empty());
    }

    #[test]
    fn required_dangerous_filters() {
        let mut map = PermissionMap::new();
        let m = MethodRef::new("a.B", "net", "()V");
        map.insert(
            m.clone(),
            vec![
                Permission::android("INTERNET"),
                Permission::android("CAMERA"),
            ],
        );
        let dangerous: Vec<_> = map.required_dangerous(&m).collect();
        assert_eq!(dangerous, vec![&Permission::android("CAMERA")]);
    }
}
