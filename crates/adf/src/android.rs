//! The curated Android API surface.
//!
//! This module encodes the compatibility-critical slice of the real
//! Android framework — the classes, methods, callbacks, lifetimes and
//! permission requirements that the paper's examples and benchmarks
//! revolve around — as a [`FrameworkSpec`]. Lifetimes follow the real
//! platform history (e.g. `Activity.getFragmentManager` appeared in API
//! 11, `Context.getColorStateList` in 23, the Apache HTTP client left
//! the platform at 23).
//!
//! The [`well_known`] submodule exposes typed [`MethodRef`]s for the
//! members the corpus and tests reference, so call sites cannot drift
//! out of sync with the spec.

use saint_ir::{MethodRef, Permission};

use crate::spec::{ClassSpec, FrameworkSpec, LifeSpan, MethodSpec};

fn leaf(name: &str, descriptor: &str, life: LifeSpan) -> MethodSpec {
    MethodSpec::leaf(name, descriptor, life)
}

/// Builds the curated Android framework history (no synthetic
/// expansion; see [`crate::synth`] for scale).
#[must_use]
pub fn android_spec() -> FrameworkSpec {
    let mut s = FrameworkSpec::new();

    // --- java.* foundations -------------------------------------------------
    let mut object = ClassSpec::new("java.lang.Object");
    object.super_class = None;
    s.add_class(
        object
            .method(leaf("equals", "(Ljava/lang/Object;)Z", LifeSpan::always()))
            .method(leaf("hashCode", "()I", LifeSpan::always()))
            .method(leaf("toString", "()Ljava/lang/String;", LifeSpan::always())),
    );
    s.add_class(
        ClassSpec::new("java.lang.String")
            .method(leaf("length", "()I", LifeSpan::always()))
            .method(leaf("isEmpty", "()Z", LifeSpan::always()))
            .method(leaf(
                "join",
                "(Ljava/lang/CharSequence;)Ljava/lang/String;",
                LifeSpan::since(26),
            )),
    );
    s.add_class(
        ClassSpec::new("java.lang.StringBuilder")
            .method(leaf(
                "append",
                "(Ljava/lang/String;)Ljava/lang/StringBuilder;",
                LifeSpan::always(),
            ))
            .method(leaf("toString", "()Ljava/lang/String;", LifeSpan::always())),
    );
    s.add_class(
        ClassSpec::new("java.util.ArrayList")
            .method(leaf("<init>", "()V", LifeSpan::always()))
            .method(leaf("add", "(Ljava/lang/Object;)Z", LifeSpan::always()))
            .method(leaf("get", "(I)Ljava/lang/Object;", LifeSpan::always()))
            .method(leaf(
                "forEach",
                "(Ljava/util/function/Consumer;)V",
                LifeSpan::since(24),
            )),
    );
    s.add_class(
        ClassSpec::new("java.util.HashMap")
            .method(leaf("<init>", "()V", LifeSpan::always()))
            .method(leaf(
                "put",
                "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "getOrDefault",
                "(Ljava/lang/Object;Ljava/lang/Object;)Ljava/lang/Object;",
                LifeSpan::since(24),
            )),
    );
    s.add_class(
        ClassSpec::new("java.io.File")
            .method(leaf("<init>", "(Ljava/lang/String;)V", LifeSpan::always()))
            .method(leaf("exists", "()Z", LifeSpan::always()))
            .method(leaf(
                "toPath",
                "()Ljava/nio/file/Path;",
                LifeSpan::since(26),
            )),
    );
    s.add_class(
        ClassSpec::new("java.lang.Class")
            .method(leaf(
                "forName",
                "(Ljava/lang/String;)Ljava/lang/Class;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "newInstance",
                "()Ljava/lang/Object;",
                LifeSpan::always(),
            )),
    );
    // Late binding: DexClassLoader (paper §III-A).
    s.add_class(
        ClassSpec::new("dalvik.system.DexClassLoader")
            .method(leaf("<init>", "(Ljava/lang/String;)V", LifeSpan::always()))
            .method(leaf(
                "loadClass",
                "(Ljava/lang/String;)Ljava/lang/Class;",
                LifeSpan::always(),
            )),
    );
    // The famous platform removal: Apache HTTP left the boot classpath
    // with Marshmallow. Forward-compatibility test fodder.
    s.add_class(
        ClassSpec::new("org.apache.http.client.HttpClient")
            .life(LifeSpan::between(2, 23))
            .method(leaf(
                "execute",
                "(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;",
                LifeSpan::between(2, 23),
            )),
    );
    s.add_class(
        ClassSpec::new("org.apache.http.client.methods.HttpGet")
            .life(LifeSpan::between(2, 23))
            .method(leaf(
                "<init>",
                "(Ljava/lang/String;)V",
                LifeSpan::between(2, 23),
            )),
    );

    // --- Build / version ----------------------------------------------------
    s.add_class(ClassSpec::new("android.os.Build$VERSION"));
    s.add_class(ClassSpec::new("android.os.Build"));

    // --- Context hierarchy --------------------------------------------------
    s.add_class(
        ClassSpec::new("android.content.Context")
            .method(leaf(
                "getResources",
                "()Landroid/content/res/Resources;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "getString",
                "(I)Ljava/lang/String;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "getSystemService",
                "(Ljava/lang/String;)Ljava/lang/Object;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "getDrawable",
                "(I)Landroid/graphics/drawable/Drawable;",
                LifeSpan::since(21),
            ))
            .method(leaf(
                "getColorStateList",
                "(I)Landroid/content/res/ColorStateList;",
                LifeSpan::since(23),
            ))
            .method(leaf("getColor", "(I)I", LifeSpan::since(23)))
            .method(leaf(
                "checkSelfPermission",
                "(Ljava/lang/String;)I",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "startActivity",
                "(Landroid/content/Intent;)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "sendBroadcast",
                "(Landroid/content/Intent;)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "getExternalFilesDir",
                "(Ljava/lang/String;)Ljava/io/File;",
                LifeSpan::since(8),
            ))
            .method(leaf(
                "getContentResolver",
                "()Landroid/content/ContentResolver;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "createDeviceProtectedStorageContext",
                "()Landroid/content/Context;",
                LifeSpan::since(24),
            ))
            .method(leaf(
                "getOpPackageName",
                "()Ljava/lang/String;",
                LifeSpan::since(29),
            )),
    );
    s.add_class(
        ClassSpec::new("android.content.ContextWrapper").extends("android.content.Context"),
    );
    s.add_class(
        ClassSpec::new("android.view.ContextThemeWrapper")
            .extends("android.content.ContextWrapper"),
    );
    s.add_class(
        ClassSpec::new("android.content.res.Resources")
            .method(leaf(
                "getString",
                "(I)Ljava/lang/String;",
                LifeSpan::always(),
            ))
            .method(leaf("getColor", "(I)I", LifeSpan::always()))
            .method(leaf(
                "getColorStateList",
                "(ILandroid/content/res/Resources$Theme;)Landroid/content/res/ColorStateList;",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "getDrawable",
                "(ILandroid/content/res/Resources$Theme;)Landroid/graphics/drawable/Drawable;",
                LifeSpan::since(21),
            ))
            .method(leaf(
                "getFont",
                "(I)Landroid/graphics/Typeface;",
                LifeSpan::since(26),
            )),
    );
    s.add_class(
        ClassSpec::new("android.content.Intent")
            .method(leaf("<init>", "(Ljava/lang/String;)V", LifeSpan::always()))
            .method(leaf(
                "putExtra",
                "(Ljava/lang/String;Ljava/lang/String;)Landroid/content/Intent;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "setAction",
                "(Ljava/lang/String;)Landroid/content/Intent;",
                LifeSpan::always(),
            )),
    );
    s.add_class(
        ClassSpec::new("android.content.ContentResolver")
            .method(leaf(
                "query",
                "(Landroid/net/Uri;)Landroid/database/Cursor;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "insert",
                "(Landroid/net/Uri;)Landroid/net/Uri;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "takePersistableUriPermission",
                "(Landroid/net/Uri;I)V",
                LifeSpan::since(19),
            )),
    );

    // --- Activity & friends -------------------------------------------------
    s.add_class(
        ClassSpec::new("android.app.Activity")
            .extends("android.view.ContextThemeWrapper")
            .method(leaf(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                LifeSpan::always(),
            ))
            .method(leaf("onStart", "()V", LifeSpan::always()))
            .method(leaf("onResume", "()V", LifeSpan::always()))
            .method(leaf("onPause", "()V", LifeSpan::always()))
            .method(leaf("onStop", "()V", LifeSpan::always()))
            .method(leaf("onDestroy", "()V", LifeSpan::always()))
            .method(leaf(
                "onSaveInstanceState",
                "(Landroid/os/Bundle;)V",
                LifeSpan::always(),
            ))
            .method(leaf("onBackPressed", "()V", LifeSpan::since(5)))
            .method(leaf("onAttachedToWindow", "()V", LifeSpan::since(5)))
            .method(leaf("setContentView", "(I)V", LifeSpan::always()))
            .method(leaf(
                "findViewById",
                "(I)Landroid/view/View;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "getFragmentManager",
                "()Landroid/app/FragmentManager;",
                LifeSpan::since(11),
            ))
            .method(leaf(
                "getLoaderManager",
                "()Landroid/app/LoaderManager;",
                LifeSpan::since(11),
            ))
            .method(leaf("invalidateOptionsMenu", "()V", LifeSpan::since(11)))
            .method(leaf(
                "requestPermissions",
                "([Ljava/lang/String;I)V",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "onRequestPermissionsResult",
                "(I[Ljava/lang/String;[I)V",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "shouldShowRequestPermissionRationale",
                "(Ljava/lang/String;)Z",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "onMultiWindowModeChanged",
                "(Z)V",
                LifeSpan::since(24),
            ))
            .method(leaf("isInMultiWindowMode", "()Z", LifeSpan::since(24)))
            .method(leaf(
                "onPictureInPictureModeChanged",
                "(Z)V",
                LifeSpan::since(24),
            ))
            .method(leaf(
                "enterPictureInPictureMode",
                "()V",
                LifeSpan::since(24),
            ))
            .method(leaf(
                "onTopResumedActivityChanged",
                "(Z)V",
                LifeSpan::since(29),
            ))
            .method(leaf(
                "managedQuery",
                "(Landroid/net/Uri;)Landroid/database/Cursor;",
                LifeSpan::between(2, 28),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.ListActivity")
            .extends("android.app.Activity")
            .method(leaf(
                "getListView",
                "()Landroid/widget/ListView;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "onListItemClick",
                "(Landroid/widget/ListView;Landroid/view/View;IJ)V",
                LifeSpan::always(),
            )),
    );
    s.add_class(
        ClassSpec::new("android.preference.PreferenceActivity")
            .extends("android.app.ListActivity")
            .method(leaf(
                "addPreferencesFromResource",
                "(I)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "onBuildHeaders",
                "(Ljava/util/List;)V",
                LifeSpan::since(11),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.Fragment")
            .life(LifeSpan::since(11))
            .method(leaf(
                "onAttach",
                "(Landroid/app/Activity;)V",
                LifeSpan::since(11),
            ))
            .method(leaf(
                "onAttach",
                "(Landroid/content/Context;)V",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                LifeSpan::since(11),
            ))
            .method(leaf(
                "onCreateView",
                "(Landroid/view/LayoutInflater;)Landroid/view/View;",
                LifeSpan::since(11),
            ))
            .method(leaf(
                "onViewCreated",
                "(Landroid/view/View;Landroid/os/Bundle;)V",
                LifeSpan::since(13),
            ))
            .method(leaf(
                "getContext",
                "()Landroid/content/Context;",
                LifeSpan::since(23),
            ))
            .method(leaf("onDestroyView", "()V", LifeSpan::since(11))),
    );
    s.add_class(
        ClassSpec::new("android.app.Service")
            .extends("android.content.ContextWrapper")
            .method(leaf("onCreate", "()V", LifeSpan::always()))
            .method(leaf(
                "onBind",
                "(Landroid/content/Intent;)Landroid/os/IBinder;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "onStart",
                "(Landroid/content/Intent;I)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "onStartCommand",
                "(Landroid/content/Intent;II)I",
                LifeSpan::since(5),
            ))
            .method(leaf(
                "onTaskRemoved",
                "(Landroid/content/Intent;)V",
                LifeSpan::since(14),
            ))
            .method(leaf("onTrimMemory", "(I)V", LifeSpan::since(14)))
            .method(leaf(
                "startForeground",
                "(ILandroid/app/Notification;)V",
                LifeSpan::since(5),
            )),
    );
    s.add_class(
        ClassSpec::new("android.content.BroadcastReceiver")
            .method(leaf(
                "onReceive",
                "(Landroid/content/Context;Landroid/content/Intent;)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "goAsync",
                "()Landroid/content/BroadcastReceiver$PendingResult;",
                LifeSpan::since(11),
            )),
    );

    // --- Views --------------------------------------------------------------
    s.add_class(
        ClassSpec::new("android.view.View")
            .method(leaf(
                "onDraw",
                "(Landroid/graphics/Canvas;)V",
                LifeSpan::always(),
            ))
            .method(leaf("invalidate", "()V", LifeSpan::always()))
            .method(leaf(
                "setOnClickListener",
                "(Landroid/view/View$OnClickListener;)V",
                LifeSpan::always(),
            ))
            .method(leaf("performClick", "()Z", LifeSpan::always()))
            .method(leaf(
                "onApplyWindowInsets",
                "(Landroid/view/WindowInsets;)Landroid/view/WindowInsets;",
                LifeSpan::since(20),
            ))
            .method(leaf(
                "setBackgroundTintList",
                "(Landroid/content/res/ColorStateList;)V",
                LifeSpan::since(21),
            ))
            .method(leaf("drawableHotspotChanged", "(FF)V", LifeSpan::since(21)))
            .method(leaf(
                "setForeground",
                "(Landroid/graphics/drawable/Drawable;)V",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "getForeground",
                "()Landroid/graphics/drawable/Drawable;",
                LifeSpan::since(23),
            ))
            .method(leaf("onVisibilityAggregated", "(Z)V", LifeSpan::since(24)))
            .method(leaf(
                "setTooltipText",
                "(Ljava/lang/CharSequence;)V",
                LifeSpan::since(26),
            ))
            .method(leaf("setSystemUiVisibility", "(I)V", LifeSpan::since(11))),
    );
    s.add_class(
        ClassSpec::new("android.view.ViewGroup")
            .extends("android.view.View")
            .method(leaf(
                "addView",
                "(Landroid/view/View;)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "onInterceptTouchEvent",
                "(Landroid/view/MotionEvent;)Z",
                LifeSpan::always(),
            )),
    );
    s.add_class(
        ClassSpec::new("android.widget.LinearLayout")
            .extends("android.view.ViewGroup")
            .method(leaf("setOrientation", "(I)V", LifeSpan::always())),
    );
    s.add_class(
        ClassSpec::new("android.widget.FrameLayout")
            .extends("android.view.ViewGroup")
            .method(leaf("setMeasureAllChildren", "(Z)V", LifeSpan::always())),
    );
    s.add_class(
        ClassSpec::new("android.widget.TextView")
            .extends("android.view.View")
            .method(leaf(
                "setText",
                "(Ljava/lang/CharSequence;)V",
                LifeSpan::always(),
            ))
            .method(leaf("setTextAppearance", "(I)V", LifeSpan::since(23)))
            .method(leaf("onTextContextMenuItem", "(I)Z", LifeSpan::always()))
            .method(leaf(
                "setAutoSizeTextTypeWithDefaults",
                "(I)V",
                LifeSpan::since(26),
            )),
    );
    s.add_class(
        ClassSpec::new("android.widget.ListView")
            .extends("android.view.ViewGroup")
            .method(leaf(
                "setAdapter",
                "(Landroid/widget/ListAdapter;)V",
                LifeSpan::always(),
            )),
    );
    s.add_class(
        ClassSpec::new("android.widget.Toast")
            .method(leaf(
                "makeText",
                "(Landroid/content/Context;Ljava/lang/CharSequence;I)Landroid/widget/Toast;",
                LifeSpan::always(),
            ))
            .method(leaf("show", "()V", LifeSpan::always())),
    );

    // --- WebView ------------------------------------------------------------
    s.add_class(
        ClassSpec::new("android.webkit.WebView")
            .extends("android.view.ViewGroup")
            .method(leaf("loadUrl", "(Ljava/lang/String;)V", LifeSpan::always()))
            .method(leaf(
                "getSettings",
                "()Landroid/webkit/WebSettings;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "setWebViewClient",
                "(Landroid/webkit/WebViewClient;)V",
                LifeSpan::always(),
            ))
            .method(leaf("onPause", "()V", LifeSpan::since(11)))
            .method(leaf("onResume", "()V", LifeSpan::since(11)))
            .method(leaf(
                "evaluateJavascript",
                "(Ljava/lang/String;Landroid/webkit/ValueCallback;)V",
                LifeSpan::since(19),
            ))
            .method(leaf(
                "onProvideVirtualStructure",
                "(Landroid/view/ViewStructure;)V",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "createWebMessageChannel",
                "()[Landroid/webkit/WebMessagePort;",
                LifeSpan::since(23),
            ))
            .method(leaf(
                "postWebMessage",
                "(Landroid/webkit/WebMessage;Landroid/net/Uri;)V",
                LifeSpan::since(23),
            )),
    );
    s.add_class(
        ClassSpec::new("android.webkit.WebViewClient")
            .method(leaf("onPageStarted", "(Landroid/webkit/WebView;Ljava/lang/String;Landroid/graphics/Bitmap;)V", LifeSpan::always()))
            .method(leaf("onPageFinished", "(Landroid/webkit/WebView;Ljava/lang/String;)V", LifeSpan::always()))
            .method(leaf("shouldOverrideUrlLoading", "(Landroid/webkit/WebView;Ljava/lang/String;)Z", LifeSpan::always()))
            .method(leaf("shouldOverrideUrlLoading", "(Landroid/webkit/WebView;Landroid/webkit/WebResourceRequest;)Z", LifeSpan::since(24)))
            .method(leaf("onReceivedHttpError", "(Landroid/webkit/WebView;Landroid/webkit/WebResourceRequest;Landroid/webkit/WebResourceResponse;)V", LifeSpan::since(23)))
            .method(leaf("onPageCommitVisible", "(Landroid/webkit/WebView;Ljava/lang/String;)V", LifeSpan::since(23))),
    );

    // --- Notifications ------------------------------------------------------
    s.add_class(
        ClassSpec::new("android.app.Notification$Builder")
            .life(LifeSpan::since(11))
            .method(leaf(
                "<init>",
                "(Landroid/content/Context;)V",
                LifeSpan::since(11),
            ))
            .method(leaf(
                "<init>",
                "(Landroid/content/Context;Ljava/lang/String;)V",
                LifeSpan::since(26),
            ))
            .method(leaf(
                "setContentTitle",
                "(Ljava/lang/CharSequence;)Landroid/app/Notification$Builder;",
                LifeSpan::since(11),
            ))
            .method(leaf(
                "build",
                "()Landroid/app/Notification;",
                LifeSpan::since(16),
            ))
            .method(leaf(
                "getNotification",
                "()Landroid/app/Notification;",
                LifeSpan::between(11, 28),
            ))
            .method(leaf(
                "setChannelId",
                "(Ljava/lang/String;)Landroid/app/Notification$Builder;",
                LifeSpan::since(26),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.NotificationManager")
            .method(leaf(
                "notify",
                "(ILandroid/app/Notification;)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "createNotificationChannel",
                "(Landroid/app/NotificationChannel;)V",
                LifeSpan::since(26),
            ))
            .method(leaf(
                "getActiveNotifications",
                "()[Landroid/service/notification/StatusBarNotification;",
                LifeSpan::since(23),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.NotificationChannel")
            .life(LifeSpan::since(26))
            .method(leaf(
                "<init>",
                "(Ljava/lang/String;Ljava/lang/CharSequence;I)V",
                LifeSpan::since(26),
            ))
            .method(leaf(
                "setDescription",
                "(Ljava/lang/String;)V",
                LifeSpan::since(26),
            )),
    );

    // --- Permission-guarded APIs (PScout-style mappings) ---------------------
    s.add_class(
        ClassSpec::new("android.hardware.Camera")
            .method(
                leaf("open", "()Landroid/hardware/Camera;", LifeSpan::always())
                    .requires(Permission::android("CAMERA")),
            )
            .method(leaf("release", "()V", LifeSpan::always())),
    );
    s.add_class(
        ClassSpec::new("android.hardware.camera2.CameraManager")
            .life(LifeSpan::since(21))
            .method(
                leaf("openCamera", "(Ljava/lang/String;Landroid/hardware/camera2/CameraDevice$StateCallback;Landroid/os/Handler;)V", LifeSpan::since(21))
                    .requires(Permission::android("CAMERA")),
            ),
    );
    s.add_class(
        ClassSpec::new("android.media.MediaRecorder")
            .method(leaf("<init>", "()V", LifeSpan::always()))
            .method(
                leaf("setAudioSource", "(I)V", LifeSpan::always())
                    .requires(Permission::android("RECORD_AUDIO")),
            )
            .method(leaf("start", "()V", LifeSpan::always())),
    );
    s.add_class(
        ClassSpec::new("android.location.LocationManager")
            .method(
                leaf(
                    "requestLocationUpdates",
                    "(Ljava/lang/String;JFLandroid/location/LocationListener;)V",
                    LifeSpan::always(),
                )
                .requires(Permission::android("ACCESS_FINE_LOCATION")),
            )
            .method(
                leaf(
                    "getLastKnownLocation",
                    "(Ljava/lang/String;)Landroid/location/Location;",
                    LifeSpan::always(),
                )
                .requires(Permission::android("ACCESS_FINE_LOCATION")),
            ),
    );
    s.add_class(
        ClassSpec::new("android.telephony.TelephonyManager")
            .method(
                leaf(
                    "getDeviceId",
                    "()Ljava/lang/String;",
                    LifeSpan::between(2, 26),
                )
                .requires(Permission::android("READ_PHONE_STATE")),
            )
            .method(
                leaf("getImei", "()Ljava/lang/String;", LifeSpan::since(26))
                    .requires(Permission::android("READ_PHONE_STATE")),
            ),
    );
    s.add_class(
        ClassSpec::new("android.telephony.SmsManager")
            .method(leaf("getDefault", "()Landroid/telephony/SmsManager;", LifeSpan::since(4)))
            .method(
                leaf("sendTextMessage", "(Ljava/lang/String;Ljava/lang/String;Ljava/lang/String;Landroid/app/PendingIntent;Landroid/app/PendingIntent;)V", LifeSpan::since(4))
                    .requires(Permission::android("SEND_SMS")),
            ),
    );
    s.add_class(
        ClassSpec::new("android.provider.ContactsContract$Contacts")
            .life(LifeSpan::since(5))
            .method(
                leaf(
                    "query",
                    "(Landroid/content/ContentResolver;)Landroid/database/Cursor;",
                    LifeSpan::since(5),
                )
                .requires(Permission::android("READ_CONTACTS")),
            ),
    );
    s.add_class(
        ClassSpec::new("android.os.Environment")
            .method(
                leaf(
                    "getExternalStorageDirectory",
                    "()Ljava/io/File;",
                    LifeSpan::always(),
                )
                .requires(Permission::android("WRITE_EXTERNAL_STORAGE")),
            )
            .method(leaf(
                "getExternalStorageState",
                "()Ljava/lang/String;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "isExternalStorageRemovable",
                "()Z",
                LifeSpan::since(9),
            )),
    );
    s.add_class(
        ClassSpec::new("android.provider.MediaStore").method(
            leaf(
                "captureImage",
                "(Landroid/content/Context;)V",
                LifeSpan::since(3),
            )
            .requires(Permission::android("CAMERA")),
        ),
    );
    s.add_class(
        ClassSpec::new("android.media.AudioRecord").method(
            leaf("startRecording", "()V", LifeSpan::since(3))
                .requires(Permission::android("RECORD_AUDIO")),
        ),
    );
    s.add_class(
        ClassSpec::new("android.accounts.AccountManager")
            .life(LifeSpan::since(5))
            .method(
                leaf(
                    "getAccounts",
                    "()[Landroid/accounts/Account;",
                    LifeSpan::since(5),
                )
                .requires(Permission::android("GET_ACCOUNTS")),
            ),
    );
    s.add_class(
        ClassSpec::new("android.provider.CalendarContract$Events")
            .life(LifeSpan::since(14))
            .method(
                leaf(
                    "query",
                    "(Landroid/content/ContentResolver;)Landroid/database/Cursor;",
                    LifeSpan::since(14),
                )
                .requires(Permission::android("READ_CALENDAR")),
            ),
    );

    // --- Compat/support layer: guarded and unguarded deep paths --------------
    // ResourcesCompat: the *correctly guarded* compat shim. SAINTDroid
    // must follow the call into this class, see the guard, and stay
    // quiet.
    let ctx_get_csl = MethodRef::new(
        "android.content.Context",
        "getColorStateList",
        "(I)Landroid/content/res/ColorStateList;",
    );
    s.add_class(
        ClassSpec::new("android.support.v4.content.ResourcesCompat").method(
            leaf(
                "getColorStateList",
                "(Landroid/content/Context;I)Landroid/content/res/ColorStateList;",
                LifeSpan::always(),
            )
            .calls_guarded(ctx_get_csl.clone(), 23)
            .weight(6),
        ),
    );
    // ContextCompat.checkSelfPermission: guarded shim over the API-23
    // permission check.
    let ctx_csp = MethodRef::new(
        "android.content.Context",
        "checkSelfPermission",
        "(Ljava/lang/String;)I",
    );
    s.add_class(
        ClassSpec::new("android.support.v4.content.ContextCompat")
            .method(
                leaf(
                    "checkSelfPermission",
                    "(Landroid/content/Context;Ljava/lang/String;)I",
                    LifeSpan::always(),
                )
                .calls_guarded(ctx_csp, 23),
            )
            .method(
                leaf(
                    "getColor",
                    "(Landroid/content/Context;I)I",
                    LifeSpan::always(),
                )
                .calls_guarded(
                    MethodRef::new("android.content.Context", "getColor", "(I)I"),
                    23,
                ),
            ),
    );
    // ActivityCompat.requestPermissions: guarded shim over the API-23
    // request entry point.
    let act_req = MethodRef::new(
        "android.app.Activity",
        "requestPermissions",
        "([Ljava/lang/String;I)V",
    );
    s.add_class(
        ClassSpec::new("android.support.v4.app.ActivityCompat")
            .extends("android.support.v4.content.ContextCompat")
            .method(
                leaf(
                    "requestPermissions",
                    "(Landroid/app/Activity;[Ljava/lang/String;I)V",
                    LifeSpan::always(),
                )
                .calls_guarded(act_req, 23),
            ),
    );
    // TintHelper.applyTint: the *unguarded* deep path — present at every
    // level, but its body (as shipped) reaches an API-23 call. Tools
    // that stop at the first framework level (CID, LINT) cannot see the
    // problem; SAINTDroid's CLVM walks into it (paper §III-A, third
    // advantage).
    let set_fg = MethodRef::new(
        "android.view.View",
        "setForeground",
        "(Landroid/graphics/drawable/Drawable;)V",
    );
    s.add_class(
        ClassSpec::new("android.support.v7.widget.TintHelper").method(
            leaf("applyTint", "(Landroid/view/View;)V", LifeSpan::always())
                .calls(set_fg)
                .weight(10),
        ),
    );
    // MediaHelper.record: deep *permission* usage — calling it reaches
    // RECORD_AUDIO two levels down. First-level permission maps miss it.
    let set_audio = MethodRef::new("android.media.MediaRecorder", "setAudioSource", "(I)V");
    s.add_class(
        ClassSpec::new("android.support.v4.media.MediaHelper")
            .method(
                leaf("record", "(Landroid/content/Context;)V", LifeSpan::always())
                    .calls(MethodRef::new(
                        "android.support.v4.media.MediaHelper",
                        "openSession",
                        "(Landroid/content/Context;)V",
                    ))
                    .weight(6),
            )
            .method(
                leaf(
                    "openSession",
                    "(Landroid/content/Context;)V",
                    LifeSpan::always(),
                )
                .calls(set_audio)
                .weight(4),
            ),
    );
    // A deep chain whose *third* hop is level-sensitive: facade →
    // helper → Resources.getFont (API 26).
    let get_font = MethodRef::new(
        "android.content.res.Resources",
        "getFont",
        "(I)Landroid/graphics/Typeface;",
    );
    s.add_class(
        ClassSpec::new("android.support.text.FontFacade")
            .method(
                leaf(
                    "applyFont",
                    "(Landroid/widget/TextView;I)V",
                    LifeSpan::always(),
                )
                .calls(MethodRef::new(
                    "android.support.text.FontFacade",
                    "resolveFont",
                    "(I)Landroid/graphics/Typeface;",
                ))
                .weight(5),
            )
            .method(
                leaf(
                    "resolveFont",
                    "(I)Landroid/graphics/Typeface;",
                    LifeSpan::always(),
                )
                .calls(get_font)
                .weight(3),
            ),
    );

    // --- Misc runtime -------------------------------------------------------
    s.add_class(
        ClassSpec::new("android.os.Handler")
            .method(leaf("<init>", "()V", LifeSpan::always()))
            .method(leaf("post", "(Ljava/lang/Runnable;)Z", LifeSpan::always()))
            .method(leaf(
                "postDelayed",
                "(Ljava/lang/Runnable;J)Z",
                LifeSpan::always(),
            )),
    );
    s.add_class(
        ClassSpec::new("android.os.AsyncTask")
            .life(LifeSpan::since(3))
            .method(leaf(
                "execute",
                "([Ljava/lang/Object;)Landroid/os/AsyncTask;",
                LifeSpan::since(3),
            ))
            .method(leaf("onPreExecute", "()V", LifeSpan::since(3)))
            .method(leaf(
                "onPostExecute",
                "(Ljava/lang/Object;)V",
                LifeSpan::since(3),
            ))
            .method(leaf(
                "onProgressUpdate",
                "([Ljava/lang/Object;)V",
                LifeSpan::since(3),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.AlertDialog$Builder")
            .method(leaf(
                "<init>",
                "(Landroid/content/Context;)V",
                LifeSpan::always(),
            ))
            .method(leaf(
                "setTitle",
                "(Ljava/lang/CharSequence;)Landroid/app/AlertDialog$Builder;",
                LifeSpan::always(),
            ))
            .method(leaf(
                "show",
                "()Landroid/app/AlertDialog;",
                LifeSpan::always(),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.job.JobScheduler")
            .life(LifeSpan::since(21))
            .method(leaf(
                "schedule",
                "(Landroid/app/job/JobInfo;)I",
                LifeSpan::since(21),
            )),
    );
    s.add_class(
        ClassSpec::new("android.app.job.JobService")
            .life(LifeSpan::since(21))
            .extends("android.app.Service")
            .method(leaf(
                "onStartJob",
                "(Landroid/app/job/JobParameters;)Z",
                LifeSpan::since(21),
            ))
            .method(leaf(
                "onStopJob",
                "(Landroid/app/job/JobParameters;)Z",
                LifeSpan::since(21),
            )),
    );

    s
}

/// Typed references to well-known framework members, so corpus builders
/// and tests share one spelling with the spec above.
pub mod well_known {
    use saint_ir::{ClassName, MethodRef};

    /// `android.content.Context.getColorStateList(int)` — API 23.
    #[must_use]
    pub fn context_get_color_state_list() -> MethodRef {
        MethodRef::new(
            "android.content.Context",
            "getColorStateList",
            "(I)Landroid/content/res/ColorStateList;",
        )
    }

    /// `android.content.Context.getDrawable(int)` — API 21.
    #[must_use]
    pub fn context_get_drawable() -> MethodRef {
        MethodRef::new(
            "android.content.Context",
            "getDrawable",
            "(I)Landroid/graphics/drawable/Drawable;",
        )
    }

    /// `android.content.Context.checkSelfPermission(String)` — API 23.
    #[must_use]
    pub fn context_check_self_permission() -> MethodRef {
        MethodRef::new(
            "android.content.Context",
            "checkSelfPermission",
            "(Ljava/lang/String;)I",
        )
    }

    /// `android.app.Activity.getFragmentManager()` — API 11 (the
    /// Offline Calendar case study).
    #[must_use]
    pub fn activity_get_fragment_manager() -> MethodRef {
        MethodRef::new(
            "android.app.Activity",
            "getFragmentManager",
            "()Landroid/app/FragmentManager;",
        )
    }

    /// `android.app.Activity.requestPermissions(String[], int)` — API 23.
    #[must_use]
    pub fn activity_request_permissions() -> MethodRef {
        MethodRef::new(
            "android.app.Activity",
            "requestPermissions",
            "([Ljava/lang/String;I)V",
        )
    }

    /// `android.app.Activity.onRequestPermissionsResult` — API 23; the
    /// override Algorithm 4 looks for.
    #[must_use]
    pub fn on_request_permissions_result_sig() -> saint_ir::MethodSig {
        saint_ir::MethodSig::new("onRequestPermissionsResult", "(I[Ljava/lang/String;[I)V")
    }

    /// `android.app.Activity.setContentView(int)`.
    #[must_use]
    pub fn activity_set_content_view() -> MethodRef {
        MethodRef::new("android.app.Activity", "setContentView", "(I)V")
    }

    /// `android.app.Fragment.onAttach(Context)` — API 23 (the Simple
    /// Solitaire case study).
    #[must_use]
    pub fn fragment_on_attach_context_sig() -> saint_ir::MethodSig {
        saint_ir::MethodSig::new("onAttach", "(Landroid/content/Context;)V")
    }

    /// `android.view.View.drawableHotspotChanged(float, float)` — API
    /// 21 (the FOSDEM case study).
    #[must_use]
    pub fn view_drawable_hotspot_changed_sig() -> saint_ir::MethodSig {
        saint_ir::MethodSig::new("drawableHotspotChanged", "(FF)V")
    }

    /// `android.webkit.WebView.evaluateJavascript` — API 19.
    #[must_use]
    pub fn webview_evaluate_javascript() -> MethodRef {
        MethodRef::new(
            "android.webkit.WebView",
            "evaluateJavascript",
            "(Ljava/lang/String;Landroid/webkit/ValueCallback;)V",
        )
    }

    /// `android.app.NotificationManager.createNotificationChannel` —
    /// API 26.
    #[must_use]
    pub fn create_notification_channel() -> MethodRef {
        MethodRef::new(
            "android.app.NotificationManager",
            "createNotificationChannel",
            "(Landroid/app/NotificationChannel;)V",
        )
    }

    /// `android.os.Environment.getExternalStorageDirectory()` — always
    /// present, requires `WRITE_EXTERNAL_STORAGE` (the Kolab Notes and
    /// AdAway case studies).
    #[must_use]
    pub fn get_external_storage_directory() -> MethodRef {
        MethodRef::new(
            "android.os.Environment",
            "getExternalStorageDirectory",
            "()Ljava/io/File;",
        )
    }

    /// `android.hardware.Camera.open()` — requires `CAMERA`.
    #[must_use]
    pub fn camera_open() -> MethodRef {
        MethodRef::new(
            "android.hardware.Camera",
            "open",
            "()Landroid/hardware/Camera;",
        )
    }

    /// `android.location.LocationManager.requestLocationUpdates` —
    /// requires `ACCESS_FINE_LOCATION`.
    #[must_use]
    pub fn request_location_updates() -> MethodRef {
        MethodRef::new(
            "android.location.LocationManager",
            "requestLocationUpdates",
            "(Ljava/lang/String;JFLandroid/location/LocationListener;)V",
        )
    }

    /// `org.apache.http.client.HttpClient.execute` — removed at API 23.
    #[must_use]
    pub fn http_client_execute() -> MethodRef {
        MethodRef::new(
            "org.apache.http.client.HttpClient",
            "execute",
            "(Lorg/apache/http/client/methods/HttpUriRequest;)Lorg/apache/http/HttpResponse;",
        )
    }

    /// `android.support.v7.widget.TintHelper.applyTint` — present at
    /// every level, body reaches an API-23 call (deep invocation path).
    #[must_use]
    pub fn tint_helper_apply_tint() -> MethodRef {
        MethodRef::new(
            "android.support.v7.widget.TintHelper",
            "applyTint",
            "(Landroid/view/View;)V",
        )
    }

    /// `android.support.v4.media.MediaHelper.record` — present at every
    /// level, body reaches `RECORD_AUDIO` two hops down (deep
    /// permission path).
    #[must_use]
    pub fn media_helper_record() -> MethodRef {
        MethodRef::new(
            "android.support.v4.media.MediaHelper",
            "record",
            "(Landroid/content/Context;)V",
        )
    }

    /// `android.support.text.FontFacade.applyFont` — three-hop chain
    /// to `Resources.getFont` (API 26).
    #[must_use]
    pub fn font_facade_apply_font() -> MethodRef {
        MethodRef::new(
            "android.support.text.FontFacade",
            "applyFont",
            "(Landroid/widget/TextView;I)V",
        )
    }

    /// `android.support.v4.content.ResourcesCompat.getColorStateList`
    /// — the internally guarded shim (no mismatch when called).
    #[must_use]
    pub fn resources_compat_get_csl() -> MethodRef {
        MethodRef::new(
            "android.support.v4.content.ResourcesCompat",
            "getColorStateList",
            "(Landroid/content/Context;I)Landroid/content/res/ColorStateList;",
        )
    }

    /// `android.support.v4.app.ActivityCompat.requestPermissions` —
    /// guarded compat entry point for runtime permission requests.
    #[must_use]
    pub fn activity_compat_request_permissions() -> MethodRef {
        MethodRef::new(
            "android.support.v4.app.ActivityCompat",
            "requestPermissions",
            "(Landroid/app/Activity;[Ljava/lang/String;I)V",
        )
    }

    /// `dalvik.system.DexClassLoader.loadClass(String)` — the late
    /// binding entry point.
    #[must_use]
    pub fn dex_class_loader_load_class() -> MethodRef {
        MethodRef::new(
            "dalvik.system.DexClassLoader",
            "loadClass",
            "(Ljava/lang/String;)Ljava/lang/Class;",
        )
    }

    /// `android.app.Activity` class name.
    #[must_use]
    pub fn activity_class() -> ClassName {
        ClassName::new("android.app.Activity")
    }

    /// `android.app.Fragment` class name.
    #[must_use]
    pub fn fragment_class() -> ClassName {
        ClassName::new("android.app.Fragment")
    }

    /// `android.app.Service` class name.
    #[must_use]
    pub fn service_class() -> ClassName {
        ClassName::new("android.app.Service")
    }

    /// `android.webkit.WebView` class name.
    #[must_use]
    pub fn webview_class() -> ClassName {
        ClassName::new("android.webkit.WebView")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::ApiDatabase;
    use crate::permissions::PermissionMap;
    use saint_ir::{ApiLevel, ClassName, MethodSig};

    #[test]
    fn curated_spec_is_nonempty_and_rooted() {
        let s = android_spec();
        assert!(
            s.len() > 40,
            "expected a broad curated surface, got {}",
            s.len()
        );
        let obj = s.class(&ClassName::new("java.lang.Object")).unwrap();
        assert!(obj.super_class.is_none());
    }

    #[test]
    fn activity_hierarchy_reaches_context() {
        let s = android_spec();
        let mut c = ClassName::new("android.app.Activity");
        let mut seen = Vec::new();
        loop {
            seen.push(c.clone());
            match s.class(&c).and_then(|cs| cs.super_class.clone()) {
                Some(next) => c = next,
                None => break,
            }
        }
        let names: Vec<_> = seen.iter().map(ClassName::as_str).collect();
        assert!(names.contains(&"android.content.Context"));
        assert_eq!(names.last(), Some(&"java.lang.Object"));
    }

    #[test]
    fn mined_lifetimes_match_platform_history() {
        let db = ApiDatabase::mine(&android_spec());
        let cases = [
            (well_known::activity_get_fragment_manager(), 11u8),
            (well_known::context_get_color_state_list(), 23),
            (well_known::context_get_drawable(), 21),
            (well_known::webview_evaluate_javascript(), 19),
            (well_known::create_notification_channel(), 26),
            (well_known::activity_request_permissions(), 23),
        ];
        for (m, since) in cases {
            let life = db
                .method_lifespan(&m)
                .unwrap_or_else(|| panic!("{m} not mined"));
            assert_eq!(life.since, ApiLevel::new(since), "{m}");
            assert_eq!(life.removed, None, "{m}");
        }
    }

    #[test]
    fn apache_http_removed_at_23() {
        let db = ApiDatabase::mine(&android_spec());
        let life = db
            .method_lifespan(&well_known::http_client_execute())
            .unwrap();
        assert_eq!(life.removed, Some(ApiLevel::new(23)));
        assert!(db.contains(&well_known::http_client_execute(), ApiLevel::new(22)));
        assert!(!db.contains(&well_known::http_client_execute(), ApiLevel::new(23)));
    }

    #[test]
    fn fragment_on_attach_overloads_differ() {
        let db = ApiDatabase::mine(&android_spec());
        let frag = ClassName::new("android.app.Fragment");
        let ctx = db
            .resolve(&frag, &well_known::fragment_on_attach_context_sig())
            .unwrap();
        let act = db
            .resolve(
                &frag,
                &MethodSig::new("onAttach", "(Landroid/app/Activity;)V"),
            )
            .unwrap();
        assert_eq!(ctx.1.since, ApiLevel::new(23));
        assert_eq!(act.1.since, ApiLevel::new(11));
    }

    #[test]
    fn drawable_hotspot_changed_resolves_through_subclasses() {
        let db = ApiDatabase::mine(&android_spec());
        // A class extending LinearLayout overriding drawableHotspotChanged
        // resolves up to View (FOSDEM's ForegroundLinearLayout).
        let found = db
            .overridden_callback(
                &ClassName::new("android.widget.LinearLayout"),
                &well_known::view_drawable_hotspot_changed_sig(),
            )
            .unwrap();
        assert_eq!(found.0.class.as_str(), "android.view.View");
        assert_eq!(found.1.since, ApiLevel::new(21));
    }

    #[test]
    fn permission_map_covers_dangerous_apis() {
        let map = PermissionMap::from_spec(&android_spec());
        assert!(
            map.len() >= 12,
            "expected a rich permission map, got {}",
            map.len()
        );
        let cam: Vec<_> = map.required(&well_known::camera_open()).to_vec();
        assert_eq!(cam, vec![saint_ir::Permission::android("CAMERA")]);
        let storage: Vec<_> = map
            .required(&well_known::get_external_storage_directory())
            .to_vec();
        assert_eq!(
            storage,
            vec![saint_ir::Permission::android("WRITE_EXTERNAL_STORAGE")]
        );
    }

    #[test]
    fn deep_facades_materialize_with_expected_calls() {
        let s = android_spec();
        // At API 28, TintHelper.applyTint's body contains the
        // setForeground call; at API 21 the platform's own copy does not
        // (setForeground didn't exist) — the deep mismatch comes from
        // analyzing the modern body against the whole supported range.
        let tint = ClassName::new("android.support.v7.widget.TintHelper");
        let at28 = s.materialize_class(&tint, ApiLevel::new(28)).unwrap();
        let calls28 = at28.methods[0].body.as_ref().unwrap().call_sites().count();
        assert_eq!(calls28, 1);
        let at21 = s.materialize_class(&tint, ApiLevel::new(21)).unwrap();
        let calls21 = at21.methods[0].body.as_ref().unwrap().call_sites().count();
        assert_eq!(calls21, 0);
    }

    #[test]
    fn guarded_shims_always_carry_their_calls() {
        let s = android_spec();
        let rc = ClassName::new("android.support.v4.content.ResourcesCompat");
        let at19 = s.materialize_class(&rc, ApiLevel::new(19)).unwrap();
        assert_eq!(
            at19.methods[0].body.as_ref().unwrap().call_sites().count(),
            1
        );
    }

    #[test]
    fn well_known_refs_exist_in_spec() {
        let db = ApiDatabase::mine(&android_spec());
        for m in [
            well_known::context_get_color_state_list(),
            well_known::context_get_drawable(),
            well_known::context_check_self_permission(),
            well_known::activity_get_fragment_manager(),
            well_known::activity_request_permissions(),
            well_known::activity_set_content_view(),
            well_known::webview_evaluate_javascript(),
            well_known::create_notification_channel(),
            well_known::get_external_storage_directory(),
            well_known::camera_open(),
            well_known::request_location_updates(),
            well_known::http_client_execute(),
            well_known::tint_helper_apply_tint(),
            well_known::media_helper_record(),
            well_known::font_facade_apply_font(),
            well_known::resources_compat_get_csl(),
            well_known::activity_compat_request_permissions(),
            well_known::dex_class_loader_load_class(),
        ] {
            assert!(db.is_api_method(&m), "{m} missing from mined database");
        }
    }
}
