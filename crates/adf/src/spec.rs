//! Framework *specifications*: class and method lifetimes across API
//! levels, from which per-level snapshots are materialized.
//!
//! A [`FrameworkSpec`] is the generator-side source of truth — the
//! analogue of the AOSP source history. The revision miner
//! (`ApiDatabase::mine`) never reads lifetimes from the spec directly;
//! it diffs materialized per-level API surfaces, exactly as the paper's
//! ARM component mines real framework revisions (§III-B). Tests then
//! assert that mining recovers the spec's lifetimes.

use std::collections::BTreeMap;

use saint_ir::{
    ApiLevel, BodyBuilder, ClassDef, ClassName, ClassOrigin, InvokeKind, MethodDef, MethodFlags,
    MethodRef, MethodSig, Permission,
};

/// Lifetime of an API member: the level that introduced it and, if it
/// was removed, the first level where it no longer exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LifeSpan {
    /// First level where the member exists.
    pub since: ApiLevel,
    /// First level where the member no longer exists (`None` = still
    /// present at [`ApiLevel::MAX`]).
    pub removed: Option<ApiLevel>,
}

impl LifeSpan {
    /// A member present for the whole modeled history.
    #[must_use]
    pub fn always() -> Self {
        LifeSpan {
            since: ApiLevel::MIN,
            removed: None,
        }
    }

    /// A member introduced at `level` and never removed.
    #[must_use]
    pub fn since(level: u8) -> Self {
        LifeSpan {
            since: ApiLevel::new(level),
            removed: None,
        }
    }

    /// A member introduced at `since` and removed at `removed`.
    #[must_use]
    pub fn between(since: u8, removed: u8) -> Self {
        assert!(since < removed, "member removed before introduction");
        LifeSpan {
            since: ApiLevel::new(since),
            removed: Some(ApiLevel::new(removed)),
        }
    }

    /// Whether the member exists at `level`.
    #[must_use]
    pub fn exists_at(self, level: ApiLevel) -> bool {
        level >= self.since && self.removed.is_none_or(|r| level < r)
    }

    /// Whether the member was introduced strictly after `level` — the
    /// declared-SDK overuse predicate: an unguarded use crashes on a
    /// device running at `level` (e.g. an app's `minSdkVersion` floor).
    #[must_use]
    pub fn introduced_after(self, level: ApiLevel) -> bool {
        self.since > level
    }

    /// The lowest level at which the member exists: what a declared
    /// `minSdkVersion` must reach for unguarded use — the declared-SDK
    /// underuse metadata.
    #[must_use]
    pub fn floor(self) -> ApiLevel {
        self.since
    }
}

/// A call emitted inside a framework method body: the callee plus an
/// optional `SDK_INT >= guard` wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecCall {
    /// Invoked method.
    pub target: MethodRef,
    /// Guard the call with `if (SDK_INT >= level)`.
    pub guard: Option<ApiLevel>,
}

/// Specification of one framework method across the revision history.
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// Simple name.
    pub name: String,
    /// Descriptor.
    pub descriptor: String,
    /// Lifetime.
    pub life: LifeSpan,
    /// Permissions the framework enforces when this method executes
    /// (the PScout-style mapping source).
    pub permissions: Vec<Permission>,
    /// Calls the method body makes into other framework methods.
    pub calls: Vec<SpecCall>,
    /// Padding instructions, so synthetic classes have realistic sizes.
    pub weight: usize,
    /// Whether the method is abstract (no body at any level).
    pub is_abstract: bool,
}

impl MethodSpec {
    /// A leaf method with no calls and default weight.
    #[must_use]
    pub fn leaf(name: impl Into<String>, descriptor: impl Into<String>, life: LifeSpan) -> Self {
        MethodSpec {
            name: name.into(),
            descriptor: descriptor.into(),
            life,
            permissions: Vec::new(),
            calls: Vec::new(),
            weight: 4,
            is_abstract: false,
        }
    }

    /// This method's signature.
    #[must_use]
    pub fn signature(&self) -> MethodSig {
        MethodSig::new(self.name.as_str(), self.descriptor.as_str())
    }

    /// Adds a required permission.
    #[must_use]
    pub fn requires(mut self, p: Permission) -> Self {
        self.permissions.push(p);
        self
    }

    /// Adds an unguarded call to another framework method.
    #[must_use]
    pub fn calls(mut self, target: MethodRef) -> Self {
        self.calls.push(SpecCall {
            target,
            guard: None,
        });
        self
    }

    /// Adds a call guarded by `SDK_INT >= level`.
    #[must_use]
    pub fn calls_guarded(mut self, target: MethodRef, level: u8) -> Self {
        self.calls.push(SpecCall {
            target,
            guard: Some(ApiLevel::new(level)),
        });
        self
    }

    /// Sets the padding weight.
    #[must_use]
    pub fn weight(mut self, weight: usize) -> Self {
        self.weight = weight;
        self
    }

    /// Marks the method abstract.
    #[must_use]
    pub fn abstract_(mut self) -> Self {
        self.is_abstract = true;
        self
    }
}

/// Specification of one framework class across the revision history.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Fully qualified name.
    pub name: ClassName,
    /// Superclass (`None` only for `java.lang.Object`).
    pub super_class: Option<ClassName>,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassName>,
    /// Class lifetime.
    pub life: LifeSpan,
    /// Member methods.
    pub methods: Vec<MethodSpec>,
}

impl ClassSpec {
    /// A class extending `java.lang.Object`, present for the whole
    /// history.
    #[must_use]
    pub fn new(name: impl Into<ClassName>) -> Self {
        ClassSpec {
            name: name.into(),
            super_class: Some(ClassName::new("java.lang.Object")),
            interfaces: Vec::new(),
            life: LifeSpan::always(),
            methods: Vec::new(),
        }
    }

    /// Sets the superclass.
    #[must_use]
    pub fn extends(mut self, super_class: impl Into<ClassName>) -> Self {
        self.super_class = Some(super_class.into());
        self
    }

    /// Sets the class lifetime.
    #[must_use]
    pub fn life(mut self, life: LifeSpan) -> Self {
        self.life = life;
        self
    }

    /// Adds a method spec.
    #[must_use]
    pub fn method(mut self, m: MethodSpec) -> Self {
        self.methods.push(m);
        self
    }

    /// A [`MethodRef`] onto this class.
    #[must_use]
    pub fn method_ref(&self, name: &str, descriptor: &str) -> MethodRef {
        MethodRef::new(self.name.clone(), name, descriptor)
    }
}

/// The whole framework history: every class spec, queryable and
/// materializable per level.
#[derive(Debug, Clone, Default)]
pub struct FrameworkSpec {
    classes: BTreeMap<ClassName, ClassSpec>,
}

impl FrameworkSpec {
    /// An empty spec.
    #[must_use]
    pub fn new() -> Self {
        FrameworkSpec::default()
    }

    /// Adds a class spec, replacing any previous spec of the same name.
    pub fn add_class(&mut self, class: ClassSpec) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Looks up a class spec.
    #[must_use]
    pub fn class(&self, name: &ClassName) -> Option<&ClassSpec> {
        self.classes.get(name)
    }

    /// Iterates all class specs in name order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassSpec> {
        self.classes.values()
    }

    /// Number of class specs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the spec holds no classes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The *API surface* at a level: `(class, signature)` pairs of every
    /// member that exists, without materializing bodies. This is what
    /// the revision miner diffs.
    pub fn surface_at(&self, level: ApiLevel) -> impl Iterator<Item = (&ClassName, MethodSig)> {
        self.classes
            .values()
            .filter(move |c| c.life.exists_at(level))
            .flat_map(move |c| {
                c.methods
                    .iter()
                    .filter(move |m| m.life.exists_at(level))
                    .map(move |m| (&c.name, m.signature()))
            })
    }

    /// Materializes one class as it exists at `level`, or `None` if the
    /// class does not exist there.
    ///
    /// Bodies contain only calls whose callee exists at `level` or that
    /// the spec wraps in an explicit SDK guard — a materialized
    /// framework is internally consistent, like a shipped platform
    /// image.
    #[must_use]
    pub fn materialize_class(&self, name: &ClassName, level: ApiLevel) -> Option<ClassDef> {
        let spec = self.classes.get(name)?;
        if !spec.life.exists_at(level) {
            return None;
        }
        let mut class = ClassDef::new(spec.name.clone(), ClassOrigin::Framework);
        class.super_class = spec.super_class.clone();
        class.interfaces = spec.interfaces.clone();
        for m in &spec.methods {
            if !m.life.exists_at(level) {
                continue;
            }
            let def = if m.is_abstract {
                MethodDef::abstract_(m.name.clone(), m.descriptor.clone())
            } else {
                let body = self.materialize_body(m, level);
                let mut def = MethodDef::concrete(m.name.clone(), m.descriptor.clone(), body);
                def.flags = MethodFlags::default();
                def
            };
            class
                .add_method(def)
                .expect("spec methods have unique signatures");
        }
        Some(class)
    }

    fn materialize_body(&self, m: &MethodSpec, level: ApiLevel) -> saint_ir::MethodBody {
        let mut b = BodyBuilder::new();
        b.pad(m.weight);
        for call in &m.calls {
            let callee_exists = self.classes.get(&call.target.class).is_some_and(|c| {
                c.life.exists_at(level)
                    && c.methods.iter().any(|mm| {
                        mm.signature() == call.target.signature() && mm.life.exists_at(level)
                    })
            });
            match call.guard {
                Some(g) => {
                    // Guarded calls are always emitted; the guard is the
                    // platform's own compatibility check.
                    let (then_blk, join) = b.guard_sdk_at_least(g);
                    let cur = join;
                    b.switch_to(then_blk);
                    b.invoke(InvokeKind::Virtual, call.target.clone(), &[], None);
                    b.goto(cur);
                    b.switch_to(cur);
                }
                None => {
                    if callee_exists {
                        b.invoke(InvokeKind::Virtual, call.target.clone(), &[], None);
                    }
                }
            }
        }
        b.ret_void();
        b.finish().expect("generated framework bodies are valid")
    }

    /// Materializes the entire framework at `level` (the eager path
    /// that monolithic analyzers pay for).
    #[must_use]
    pub fn materialize_all(&self, level: ApiLevel) -> Vec<ClassDef> {
        self.classes
            .keys()
            .filter_map(|name| self.materialize_class(name, level))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(life: LifeSpan) -> FrameworkSpec {
        let mut s = FrameworkSpec::new();
        s.add_class(
            ClassSpec::new("android.test.Widget")
                .method(MethodSpec::leaf("always", "()V", LifeSpan::always()))
                .method(MethodSpec::leaf("newer", "()V", life)),
        );
        s
    }

    #[test]
    fn lifespan_boundaries() {
        let l = LifeSpan::between(11, 21);
        assert!(!l.exists_at(ApiLevel::new(10)));
        assert!(l.exists_at(ApiLevel::new(11)));
        assert!(l.exists_at(ApiLevel::new(20)));
        assert!(!l.exists_at(ApiLevel::new(21)));
    }

    #[test]
    #[should_panic(expected = "removed before introduction")]
    fn inverted_lifespan_panics() {
        let _ = LifeSpan::between(21, 11);
    }

    #[test]
    fn surface_respects_lifetimes() {
        let s = spec_with(LifeSpan::since(23));
        let at22: Vec<_> = s.surface_at(ApiLevel::new(22)).collect();
        let at23: Vec<_> = s.surface_at(ApiLevel::new(23)).collect();
        assert_eq!(at22.len(), 1);
        assert_eq!(at23.len(), 2);
    }

    #[test]
    fn materialize_skips_missing_members() {
        let s = spec_with(LifeSpan::since(23));
        let name = ClassName::new("android.test.Widget");
        let c22 = s.materialize_class(&name, ApiLevel::new(22)).unwrap();
        let c23 = s.materialize_class(&name, ApiLevel::new(23)).unwrap();
        assert_eq!(c22.methods.len(), 1);
        assert_eq!(c23.methods.len(), 2);
    }

    #[test]
    fn materialize_missing_class_is_none() {
        let mut s = FrameworkSpec::new();
        s.add_class(ClassSpec::new("android.test.New").life(LifeSpan::since(26)));
        let name = ClassName::new("android.test.New");
        assert!(s.materialize_class(&name, ApiLevel::new(25)).is_none());
        assert!(s.materialize_class(&name, ApiLevel::new(26)).is_some());
    }

    #[test]
    fn unguarded_call_to_future_api_dropped_from_old_snapshot() {
        let mut s = FrameworkSpec::new();
        let newer = MethodRef::new("android.test.B", "newer", "()V");
        s.add_class(ClassSpec::new("android.test.B").method(MethodSpec::leaf(
            "newer",
            "()V",
            LifeSpan::since(23),
        )));
        s.add_class(
            ClassSpec::new("android.test.A")
                .method(MethodSpec::leaf("facade", "()V", LifeSpan::always()).calls(newer)),
        );
        let a = ClassName::new("android.test.A");
        let at21 = s.materialize_class(&a, ApiLevel::new(21)).unwrap();
        let at23 = s.materialize_class(&a, ApiLevel::new(23)).unwrap();
        let calls = |c: &ClassDef| c.methods[0].body.as_ref().unwrap().call_sites().count();
        assert_eq!(calls(&at21), 0);
        assert_eq!(calls(&at23), 1);
    }

    #[test]
    fn guarded_call_always_emitted() {
        let mut s = FrameworkSpec::new();
        let newer = MethodRef::new("android.test.B", "newer", "()V");
        s.add_class(ClassSpec::new("android.test.B").method(MethodSpec::leaf(
            "newer",
            "()V",
            LifeSpan::since(23),
        )));
        s.add_class(
            ClassSpec::new("android.test.A").method(
                MethodSpec::leaf("safe", "()V", LifeSpan::always()).calls_guarded(newer, 23),
            ),
        );
        let a = ClassName::new("android.test.A");
        let at21 = s.materialize_class(&a, ApiLevel::new(21)).unwrap();
        let body = at21.methods[0].body.as_ref().unwrap();
        assert_eq!(body.call_sites().count(), 1);
        // and the guard is present
        assert!(body
            .blocks()
            .iter()
            .flat_map(|b| &b.instrs)
            .any(saint_ir::Instr::is_sdk_int_read));
    }

    #[test]
    fn abstract_methods_materialize_without_bodies() {
        let mut s = FrameworkSpec::new();
        s.add_class(
            ClassSpec::new("android.test.I")
                .method(MethodSpec::leaf("cb", "()V", LifeSpan::always()).abstract_()),
        );
        let c = s
            .materialize_class(&ClassName::new("android.test.I"), ApiLevel::new(21))
            .unwrap();
        assert!(c.methods[0].body.is_none());
    }

    #[test]
    fn materialize_all_counts_by_level() {
        let mut s = FrameworkSpec::new();
        s.add_class(ClassSpec::new("android.test.Old"));
        s.add_class(ClassSpec::new("android.test.New").life(LifeSpan::since(26)));
        assert_eq!(s.materialize_all(ApiLevel::new(25)).len(), 1);
        assert_eq!(s.materialize_all(ApiLevel::new(26)).len(), 2);
    }
}
