//! Deterministic synthetic expansion of the framework.
//!
//! The real ADF is enormous — that scale is precisely why SAINTDroid's
//! lazy class loading beats eager loading (paper §III-A, §V-C). The
//! curated surface in `android_spec` is semantically rich but
//! small, so this module grows the spec with thousands of additional
//! framework classes: package clusters, intra-framework call chains,
//! staggered introduction levels, and `on…` handler methods. Everything
//! is seeded and reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use saint_ir::{ApiLevel, MethodRef};

use crate::spec::{ClassSpec, FrameworkSpec, LifeSpan, MethodSpec};

/// Configuration for the synthetic expansion.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SynthConfig {
    /// Number of synthetic classes to add.
    pub classes: usize,
    /// Inclusive range of methods per class.
    pub methods_per_class: (usize, usize),
    /// Number of `android.gen.p{k}` package clusters.
    pub packages: usize,
    /// RNG seed; equal seeds yield identical frameworks.
    pub seed: u64,
}

impl SynthConfig {
    /// A tiny expansion for unit tests (~60 classes).
    #[must_use]
    pub fn small() -> Self {
        SynthConfig {
            classes: 60,
            methods_per_class: (2, 6),
            packages: 4,
            seed: 0x5a17,
        }
    }

    /// A mid-size expansion for integration tests (~800 classes).
    #[must_use]
    pub fn medium() -> Self {
        SynthConfig {
            classes: 800,
            methods_per_class: (3, 10),
            packages: 12,
            seed: 0x5a17,
        }
    }

    /// The paper-scale expansion used by the performance experiments
    /// (~4000 classes, tens of thousands of methods — large enough that
    /// eagerly loading the framework dominates analysis cost).
    #[must_use]
    pub fn paper() -> Self {
        SynthConfig {
            classes: 4000,
            methods_per_class: (4, 14),
            packages: 25,
            seed: 0x5a17,
        }
    }
}

fn synth_class_name(cfg: &SynthConfig, idx: usize) -> String {
    let pkg = idx % cfg.packages.max(1);
    format!("android.gen.p{pkg}.C{idx}")
}

/// Expands `spec` in place with `cfg.classes` synthetic framework
/// classes.
///
/// Construction invariants:
/// * call targets always point at *earlier* synthetic classes, so the
///   synthetic call graph is acyclic (the curated classes may still
///   form richer shapes);
/// * unguarded calls are only emitted where the spec materializer will
///   keep them level-consistent;
/// * roughly one method in six is an `on…` handler, giving the callback
///   detector a broad surface beyond the four classes CIDER models.
pub fn expand(spec: &mut FrameworkSpec, cfg: &SynthConfig) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Record (class, method, descriptor, since) of earlier synthetic
    // methods as call-target candidates.
    let mut candidates: Vec<(String, String, String, ApiLevel)> = Vec::new();

    for idx in 0..cfg.classes {
        let name = synth_class_name(cfg, idx);
        // Class lifetime: 70% always, 25% introduced later, 5% removed.
        let class_life = match rng.gen_range(0..20) {
            0 => {
                let since = rng.gen_range(3..20);
                LifeSpan::between(since, rng.gen_range(since + 2..30))
            }
            1..=5 => LifeSpan::since(rng.gen_range(3..28)),
            _ => LifeSpan::always(),
        };
        // Superclass: half extend an earlier synthetic class in the same
        // package, the rest extend Object.
        let super_class = if idx >= cfg.packages && rng.gen_bool(0.5) {
            let earlier = idx - cfg.packages; // same package, earlier row
            Some(synth_class_name(cfg, earlier))
        } else {
            None
        };

        let mut class = ClassSpec::new(name.clone()).life(class_life);
        if let Some(sup) = super_class {
            class = class.extends(sup);
        }

        let n_methods = rng.gen_range(cfg.methods_per_class.0..=cfg.methods_per_class.1);
        for j in 0..n_methods {
            let is_handler = rng.gen_ratio(1, 6);
            // Method names embed the class index so sibling/ancestor
            // classes never accidentally declare the same signature:
            // an unintended override whose lifetime differs from the
            // ancestor's turns virtual resolution at old levels into a
            // removed-method trap, flooding the corpus with
            // forward-compatibility noise.
            let mname = if is_handler {
                format!("onGen{idx}Event{j}")
            } else {
                format!("m{idx}x{j}")
            };
            let descriptor = match rng.gen_range(0..3) {
                0 => "()V".to_string(),
                1 => "(I)V".to_string(),
                _ => "(Ljava/lang/String;)I".to_string(),
            };
            // Method lifetime within the class lifetime.
            let life = if rng.gen_bool(0.3) {
                let lo = class_life.since.get().max(3);
                let hi = class_life.removed.map_or(29, |r| r.get().saturating_sub(1));
                if lo < hi {
                    LifeSpan {
                        since: ApiLevel::new(rng.gen_range(lo..=hi)),
                        removed: class_life.removed,
                    }
                } else {
                    class_life
                }
            } else {
                class_life
            };
            let mut m = MethodSpec::leaf(mname, descriptor, life).weight(rng.gen_range(2..30));
            // Calls into earlier synthetic methods.
            let n_calls = rng.gen_range(0..=3usize);
            for _ in 0..n_calls.min(candidates.len()) {
                let (c, n, d, since) = candidates[rng.gen_range(0..candidates.len())].clone();
                let target = MethodRef::new(c, n, d);
                if since > life.since {
                    // Platform-internal guard keeps deep analysis quiet
                    // on well-formed framework code (and exercises guard
                    // tracking inside the ADF). Unguarded deep paths are
                    // injected deliberately by the curated facades and
                    // the corpus, never at random.
                    m = m.calls_guarded(target, since.get());
                } else {
                    m = m.calls(target);
                }
            }
            // Only never-removed methods are eligible as internal call
            // targets: a platform body materialized at level T that
            // called a later-removed method would (correctly) be
            // flagged by deep analysis at the removal levels, flooding
            // the corpus with forward-compatibility noise the real
            // platform does not have.
            if m.life.removed.is_none() {
                candidates.push((
                    name.clone(),
                    m.name.clone(),
                    m.descriptor.clone(),
                    m.life.since,
                ));
            }
            class = class.method(m);
        }
        spec.add_class(class);
    }
}

/// Convenience: the curated surface plus a synthetic expansion.
#[must_use]
pub fn expanded_android_spec(cfg: &SynthConfig) -> FrameworkSpec {
    let mut spec = crate::android::android_spec();
    expand(&mut spec, cfg);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::ClassName;

    #[test]
    fn expansion_is_deterministic() {
        let a = expanded_android_spec(&SynthConfig::small());
        let b = expanded_android_spec(&SynthConfig::small());
        assert_eq!(a.len(), b.len());
        // Same classes, same method counts, same lifetimes.
        for (ca, cb) in a.classes().zip(b.classes()) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.methods.len(), cb.methods.len());
            assert_eq!(ca.life, cb.life);
            for (ma, mb) in ca.methods.iter().zip(&cb.methods) {
                assert_eq!(ma.name, mb.name);
                assert_eq!(ma.life, mb.life);
                assert_eq!(ma.calls, mb.calls);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = expanded_android_spec(&SynthConfig::small());
        let mut cfg = SynthConfig::small();
        cfg.seed = 99;
        let b = expanded_android_spec(&cfg);
        let weights = |s: &FrameworkSpec| -> Vec<usize> {
            s.classes()
                .flat_map(|c| c.methods.iter().map(|m| m.weight))
                .collect()
        };
        assert_ne!(weights(&a), weights(&b));
    }

    #[test]
    fn expansion_adds_requested_classes() {
        let base = crate::android::android_spec().len();
        let spec = expanded_android_spec(&SynthConfig::small());
        assert_eq!(spec.len(), base + 60);
    }

    #[test]
    fn synthetic_supers_stay_in_spec() {
        let spec = expanded_android_spec(&SynthConfig::small());
        for c in spec.classes() {
            if let Some(sup) = &c.super_class {
                if sup.as_str() != "java.lang.Object" {
                    assert!(
                        spec.class(sup).is_some(),
                        "{} extends unknown {}",
                        c.name,
                        sup
                    );
                }
            }
        }
    }

    #[test]
    fn synthetic_snapshots_materialize_at_every_level() {
        let spec = expanded_android_spec(&SynthConfig::small());
        for level in [2u8, 15, 23, 29] {
            let level = ApiLevel::new(level);
            let classes = spec.materialize_all(level);
            assert!(!classes.is_empty());
            for c in &classes {
                // every materialized body validates
                for m in &c.methods {
                    if let Some(b) = &m.body {
                        b.validate().unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn handler_methods_present() {
        let spec = expanded_android_spec(&SynthConfig::small());
        let handlers = spec
            .classes()
            .filter(|c| c.name.as_str().starts_with("android.gen."))
            .flat_map(|c| c.methods.iter())
            .filter(|m| m.name.starts_with("onGen"))
            .count();
        assert!(handlers > 5, "expected synthetic handlers, got {handlers}");
    }

    #[test]
    fn curated_surface_survives_expansion() {
        let spec = expanded_android_spec(&SynthConfig::small());
        assert!(spec
            .class(&ClassName::new("android.app.Activity"))
            .is_some());
    }
}
