//! # saint-adf — the Android framework model
//!
//! SAINTDroid's ARM component (paper §III-B) mines the Android
//! framework revision history into two reusable artifacts: an **API
//! database** (which method/callback exists at which API level) and a
//! **permission map** (which API methods require which permissions).
//! Offline Rust has no Android framework jars, so this crate *is* the
//! framework: a curated model of the real compatibility-critical API
//! surface ([`android_spec`]) with true lifetimes, embedded in a
//! deterministic synthetic expansion ([`synth`]) large enough that lazy
//! vs. eager loading matters.
//!
//! ```
//! use saint_adf::{AndroidFramework, well_known};
//! use saint_ir::ApiLevel;
//!
//! let fw = AndroidFramework::curated();
//! let db = fw.database();
//! // Context.getColorStateList(int) appeared in API 23:
//! let m = well_known::context_get_color_state_list();
//! assert!(!db.contains(&m, ApiLevel::new(22)));
//! assert!(db.contains(&m, ApiLevel::new(23)));
//!
//! // Camera.open() needs the dangerous CAMERA permission:
//! let pm = fw.permission_map();
//! assert!(!pm.required(&well_known::camera_open()).is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod android;
mod database;
mod framework;
mod permissions;
pub mod spec;
pub mod synth;

pub use android::{android_spec, well_known};
pub use database::ApiDatabase;
pub use framework::{AndroidFramework, ClassSource};
pub use permissions::{dangerous_permissions, is_dangerous, PermissionMap, DANGEROUS_PERMISSIONS};
pub use spec::{ClassSpec, FrameworkSpec, LifeSpan, MethodSpec, SpecCall};
pub use synth::SynthConfig;
