//! Property test: the ARM revision miner must recover the exact
//! lifetimes of arbitrary framework histories by diffing per-level
//! surfaces — it never sees the generator's lifetimes directly.

use proptest::collection::vec;
use proptest::prelude::*;
use saint_adf::spec::{ClassSpec, FrameworkSpec, LifeSpan, MethodSpec};
use saint_adf::ApiDatabase;
use saint_ir::{ApiLevel, MethodRef};

fn arb_lifespan() -> impl Strategy<Value = LifeSpan> {
    (2u8..=29, proptest::option::of(1u8..=27)).prop_map(|(since, removed_gap)| LifeSpan {
        since: ApiLevel::new(since),
        removed: removed_gap.and_then(|gap| {
            let r = since.saturating_add(gap);
            (r <= 29 && r > since).then(|| ApiLevel::new(r))
        }),
    })
}

#[derive(Debug, Clone)]
struct SpecShape {
    classes: Vec<(LifeSpan, Vec<LifeSpan>)>,
}

fn arb_spec() -> impl Strategy<Value = SpecShape> {
    vec((arb_lifespan(), vec(arb_lifespan(), 1..6)), 1..10)
        .prop_map(|classes| SpecShape { classes })
}

fn build(shape: &SpecShape) -> FrameworkSpec {
    let mut spec = FrameworkSpec::new();
    for (ci, (class_life, methods)) in shape.classes.iter().enumerate() {
        let mut class = ClassSpec::new(format!("android.prop.C{ci}")).life(*class_life);
        for (mi, life) in methods.iter().enumerate() {
            // Clamp each method's lifetime inside its class's: a method
            // cannot outlive its class in any real history.
            let since = life.since.max(class_life.since);
            let removed = match (life.removed, class_life.removed) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let Some(life) = clamp(since, removed) else {
                continue;
            };
            class = class.method(MethodSpec::leaf(format!("m{mi}"), "()V", life));
        }
        spec.add_class(class);
    }
    spec
}

fn clamp(since: ApiLevel, removed: Option<ApiLevel>) -> Option<LifeSpan> {
    match removed {
        Some(r) if r <= since => None, // never existed: drop the member
        r => Some(LifeSpan { since, removed: r }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mining_recovers_every_lifetime(shape in arb_spec()) {
        let spec = build(&shape);
        let db = ApiDatabase::mine(&spec);
        for class in spec.classes() {
            for m in &class.methods {
                let mref = MethodRef::new(class.name.clone(), m.name.as_str(), m.descriptor.as_str());
                // Members never visible in 2..=29 cannot be mined.
                let visible = ApiLevel::all_modeled().any(|l| m.life.exists_at(l) && class.life.exists_at(l));
                let mined = db.method_lifespan(&mref);
                if !visible {
                    prop_assert!(mined.is_none(), "{mref} mined though never visible");
                    continue;
                }
                let mined = mined.expect("visible member mined");
                // The mined lifetime is the *visible intersection* of
                // method and class lifetimes.
                for level in ApiLevel::all_modeled() {
                    let truth = m.life.exists_at(level) && class.life.exists_at(level);
                    prop_assert_eq!(
                        mined.exists_at(level),
                        truth,
                        "{} at {}: mined {:?}, spec method {:?} class {:?}",
                        mref, level, mined, m.life, class.life
                    );
                }
            }
        }
    }

    #[test]
    fn contains_is_consistent_with_lifespan(shape in arb_spec()) {
        let spec = build(&shape);
        let db = ApiDatabase::mine(&spec);
        for (m, life) in db.methods() {
            for level in ApiLevel::all_modeled() {
                prop_assert_eq!(db.contains(m, level), life.exists_at(level));
            }
        }
    }
}
