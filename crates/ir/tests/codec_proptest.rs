//! Property-based round-trip tests for the SAPK codec: arbitrary valid
//! APKs must encode and decode to an identical value, and arbitrary
//! byte soup must never panic the decoder.

use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

use saint_ir::{
    codec, ApiLevel, Apk, BasicBlock, BinOp, ClassDef, ClassName, ClassOrigin, Cond, DexFile,
    FieldDef, FieldRef, Instr, InvokeKind, Manifest, MethodBody, MethodDef, MethodFlags, MethodRef,
    Operand, Permission, Reg, Terminator,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u16..32).prop_map(Reg)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<i64>().prop_map(Operand::Imm),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}(\\.[A-Z][a-zA-Z0-9_$]{0,8}){1,3}"
}

fn arb_simple() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,10}"
}

fn arb_descriptor() -> impl Strategy<Value = String> {
    "\\((I|J|Z|Landroid/os/Bundle;){0,3}\\)(V|I|Z)"
}

fn arb_method_ref() -> impl Strategy<Value = MethodRef> {
    (arb_name(), arb_simple(), arb_descriptor()).prop_map(|(c, n, d)| MethodRef::new(c, n, d))
}

fn arb_field_ref() -> impl Strategy<Value = FieldRef> {
    (arb_name(), arb_simple()).prop_map(|(c, n)| FieldRef::new(c, n))
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

fn arb_invoke_kind() -> impl Strategy<Value = InvokeKind> {
    prop_oneof![
        Just(InvokeKind::Virtual),
        Just(InvokeKind::Static),
        Just(InvokeKind::Direct),
        Just(InvokeKind::Interface),
        Just(InvokeKind::Super),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), any::<i64>()).prop_map(|(dst, value)| Instr::Const { dst, value }),
        (arb_reg(), ".{0,24}").prop_map(|(dst, value)| Instr::ConstString { dst, value }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Instr::Move { dst, src }),
        (arb_binop(), arb_reg(), arb_reg(), arb_operand())
            .prop_map(|(op, dst, lhs, rhs)| Instr::BinOp { op, dst, lhs, rhs }),
        (arb_reg(), arb_name()).prop_map(|(dst, c)| Instr::NewInstance {
            dst,
            class: ClassName::new(c)
        }),
        (
            arb_invoke_kind(),
            arb_method_ref(),
            vec(arb_reg(), 0..4),
            option::of(arb_reg())
        )
            .prop_map(|(kind, method, args, dst)| Instr::Invoke {
                kind,
                method,
                args,
                dst
            }),
        (arb_reg(), arb_field_ref(), option::of(arb_reg()))
            .prop_map(|(dst, field, object)| Instr::FieldGet { dst, field, object }),
        (arb_reg(), arb_field_ref(), option::of(arb_reg()))
            .prop_map(|(src, field, object)| Instr::FieldPut { src, field, object }),
        Just(Instr::Nop),
    ]
}

/// A structurally valid body: branch targets are drawn modulo the block
/// count after generation.
fn arb_body() -> impl Strategy<Value = MethodBody> {
    vec(
        (
            vec(arb_instr(), 0..6),
            any::<u8>(),
            arb_cond(),
            arb_reg(),
            arb_operand(),
            any::<u8>(),
            any::<u8>(),
        ),
        1..5,
    )
    .prop_map(|raw| {
        let n = raw.len() as u32;
        let blocks: Vec<BasicBlock> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (instrs, kind, cond, lhs, rhs, t1, t2))| {
                let target = |t: u8| saint_ir::BlockId(u32::from(t) % n);
                let terminator = match kind % 4 {
                    0 => Terminator::Goto(target(t1)),
                    1 => Terminator::If {
                        cond,
                        lhs,
                        rhs,
                        then_blk: target(t1),
                        else_blk: target(t2),
                    },
                    2 => Terminator::Return(if t1 % 2 == 0 { None } else { Some(lhs) }),
                    _ => {
                        // Keep the last block a return so bodies are well formed.
                        if i as u32 == n - 1 {
                            Terminator::Return(None)
                        } else {
                            Terminator::Throw(lhs)
                        }
                    }
                };
                BasicBlock { instrs, terminator }
            })
            .collect();
        MethodBody::from_blocks(blocks).expect("targets are in range by construction")
    })
}

fn arb_method(idx: usize) -> impl Strategy<Value = MethodDef> {
    (
        arb_descriptor(),
        any::<bool>(),
        any::<bool>(),
        option::of(arb_body()),
    )
        .prop_map(move |(descriptor, is_static, is_native, body)| MethodDef {
            name: format!("m{idx}"),
            descriptor,
            flags: MethodFlags {
                is_static,
                is_abstract: body.is_none() && !is_native,
                is_native: body.is_none() && is_native,
                is_synthetic: false,
            },
            body,
        })
}

fn arb_class(idx: usize) -> impl Strategy<Value = ClassDef> {
    (
        option::of(arb_name()),
        vec(arb_name(), 0..2),
        vec((arb_simple(), any::<bool>()), 0..3),
        vec(arb_method(0), 0..1),
        vec(arb_method(1), 0..1),
    )
        .prop_map(move |(super_class, interfaces, fields, m0, m1)| {
            let mut c = ClassDef::new(format!("gen.pkg.C{idx}"), ClassOrigin::App);
            c.super_class = super_class.map(ClassName::new);
            c.interfaces = interfaces.into_iter().map(ClassName::new).collect();
            c.fields = fields
                .into_iter()
                .map(|(name, is_static)| FieldDef { name, is_static })
                .collect();
            for m in m0.into_iter().chain(m1) {
                c.add_method(m).expect("distinct generated names");
            }
            c
        })
}

fn arb_apk() -> impl Strategy<Value = Apk> {
    (
        2u8..30,
        0u8..10,
        vec("[A-Z_]{3,12}", 0..4),
        vec(arb_class(0), 0..1),
        vec(arb_class(1), 0..1),
        vec(arb_class(2), 0..1),
        any::<bool>(),
    )
        .prop_map(|(min, span, perms, c0, c1, c2, has_source)| {
            let min_l = ApiLevel::new(min);
            let target = ApiLevel::new(min.saturating_add(span));
            let mut manifest = Manifest::new("gen.pkg", min_l, target, None).unwrap();
            manifest.uses_permissions =
                perms.into_iter().map(|p| Permission::android(&p)).collect();
            let mut apk = Apk::new(manifest);
            for c in c0.into_iter().chain(c1).chain(c2) {
                apk.primary.add_class(c).unwrap();
            }
            apk.has_source = has_source;
            let mut payload = DexFile::new("assets/p.dex");
            payload
                .add_class(ClassDef::new("gen.pay.P", ClassOrigin::DynamicPayload))
                .unwrap();
            apk.secondary.push(payload);
            apk
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_roundtrip(apk in arb_apk()) {
        let bytes = codec::encode_apk(&apk);
        let back = codec::decode_apk(&bytes).expect("generated apks decode");
        prop_assert_eq!(apk, back);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..512)) {
        let _ = codec::decode_apk(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid(apk in arb_apk(), pos in 0usize..4096, flip in 1u8..255) {
        let mut bytes = codec::encode_apk(&apk);
        if !bytes.is_empty() {
            let idx = pos % bytes.len();
            bytes[idx] ^= flip;
            let _ = codec::decode_apk(&bytes);
        }
    }

    #[test]
    fn size_units_stable_under_roundtrip(apk in arb_apk()) {
        let bytes = codec::encode_apk(&apk);
        let back = codec::decode_apk(&bytes).unwrap();
        prop_assert_eq!(apk.size_units(), back.size_units());
        prop_assert_eq!(apk.class_count(), back.class_count());
    }
}
