//! Property tests for the global name interner: interning must be a
//! pure identity on the text (round-trips any name unchanged) while
//! collapsing equal texts to one allocation.

use std::sync::Arc;

use proptest::prelude::*;
use saint_ir::{intern, ClassName, MethodRef};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning returns exactly the text that went in, for arbitrary
    /// (including non-identifier, non-ASCII) strings.
    #[test]
    fn intern_round_trips_arbitrary_text(s in ".{0,64}") {
        let interned = intern(s.clone());
        prop_assert_eq!(&*interned, s.as_str());
    }

    /// Equal texts intern to the same allocation regardless of the
    /// owned/borrowed shape they arrive in.
    #[test]
    fn equal_texts_share_one_allocation(s in "[a-zA-Z0-9_$.]{1,48}") {
        let a = intern(s.clone());
        let b = intern(s.as_str());
        let c = intern(Arc::<str>::from(s.as_str()));
        prop_assert!(Arc::ptr_eq(&a, &b));
        prop_assert!(Arc::ptr_eq(&b, &c));
    }

    /// Distinct texts stay distinct — interning never conflates names.
    #[test]
    fn distinct_texts_stay_distinct(
        a in "[a-z][a-z0-9_]{0,24}",
        suffix in "[A-Z][a-z0-9]{0,8}",
    ) {
        let b = format!("{a}.{suffix}");
        prop_assert_ne!(&*intern(a.clone()), &*intern(b.clone()));
        prop_assert_eq!(&*intern(a.clone()), a.as_str());
        prop_assert_eq!(&*intern(b.clone()), b.as_str());
    }

    /// The public name types ride the interner: building the same class
    /// name twice yields pointer-equal backing text, and the text is
    /// preserved through `MethodRef` plumbing.
    #[test]
    fn class_names_round_trip_through_interner(
        name in "[a-z][a-z0-9_]{0,8}(\\.[A-Z][a-zA-Z0-9_$]{0,8}){1,3}",
        method in "[a-z][a-zA-Z0-9_]{0,16}",
    ) {
        let c1 = ClassName::new(name.clone());
        let c2 = ClassName::new(name.clone());
        prop_assert_eq!(c1.as_str(), name.as_str());
        prop_assert_eq!(&c1, &c2);
        let m = MethodRef::new(name.clone(), method.clone(), "()V");
        prop_assert_eq!(m.class.as_str(), name.as_str());
        prop_assert_eq!(&*m.name, method.as_str());
    }
}
