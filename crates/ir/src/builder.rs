//! Fluent builders for bodies, classes and APKs.
//!
//! These are the authoring surface used by the framework generator
//! (`saint-adf`), the benchmark corpus (`saint-corpus`) and tests. The
//! builders enforce the IR invariants at `finish`/`build` time so the
//! analyses can assume validated input.

use crate::apk::{Apk, DexFile};
use crate::body::{BasicBlock, BlockId, MethodBody, Terminator};
use crate::class::{ClassDef, ClassOrigin, FieldDef, MethodDef, MethodFlags};
use crate::error::IrError;
use crate::instr::{BinOp, Cond, Instr, InvokeKind, Operand, Reg};
use crate::level::ApiLevel;
use crate::manifest::{Component, ComponentKind, Manifest};
use crate::name::{ClassName, FieldRef, MethodRef, Permission};

struct PendingBlock {
    instrs: Vec<Instr>,
    terminator: Option<Terminator>,
}

/// Builds a [`MethodBody`] block by block.
///
/// # Examples
///
/// ```
/// use saint_ir::{ApiLevel, BodyBuilder, MethodRef};
///
/// let api = MethodRef::new("android.content.res.Resources", "getColorStateList", "(I)V");
/// let mut b = BodyBuilder::new();
/// // if (Build.VERSION.SDK_INT >= 23) { getColorStateList(...); }
/// let (then_blk, done) = b.guard_sdk_at_least(ApiLevel::new(23));
/// b.switch_to(then_blk);
/// b.invoke_virtual(api, &[], None);
/// b.goto(done);
/// b.switch_to(done);
/// b.ret_void();
/// let body = b.finish()?;
/// assert_eq!(body.len(), 3);
/// # Ok::<(), saint_ir::IrError>(())
/// ```
pub struct BodyBuilder {
    blocks: Vec<PendingBlock>,
    current: BlockId,
    next_reg: u16,
}

impl BodyBuilder {
    /// Creates a builder with an empty entry block selected.
    #[must_use]
    pub fn new() -> Self {
        BodyBuilder {
            blocks: vec![PendingBlock {
                instrs: Vec::new(),
                terminator: None,
            }],
            current: BlockId::ENTRY,
            next_reg: 0,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn alloc_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Appends a new, unterminated block and returns its id (selection
    /// is unchanged).
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(PendingBlock {
            instrs: Vec::new(),
            terminator: None,
        });
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// The currently selected block.
    #[must_use]
    pub fn current(&self) -> BlockId {
        self.current
    }

    /// Selects the block that subsequent instructions append to.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        assert!(
            block.index() < self.blocks.len(),
            "unknown block {block} (builder has {})",
            self.blocks.len()
        );
        self.current = block;
        self
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        let blk = &mut self.blocks[self.current.index()];
        assert!(
            blk.terminator.is_none(),
            "block {} already terminated",
            self.current
        );
        blk.instrs.push(instr);
        self
    }

    /// `dst = value`
    pub fn const_int(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.push(Instr::Const { dst, value })
    }

    /// `dst = "value"`
    pub fn const_str(&mut self, dst: Reg, value: impl Into<String>) -> &mut Self {
        self.push(Instr::ConstString {
            dst,
            value: value.into(),
        })
    }

    /// `dst = src`
    pub fn move_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Instr::Move { dst, src })
    }

    /// `dst = lhs <op> rhs`
    pub fn binop(&mut self, op: BinOp, dst: Reg, lhs: Reg, rhs: impl Into<Operand>) -> &mut Self {
        self.push(Instr::BinOp {
            op,
            dst,
            lhs,
            rhs: rhs.into(),
        })
    }

    /// `dst = new class()`
    pub fn new_instance(&mut self, dst: Reg, class: impl Into<ClassName>) -> &mut Self {
        self.push(Instr::NewInstance {
            dst,
            class: class.into(),
        })
    }

    /// Generic invoke.
    pub fn invoke(
        &mut self,
        kind: InvokeKind,
        method: MethodRef,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> &mut Self {
        self.push(Instr::Invoke {
            kind,
            method,
            args: args.to_vec(),
            dst,
        })
    }

    /// `invoke-virtual`
    pub fn invoke_virtual(
        &mut self,
        method: MethodRef,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> &mut Self {
        self.invoke(InvokeKind::Virtual, method, args, dst)
    }

    /// `invoke-static`
    pub fn invoke_static(
        &mut self,
        method: MethodRef,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> &mut Self {
        self.invoke(InvokeKind::Static, method, args, dst)
    }

    /// `invoke-super`
    pub fn invoke_super(&mut self, method: MethodRef, args: &[Reg], dst: Option<Reg>) -> &mut Self {
        self.invoke(InvokeKind::Super, method, args, dst)
    }

    /// `dst = object.field` / `dst = Class.field`
    pub fn field_get(&mut self, dst: Reg, field: FieldRef, object: Option<Reg>) -> &mut Self {
        self.push(Instr::FieldGet { dst, field, object })
    }

    /// `object.field = src` / `Class.field = src`
    pub fn field_put(&mut self, src: Reg, field: FieldRef, object: Option<Reg>) -> &mut Self {
        self.push(Instr::FieldPut { src, field, object })
    }

    /// Reads `Build.VERSION.SDK_INT` into a fresh register and returns
    /// it.
    pub fn sdk_int(&mut self) -> Reg {
        let r = self.alloc_reg();
        self.field_get(r, FieldRef::sdk_int(), None);
        r
    }

    /// Appends `count` nops (size padding for generated corpora).
    pub fn pad(&mut self, count: usize) -> &mut Self {
        for _ in 0..count {
            self.push(Instr::Nop);
        }
        self
    }

    /// Terminates the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn terminate(&mut self, terminator: Terminator) -> &mut Self {
        let blk = &mut self.blocks[self.current.index()];
        assert!(
            blk.terminator.is_none(),
            "block {} already terminated",
            self.current
        );
        blk.terminator = Some(terminator);
        self
    }

    /// `return-void`
    pub fn ret_void(&mut self) -> &mut Self {
        self.terminate(Terminator::Return(None))
    }

    /// `return reg`
    pub fn ret(&mut self, reg: Reg) -> &mut Self {
        self.terminate(Terminator::Return(Some(reg)))
    }

    /// `goto target`
    pub fn goto(&mut self, target: BlockId) -> &mut Self {
        self.terminate(Terminator::Goto(target))
    }

    /// `throw reg`
    pub fn throw(&mut self, reg: Reg) -> &mut Self {
        self.terminate(Terminator::Throw(reg))
    }

    /// Conditional branch out of the current block.
    pub fn branch_if(
        &mut self,
        cond: Cond,
        lhs: Reg,
        rhs: impl Into<Operand>,
        then_blk: BlockId,
        else_blk: BlockId,
    ) -> &mut Self {
        self.terminate(Terminator::If {
            cond,
            lhs,
            rhs: rhs.into(),
            then_blk,
            else_blk,
        })
    }

    /// Emits the canonical SDK guard: reads `SDK_INT`, branches to a new
    /// *then* block when `SDK_INT >= level`, otherwise to a new join
    /// block. Returns `(then_block, join_block)`; the *then* block is
    /// left unterminated (callers usually `goto` the join), and the
    /// builder keeps the original block selected until `switch_to`.
    pub fn guard_sdk_at_least(&mut self, level: ApiLevel) -> (BlockId, BlockId) {
        let sdk = self.sdk_int();
        let then_blk = self.new_block();
        let join = self.new_block();
        self.branch_if(Cond::Ge, sdk, i64::from(level.get()), then_blk, join);
        (then_blk, join)
    }

    /// Emits the inverse guard (`SDK_INT < level` runs the *then*
    /// block); used for legacy fallback paths.
    pub fn guard_sdk_below(&mut self, level: ApiLevel) -> (BlockId, BlockId) {
        let sdk = self.sdk_int();
        let then_blk = self.new_block();
        let join = self.new_block();
        self.branch_if(Cond::Lt, sdk, i64::from(level.get()), then_blk, join);
        (then_blk, join)
    }

    /// Finalizes the body.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::MissingTerminator`] if any block was never
    /// terminated, or a validation error from
    /// [`MethodBody::from_blocks`].
    pub fn finish(self) -> Result<MethodBody, IrError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.into_iter().enumerate() {
            let terminator = b.terminator.ok_or(IrError::MissingTerminator {
                block: BlockId(i as u32),
            })?;
            blocks.push(BasicBlock {
                instrs: b.instrs,
                terminator,
            });
        }
        MethodBody::from_blocks(blocks)
    }
}

impl Default for BodyBuilder {
    fn default() -> Self {
        BodyBuilder::new()
    }
}

/// Builds a [`ClassDef`].
///
/// # Examples
///
/// ```
/// use saint_ir::{ClassBuilder, ClassOrigin};
///
/// let class = ClassBuilder::new("com.example.app.MainActivity", ClassOrigin::App)
///     .extends("android.app.Activity")
///     .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
///         b.ret_void();
///     })?
///     .build();
/// assert_eq!(class.methods.len(), 1);
/// # Ok::<(), saint_ir::IrError>(())
/// ```
pub struct ClassBuilder {
    class: ClassDef,
}

impl ClassBuilder {
    /// Starts a class extending `java.lang.Object`.
    #[must_use]
    pub fn new(name: impl Into<ClassName>, origin: ClassOrigin) -> Self {
        ClassBuilder {
            class: ClassDef::new(name, origin),
        }
    }

    /// Sets the superclass.
    #[must_use]
    pub fn extends(mut self, super_class: impl Into<ClassName>) -> Self {
        self.class.super_class = Some(super_class.into());
        self
    }

    /// Adds an implemented interface.
    #[must_use]
    pub fn implements(mut self, interface: impl Into<ClassName>) -> Self {
        self.class.interfaces.push(interface.into());
        self
    }

    /// Adds a field.
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, is_static: bool) -> Self {
        self.class.fields.push(FieldDef {
            name: name.into(),
            is_static,
        });
        self
    }

    /// Adds a concrete method whose body is authored by `f`.
    ///
    /// # Errors
    ///
    /// Propagates body-construction errors and duplicate-method errors.
    pub fn method(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> Result<Self, IrError> {
        let mut b = BodyBuilder::new();
        f(&mut b);
        let body = b.finish()?;
        self.class
            .add_method(MethodDef::concrete(name, descriptor, body))?;
        Ok(self)
    }

    /// Adds a static concrete method.
    ///
    /// # Errors
    ///
    /// Propagates body-construction errors and duplicate-method errors.
    pub fn static_method(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
        f: impl FnOnce(&mut BodyBuilder),
    ) -> Result<Self, IrError> {
        let mut b = BodyBuilder::new();
        f(&mut b);
        let body = b.finish()?;
        let mut m = MethodDef::concrete(name, descriptor, body);
        m.flags.is_static = true;
        self.class.add_method(m)?;
        Ok(self)
    }

    /// Adds an abstract method.
    ///
    /// # Errors
    ///
    /// Returns duplicate-method errors.
    pub fn abstract_method(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
    ) -> Result<Self, IrError> {
        self.class
            .add_method(MethodDef::abstract_(name, descriptor))?;
        Ok(self)
    }

    /// Adds a native (body-less, terminal) method.
    ///
    /// # Errors
    ///
    /// Returns duplicate-method errors.
    pub fn native_method(
        mut self,
        name: impl Into<String>,
        descriptor: impl Into<String>,
    ) -> Result<Self, IrError> {
        let mut m = MethodDef::abstract_(name, descriptor);
        m.flags = MethodFlags {
            is_native: true,
            ..MethodFlags::default()
        };
        self.class.add_method(m)?;
        Ok(self)
    }

    /// Finalizes the class.
    #[must_use]
    pub fn build(self) -> ClassDef {
        self.class
    }
}

/// Builds an [`Apk`].
///
/// # Examples
///
/// ```
/// use saint_ir::{ApkBuilder, ApiLevel, ClassBuilder, ClassOrigin};
///
/// let main = ClassBuilder::new("com.example.app.MainActivity", ClassOrigin::App)
///     .extends("android.app.Activity")
///     .build();
/// let apk = ApkBuilder::new("com.example.app", ApiLevel::new(21), ApiLevel::new(28))
///     .activity("com.example.app.MainActivity")
///     .class(main)?
///     .build();
/// assert_eq!(apk.class_count(), 1);
/// # Ok::<(), saint_ir::IrError>(())
/// ```
pub struct ApkBuilder {
    apk: Apk,
}

impl ApkBuilder {
    /// Starts an APK with the given package and SDK attributes.
    ///
    /// # Panics
    ///
    /// Never panics: `min > max` is impossible here because no
    /// `maxSdkVersion` is set yet (use [`ApkBuilder::max_sdk`]).
    #[must_use]
    pub fn new(package: impl Into<String>, min_sdk: ApiLevel, target_sdk: ApiLevel) -> Self {
        let manifest = Manifest::new(package, min_sdk, target_sdk, None)
            .expect("manifest without maxSdkVersion is always valid");
        ApkBuilder {
            apk: Apk::new(manifest),
        }
    }

    /// Declares `maxSdkVersion`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidSdkRange`] when below `minSdkVersion`.
    pub fn max_sdk(mut self, level: ApiLevel) -> Result<Self, IrError> {
        if level < self.apk.manifest.min_sdk {
            return Err(IrError::InvalidSdkRange {
                min: self.apk.manifest.min_sdk.get(),
                max: level.get(),
            });
        }
        self.apk.manifest.max_sdk = Some(level);
        Ok(self)
    }

    /// Adds a `<uses-permission>` entry.
    #[must_use]
    pub fn permission(mut self, p: Permission) -> Self {
        self.apk.manifest.uses_permissions.push(p);
        self
    }

    /// Declares an activity component.
    #[must_use]
    pub fn activity(self, class: impl Into<ClassName>) -> Self {
        self.component(ComponentKind::Activity, class)
    }

    /// Declares a service component.
    #[must_use]
    pub fn service(self, class: impl Into<ClassName>) -> Self {
        self.component(ComponentKind::Service, class)
    }

    /// Declares a broadcast receiver component.
    #[must_use]
    pub fn receiver(self, class: impl Into<ClassName>) -> Self {
        self.component(ComponentKind::Receiver, class)
    }

    /// Declares a component of the given kind.
    #[must_use]
    pub fn component(mut self, kind: ComponentKind, class: impl Into<ClassName>) -> Self {
        self.apk.manifest.components.push(Component {
            kind,
            class: class.into(),
        });
        self
    }

    /// Adds a class to the primary dex.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateClass`] on name collision.
    pub fn class(mut self, class: ClassDef) -> Result<Self, IrError> {
        self.apk.primary.add_class(class)?;
        Ok(self)
    }

    /// Adds a complete secondary (late-bound) dex payload.
    #[must_use]
    pub fn secondary_dex(mut self, dex: DexFile) -> Self {
        self.apk.secondary.push(dex);
        self
    }

    /// Marks the app as having no buildable source (LINT cannot analyze
    /// it; paper §IV-A).
    #[must_use]
    pub fn without_source(mut self) -> Self {
        self.apk.has_source = false;
        self
    }

    /// Finalizes the APK.
    #[must_use]
    pub fn build(self) -> Apk {
        self.apk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_body() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        b.const_int(r, 7).ret(r);
        let body = b.finish().unwrap();
        assert_eq!(body.len(), 1);
        assert_eq!(body.register_count(), 1);
    }

    #[test]
    fn unterminated_block_is_error() {
        let mut b = BodyBuilder::new();
        b.pad(1);
        assert!(matches!(
            b.finish(),
            Err(IrError::MissingTerminator { block: BlockId(0) })
        ));
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = BodyBuilder::new();
        b.ret_void();
        b.ret_void();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn push_after_terminate_panics() {
        let mut b = BodyBuilder::new();
        b.ret_void();
        b.pad(1);
    }

    #[test]
    fn guard_shapes_cfg() {
        let mut b = BodyBuilder::new();
        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
        b.switch_to(then_blk);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let body = b.finish().unwrap();
        assert_eq!(body.len(), 3);
        // entry ends in an If on a register fed by an SDK_INT read
        let entry = body.block(BlockId::ENTRY);
        assert!(entry.instrs.iter().any(Instr::is_sdk_int_read));
        assert!(matches!(entry.terminator, Terminator::If { .. }));
    }

    #[test]
    fn class_builder_roundtrip() {
        let c = ClassBuilder::new("a.B", ClassOrigin::App)
            .extends("a.Base")
            .implements("a.I")
            .field("x", false)
            .method("m", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .abstract_method("n", "()V")
            .unwrap()
            .native_method("nat", "()V")
            .unwrap()
            .build();
        assert_eq!(c.methods.len(), 3);
        assert!(
            c.method(&crate::name::MethodSig::new("nat", "()V"))
                .unwrap()
                .flags
                .is_native
        );
        assert_eq!(c.super_class.as_ref().unwrap().as_str(), "a.Base");
    }

    #[test]
    fn static_method_flag_set() {
        let c = ClassBuilder::new("a.B", ClassOrigin::App)
            .static_method("s", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        assert!(c.methods[0].flags.is_static);
    }

    #[test]
    fn apk_builder_assembles_manifest() {
        let apk = ApkBuilder::new("p.q", ApiLevel::new(19), ApiLevel::new(27))
            .max_sdk(ApiLevel::new(28))
            .unwrap()
            .permission(Permission::android("CAMERA"))
            .activity("p.q.Main")
            .service("p.q.Sync")
            .without_source()
            .build();
        assert_eq!(apk.manifest.max_sdk, Some(ApiLevel::new(28)));
        assert_eq!(apk.manifest.components.len(), 2);
        assert!(!apk.has_source);
        assert!(apk
            .manifest
            .requests_permission(&Permission::android("CAMERA")));
    }

    #[test]
    fn apk_builder_rejects_bad_max() {
        let r =
            ApkBuilder::new("p.q", ApiLevel::new(23), ApiLevel::new(27)).max_sdk(ApiLevel::new(4));
        assert!(r.is_err());
    }
}
