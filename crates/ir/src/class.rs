//! Class, method and field definitions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::body::MethodBody;
use crate::error::IrError;
use crate::name::{ClassName, MethodRef, MethodSig};

/// Access/behaviour flags on a method definition.
///
/// Only the flags the analysis consumes are modeled; everything else in
/// a real `access_flags` word is irrelevant here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MethodFlags {
    /// `static` methods have no receiver.
    pub is_static: bool,
    /// Abstract methods carry no body.
    pub is_abstract: bool,
    /// Native methods carry no analyzable body (terminal nodes in the
    /// call graph, paper §III-A).
    pub is_native: bool,
    /// Compiler-synthesized methods (bridges, lambdas).
    pub is_synthetic: bool,
}

/// A method definition inside a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodDef {
    /// Simple name, e.g. `onCreate`.
    pub name: String,
    /// Descriptor, e.g. `(Landroid/os/Bundle;)V`.
    pub descriptor: String,
    /// Behaviour flags.
    pub flags: MethodFlags,
    /// The body; `None` for abstract/native methods.
    pub body: Option<MethodBody>,
}

impl MethodDef {
    /// Creates a concrete method with a body.
    #[must_use]
    pub fn concrete(
        name: impl Into<String>,
        descriptor: impl Into<String>,
        body: MethodBody,
    ) -> Self {
        MethodDef {
            name: name.into(),
            descriptor: descriptor.into(),
            flags: MethodFlags::default(),
            body: Some(body),
        }
    }

    /// Creates an abstract (body-less) method.
    #[must_use]
    pub fn abstract_(name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        MethodDef {
            name: name.into(),
            descriptor: descriptor.into(),
            flags: MethodFlags {
                is_abstract: true,
                ..MethodFlags::default()
            },
            body: None,
        }
    }

    /// This method's class-independent signature.
    #[must_use]
    pub fn signature(&self) -> MethodSig {
        MethodSig::new(self.name.as_str(), self.descriptor.as_str())
    }

    /// A full reference to this method as declared on `class`.
    #[must_use]
    pub fn reference(&self, class: &ClassName) -> MethodRef {
        MethodRef::new(class.clone(), self.name.as_str(), self.descriptor.as_str())
    }

    /// Rough size in code units (header + body).
    #[must_use]
    pub fn size_units(&self) -> usize {
        8 + self.body.as_ref().map_or(0, MethodBody::size_units)
    }
}

impl fmt::Display for MethodDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".method {}{}", self.name, self.descriptor)?;
        if self.flags.is_static {
            write!(f, " [static]")?;
        }
        if self.flags.is_abstract {
            write!(f, " [abstract]")?;
        }
        if self.flags.is_native {
            write!(f, " [native]")?;
        }
        writeln!(f)?;
        if let Some(b) = &self.body {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// A field definition (name only; types are irrelevant to the
/// analysis).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Whether the field is static.
    pub is_static: bool,
}

/// Where a class definition came from.
///
/// The distinction drives both metering (framework classes are what the
/// lazy loader avoids materializing) and detection (callbacks only
/// matter on app classes extending framework classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassOrigin {
    /// Application code shipped in the primary dex.
    App,
    /// Third-party library code bundled with the app.
    Library,
    /// Android framework code (the ADF).
    Framework,
    /// Code carried in a secondary dex, bound at run time
    /// (`DexClassLoader`); paper §III-A, "late binding".
    DynamicPayload,
}

impl fmt::Display for ClassOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClassOrigin::App => "app",
            ClassOrigin::Library => "library",
            ClassOrigin::Framework => "framework",
            ClassOrigin::DynamicPayload => "dynamic-payload",
        };
        f.write_str(s)
    }
}

/// A class definition: hierarchy links plus members.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDef {
    /// Fully qualified class name.
    pub name: ClassName,
    /// Direct superclass (`None` only for `java.lang.Object`).
    pub super_class: Option<ClassName>,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassName>,
    /// Where this class came from.
    pub origin: ClassOrigin,
    /// Declared fields.
    pub fields: Vec<FieldDef>,
    /// Declared methods.
    pub methods: Vec<MethodDef>,
}

impl ClassDef {
    /// Creates an empty class extending `java.lang.Object`.
    #[must_use]
    pub fn new(name: impl Into<ClassName>, origin: ClassOrigin) -> Self {
        ClassDef {
            name: name.into(),
            super_class: Some(ClassName::new("java.lang.Object")),
            interfaces: Vec::new(),
            origin,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Looks up a declared method by signature.
    #[must_use]
    pub fn method(&self, sig: &MethodSig) -> Option<&MethodDef> {
        self.methods
            .iter()
            .find(|m| m.name == *sig.name && m.descriptor == *sig.descriptor)
    }

    /// Adds a method, rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateMethod`] if a method with the same
    /// signature already exists.
    pub fn add_method(&mut self, method: MethodDef) -> Result<(), IrError> {
        if self.method(&method.signature()).is_some() {
            return Err(IrError::DuplicateMethod {
                method: format!("{}.{}{}", self.name, method.name, method.descriptor),
            });
        }
        self.methods.push(method);
        Ok(())
    }

    /// Rough size of the class in code units.
    #[must_use]
    pub fn size_units(&self) -> usize {
        32 + self.fields.len() * 4
            + self
                .methods
                .iter()
                .map(MethodDef::size_units)
                .sum::<usize>()
    }

    /// Rough size in *bytes* (two bytes per code unit, like Dalvik);
    /// this is what the loaded-bytes meter accumulates.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.size_units() * 2
    }
}

impl fmt::Display for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".class {} [{}]", self.name, self.origin)?;
        if let Some(s) = &self.super_class {
            write!(f, " extends {s}")?;
        }
        if !self.interfaces.is_empty() {
            write!(f, " implements ")?;
            for (i, itf) in self.interfaces.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{itf}")?;
            }
        }
        writeln!(f)?;
        for m in &self.methods {
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{BasicBlock, Terminator};

    fn tiny_body() -> MethodBody {
        MethodBody::from_blocks(vec![BasicBlock {
            instrs: vec![],
            terminator: Terminator::Return(None),
        }])
        .unwrap()
    }

    #[test]
    fn add_and_lookup_method() {
        let mut c = ClassDef::new("a.B", ClassOrigin::App);
        c.add_method(MethodDef::concrete("m", "()V", tiny_body()))
            .unwrap();
        assert!(c.method(&MethodSig::new("m", "()V")).is_some());
        assert!(c.method(&MethodSig::new("m", "(I)V")).is_none());
    }

    #[test]
    fn duplicate_method_rejected() {
        let mut c = ClassDef::new("a.B", ClassOrigin::App);
        c.add_method(MethodDef::concrete("m", "()V", tiny_body()))
            .unwrap();
        let err = c
            .add_method(MethodDef::concrete("m", "()V", tiny_body()))
            .unwrap_err();
        assert!(matches!(err, IrError::DuplicateMethod { .. }));
    }

    #[test]
    fn overloads_are_not_duplicates() {
        let mut c = ClassDef::new("a.B", ClassOrigin::App);
        c.add_method(MethodDef::concrete("m", "()V", tiny_body()))
            .unwrap();
        c.add_method(MethodDef::concrete("m", "(I)V", tiny_body()))
            .unwrap();
        assert_eq!(c.methods.len(), 2);
    }

    #[test]
    fn default_superclass_is_object() {
        let c = ClassDef::new("a.B", ClassOrigin::App);
        assert_eq!(c.super_class.as_ref().unwrap().as_str(), "java.lang.Object");
    }

    #[test]
    fn abstract_methods_have_no_body() {
        let m = MethodDef::abstract_("m", "()V");
        assert!(m.body.is_none());
        assert!(m.flags.is_abstract);
    }

    #[test]
    fn sizes_grow_with_content() {
        let mut c = ClassDef::new("a.B", ClassOrigin::App);
        let empty = c.size_bytes();
        c.add_method(MethodDef::concrete("m", "()V", tiny_body()))
            .unwrap();
        assert!(c.size_bytes() > empty);
    }

    #[test]
    fn display_mentions_hierarchy() {
        let mut c = ClassDef::new("a.B", ClassOrigin::Library);
        c.interfaces.push(ClassName::new("a.I"));
        let s = c.to_string();
        assert!(s.contains("extends java.lang.Object"));
        assert!(s.contains("implements a.I"));
        assert!(s.contains("[library]"));
    }
}
