//! The register-based instruction set.
//!
//! The IR mirrors the slice of Dalvik that compatibility analysis
//! actually consumes: constants, moves, arithmetic, field access,
//! allocation and — above all — method invocation. Control flow lives in
//! block [`Terminator`]s rather than in the instruction stream, which is
//! the shape SOOT/JITANA-style analyses normalize to anyway.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::name::{ClassName, FieldRef, MethodRef};

/// A virtual register, `v0`, `v1`, ….
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Right-hand operand of comparisons and binary ops: a register or an
/// immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate integer constant.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Binary arithmetic/logic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (semantics irrelevant to the analysis; kept total).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        };
        f.write_str(s)
    }
}

/// Comparison conditions for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cond {
    /// The condition that holds on the *fall-through* (else) edge.
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// The condition with its operands swapped (`a < b` ⇔ `b > a`).
    #[must_use]
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "==",
            Cond::Ne => "!=",
            Cond::Lt => "<",
            Cond::Le => "<=",
            Cond::Gt => ">",
            Cond::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Dalvik invocation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvokeKind {
    /// `invoke-virtual`: dispatched through the receiver's class.
    Virtual,
    /// `invoke-static`.
    Static,
    /// `invoke-direct`: constructors and private methods.
    Direct,
    /// `invoke-interface`.
    Interface,
    /// `invoke-super`: calls the superclass implementation.
    Super,
}

impl fmt::Display for InvokeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvokeKind::Virtual => "invoke-virtual",
            InvokeKind::Static => "invoke-static",
            InvokeKind::Direct => "invoke-direct",
            InvokeKind::Interface => "invoke-interface",
            InvokeKind::Super => "invoke-super",
        };
        f.write_str(s)
    }
}

/// A single non-branching instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Constant value.
        value: i64,
    },
    /// `dst = "value"` — string constants matter to the analysis because
    /// late binding resolves `DexClassLoader.loadClass("com.x.Y")`
    /// targets from them (paper §III-A, late binding).
    ConstString {
        /// Destination register.
        dst: Reg,
        /// String payload.
        value: String,
    },
    /// `dst = src`
    Move {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = lhs <op> rhs`
    BinOp {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = new C()` (allocation only; constructor call is separate).
    NewInstance {
        /// Destination register.
        dst: Reg,
        /// Instantiated class.
        class: ClassName,
    },
    /// Method invocation. `dst` receives the return value if used.
    Invoke {
        /// Dispatch kind.
        kind: InvokeKind,
        /// Static target as written in the bytecode.
        method: MethodRef,
        /// Argument registers (receiver first for instance kinds).
        args: Vec<Reg>,
        /// Optional move-result destination.
        dst: Option<Reg>,
    },
    /// Field read; `object` is `None` for static fields. Reads of
    /// `android.os.Build$VERSION.SDK_INT` seed the guard analysis.
    FieldGet {
        /// Destination register.
        dst: Reg,
        /// Field reference.
        field: FieldRef,
        /// Receiver register, or `None` for `sget`.
        object: Option<Reg>,
    },
    /// Field write; `object` is `None` for static fields.
    FieldPut {
        /// Source register.
        src: Reg,
        /// Field reference.
        field: FieldRef,
        /// Receiver register, or `None` for `sput`.
        object: Option<Reg>,
    },
    /// No-op (padding in generated corpora; keeps sizes realistic).
    Nop,
}

impl Instr {
    /// The register this instruction defines, if any.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::ConstString { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::BinOp { dst, .. }
            | Instr::NewInstance { dst, .. }
            | Instr::FieldGet { dst, .. } => Some(*dst),
            Instr::Invoke { dst, .. } => *dst,
            Instr::FieldPut { .. } | Instr::Nop => None,
        }
    }

    /// The registers this instruction reads.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Const { .. }
            | Instr::ConstString { .. }
            | Instr::NewInstance { .. }
            | Instr::Nop => Vec::new(),
            Instr::Move { src, .. } => vec![*src],
            Instr::BinOp { lhs, rhs, .. } => match rhs {
                Operand::Reg(r) => vec![*lhs, *r],
                Operand::Imm(_) => vec![*lhs],
            },
            Instr::Invoke { args, .. } => args.clone(),
            Instr::FieldGet { object, .. } => object.iter().copied().collect(),
            Instr::FieldPut { src, object, .. } => {
                let mut v = vec![*src];
                v.extend(object.iter().copied());
                v
            }
        }
    }

    /// The invoked method, for `Invoke` instructions.
    #[must_use]
    pub fn invoked_method(&self) -> Option<&MethodRef> {
        match self {
            Instr::Invoke { method, .. } => Some(method),
            _ => None,
        }
    }

    /// Whether this instruction reads `Build.VERSION.SDK_INT`.
    #[must_use]
    pub fn is_sdk_int_read(&self) -> bool {
        matches!(self, Instr::FieldGet { field, .. } if field.is_sdk_int())
    }

    /// Rough size of the instruction in "code units", used by the
    /// loaded-bytes meter and by KLOC estimation.
    #[must_use]
    pub fn size_units(&self) -> usize {
        match self {
            Instr::Nop => 1,
            Instr::Const { .. } | Instr::Move { .. } => 2,
            Instr::BinOp { .. } | Instr::FieldGet { .. } | Instr::FieldPut { .. } => 2,
            Instr::NewInstance { .. } => 2,
            Instr::ConstString { value, .. } => 2 + value.len() / 4,
            Instr::Invoke { args, .. } => 3 + args.len(),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, value } => write!(f, "const {dst}, #{value}"),
            Instr::ConstString { dst, value } => write!(f, "const-string {dst}, {value:?}"),
            Instr::Move { dst, src } => write!(f, "move {dst}, {src}"),
            Instr::BinOp { op, dst, lhs, rhs } => write!(f, "{op} {dst}, {lhs}, {rhs}"),
            Instr::NewInstance { dst, class } => write!(f, "new-instance {dst}, {class}"),
            Instr::Invoke {
                kind,
                method,
                args,
                dst,
            } => {
                write!(f, "{kind} {method} (")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(d) = dst {
                    write!(f, " -> {d}")?;
                }
                Ok(())
            }
            Instr::FieldGet { dst, field, object } => match object {
                Some(o) => write!(f, "iget {dst}, {o}, {field}"),
                None => write!(f, "sget {dst}, {field}"),
            },
            Instr::FieldPut { src, field, object } => match object {
                Some(o) => write!(f, "iput {src}, {o}, {field}"),
                None => write!(f, "sput {src}, {field}"),
            },
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u16) -> Reg {
        Reg(n)
    }

    #[test]
    fn cond_negate_roundtrip() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            assert_eq!(c.swap().swap(), c);
        }
    }

    #[test]
    fn defs_and_uses() {
        let i = Instr::BinOp {
            op: BinOp::Add,
            dst: r(0),
            lhs: r(1),
            rhs: Operand::Reg(r(2)),
        };
        assert_eq!(i.def(), Some(r(0)));
        assert_eq!(i.uses(), vec![r(1), r(2)]);

        let imm = Instr::BinOp {
            op: BinOp::Add,
            dst: r(0),
            lhs: r(1),
            rhs: Operand::Imm(7),
        };
        assert_eq!(imm.uses(), vec![r(1)]);

        let inv = Instr::Invoke {
            kind: InvokeKind::Virtual,
            method: MethodRef::new("a.B", "m", "()I"),
            args: vec![r(3)],
            dst: Some(r(4)),
        };
        assert_eq!(inv.def(), Some(r(4)));
        assert_eq!(inv.uses(), vec![r(3)]);

        let put = Instr::FieldPut {
            src: r(5),
            field: FieldRef::new("a.B", "x"),
            object: Some(r(6)),
        };
        assert_eq!(put.def(), None);
        assert_eq!(put.uses(), vec![r(5), r(6)]);
    }

    #[test]
    fn sdk_int_read_detection() {
        let i = Instr::FieldGet {
            dst: r(0),
            field: FieldRef::sdk_int(),
            object: None,
        };
        assert!(i.is_sdk_int_read());
        let j = Instr::FieldGet {
            dst: r(0),
            field: FieldRef::new("a.B", "SDK_INT"),
            object: None,
        };
        assert!(!j.is_sdk_int_read());
    }

    #[test]
    fn display_is_smali_like() {
        let i = Instr::Invoke {
            kind: InvokeKind::Static,
            method: MethodRef::new("a.B", "m", "(I)V"),
            args: vec![r(1)],
            dst: None,
        };
        assert_eq!(i.to_string(), "invoke-static a.B.m(I)V (v1)");
        let g = Instr::FieldGet {
            dst: r(0),
            field: FieldRef::sdk_int(),
            object: None,
        };
        assert_eq!(g.to_string(), "sget v0, android.os.Build$VERSION.SDK_INT");
    }

    #[test]
    fn size_units_are_positive() {
        let samples = [
            Instr::Nop,
            Instr::Const {
                dst: r(0),
                value: 1,
            },
            Instr::Invoke {
                kind: InvokeKind::Virtual,
                method: MethodRef::new("a.B", "m", "()V"),
                args: vec![r(0), r(1)],
                dst: None,
            },
        ];
        for s in &samples {
            assert!(s.size_units() >= 1, "{s}");
        }
    }
}
