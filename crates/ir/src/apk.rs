//! Dex files and the APK container.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::class::ClassDef;
use crate::error::IrError;
use crate::manifest::Manifest;
use crate::name::ClassName;

/// A dex file: a named collection of class definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DexFile {
    /// File name inside the package, e.g. `classes.dex` or
    /// `assets/payload.dex`.
    pub name: String,
    classes: BTreeMap<ClassName, ClassDef>,
}

impl DexFile {
    /// Creates an empty dex file.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        DexFile {
            name: name.into(),
            classes: BTreeMap::new(),
        }
    }

    /// Adds a class definition.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateClass`] if the class already exists
    /// in this dex file.
    pub fn add_class(&mut self, class: ClassDef) -> Result<(), IrError> {
        if self.classes.contains_key(&class.name) {
            return Err(IrError::DuplicateClass {
                class: class.name.to_string(),
            });
        }
        self.classes.insert(class.name.clone(), class);
        Ok(())
    }

    /// Looks up a class by name.
    #[must_use]
    pub fn class(&self, name: &ClassName) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Removes a class definition, returning it if present (used by
    /// the lineage generator to model deletions across app versions).
    pub fn remove_class(&mut self, name: &ClassName) -> Option<ClassDef> {
        self.classes.remove(name)
    }

    /// Inserts or replaces a class definition (used by repair tooling
    /// to write back patched classes).
    pub fn update_class(&mut self, class: ClassDef) {
        self.classes.insert(class.name.clone(), class);
    }

    /// Iterates all classes in name order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// Number of classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the dex file holds no classes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total size in code units.
    #[must_use]
    pub fn size_units(&self) -> usize {
        self.classes.values().map(ClassDef::size_units).sum()
    }
}

/// An application package: manifest plus one or more dex files.
///
/// `primary` models `classes.dex` (loaded at install time); entries in
/// `secondary` model code shipped in the package but bound at run time
/// through `DexClassLoader` — SAINTDroid conservatively analyzes those
/// too (paper §III-A, late binding), unlike tools that only see the
/// main dex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Apk {
    /// The app manifest.
    pub manifest: Manifest,
    /// The install-time dex (`classes.dex`).
    pub primary: DexFile,
    /// Dynamically loaded dex payloads bundled in the package, keyed by
    /// their in-package path (the string passed to `DexClassLoader`).
    pub secondary: Vec<DexFile>,
    /// Whether app "source" is available. LINT requires building from
    /// source (paper §IV-A); eight benchmark apps could not be built and
    /// were excluded from LINT's rows.
    pub has_source: bool,
}

impl Apk {
    /// Creates an APK with an empty primary dex.
    #[must_use]
    pub fn new(manifest: Manifest) -> Self {
        Apk {
            manifest,
            primary: DexFile::new("classes.dex"),
            secondary: Vec::new(),
            has_source: true,
        }
    }

    /// Looks up a class in the primary dex only (install-time view).
    #[must_use]
    pub fn primary_class(&self, name: &ClassName) -> Option<&ClassDef> {
        self.primary.class(name)
    }

    /// Looks up a class anywhere in the package, primary first.
    #[must_use]
    pub fn any_class(&self, name: &ClassName) -> Option<&ClassDef> {
        self.primary
            .class(name)
            .or_else(|| self.secondary.iter().find_map(|d| d.class(name)))
    }

    /// Iterates every class in the package (primary, then secondary).
    pub fn all_classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.primary
            .classes()
            .chain(self.secondary.iter().flat_map(DexFile::classes))
    }

    /// Total number of classes across all dex files.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.primary.len() + self.secondary.iter().map(DexFile::len).sum::<usize>()
    }

    /// Total code size in units.
    #[must_use]
    pub fn size_units(&self) -> usize {
        self.primary.size_units()
            + self
                .secondary
                .iter()
                .map(DexFile::size_units)
                .sum::<usize>()
    }

    /// Estimated thousands of lines of Dex code, the size measure used
    /// by the paper's Figure 3 x-axis (one "line" ≈ 2 code units).
    #[must_use]
    pub fn kloc(&self) -> f64 {
        self.size_units() as f64 / 2.0 / 1000.0
    }
}

impl fmt::Display for Apk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "apk {} ({} classes, {:.1} KLOC{})",
            self.manifest.package,
            self.class_count(),
            self.kloc(),
            if self.secondary.is_empty() {
                String::new()
            } else {
                format!(", {} secondary dex", self.secondary.len())
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassOrigin;
    use crate::level::ApiLevel;

    fn manifest() -> Manifest {
        Manifest::new(
            "com.example.app",
            ApiLevel::new(21),
            ApiLevel::new(28),
            None,
        )
        .unwrap()
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut d = DexFile::new("classes.dex");
        d.add_class(ClassDef::new("a.B", ClassOrigin::App)).unwrap();
        let err = d
            .add_class(ClassDef::new("a.B", ClassOrigin::App))
            .unwrap_err();
        assert!(matches!(err, IrError::DuplicateClass { .. }));
    }

    #[test]
    fn primary_vs_any_lookup() {
        let mut apk = Apk::new(manifest());
        apk.primary
            .add_class(ClassDef::new("a.Main", ClassOrigin::App))
            .unwrap();
        let mut payload = DexFile::new("assets/payload.dex");
        payload
            .add_class(ClassDef::new("a.Plugin", ClassOrigin::DynamicPayload))
            .unwrap();
        apk.secondary.push(payload);

        let plugin = ClassName::new("a.Plugin");
        assert!(apk.primary_class(&plugin).is_none());
        assert!(apk.any_class(&plugin).is_some());
        assert_eq!(apk.class_count(), 2);
        assert_eq!(apk.all_classes().count(), 2);
    }

    #[test]
    fn kloc_scales_with_size() {
        let mut apk = Apk::new(manifest());
        let before = apk.kloc();
        let mut c = ClassDef::new("a.Big", ClassOrigin::App);
        for i in 0..50 {
            let body = crate::body::MethodBody::from_blocks(vec![crate::body::BasicBlock {
                instrs: vec![crate::instr::Instr::Nop; 100],
                terminator: crate::body::Terminator::Return(None),
            }])
            .unwrap();
            c.add_method(crate::class::MethodDef::concrete(
                format!("m{i}"),
                "()V",
                body,
            ))
            .unwrap();
        }
        apk.primary.add_class(c).unwrap();
        assert!(apk.kloc() > before);
    }

    #[test]
    fn display_summarizes() {
        let apk = Apk::new(manifest());
        let s = apk.to_string();
        assert!(s.contains("com.example.app"));
        assert!(s.contains("0 classes"));
    }
}
