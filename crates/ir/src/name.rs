//! Names and references: classes, methods, fields, permissions.
//!
//! These are the currency of the whole analysis: the CLVM resolves
//! [`ClassName`]s, call graphs are keyed by [`MethodRef`]s, and guard
//! analysis watches reads of the [`FieldRef`] for
//! `android.os.Build$VERSION.SDK_INT`.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A fully-qualified Java class name in dotted form, e.g.
/// `android.app.Activity` or `com.example.app.MainActivity$1`.
///
/// Cheap to clone (`Arc<str>` internally) because class names are shared
/// pervasively across graphs, worklists and reports. Construction goes
/// through the global [interner](crate::intern), so equal names share
/// one allocation process-wide.
///
/// # Examples
///
/// ```
/// use saint_ir::ClassName;
///
/// let c = ClassName::new("android.app.Activity");
/// assert_eq!(c.simple_name(), "Activity");
/// assert_eq!(c.package(), "android.app");
/// assert!(!c.is_anonymous_inner());
/// assert!(ClassName::new("android.webkit.WebView$1").is_anonymous_inner());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ClassName(Arc<str>);

impl ClassName {
    /// Creates a class name from its dotted textual form.
    #[must_use]
    pub fn new(name: impl Into<Arc<str>> + AsRef<str>) -> Self {
        ClassName(crate::intern::intern(name))
    }

    /// The full dotted name.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The unqualified class name (after the last `.`).
    #[must_use]
    pub fn simple_name(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }

    /// The package prefix (before the last `.`), empty for the default
    /// package.
    #[must_use]
    pub fn package(&self) -> &str {
        self.0.rsplit_once('.').map_or("", |(p, _)| p)
    }

    /// Whether this is a compiler-generated anonymous inner class such
    /// as `Foo$1` (a `$` followed by a digit-only suffix).
    ///
    /// SAINTDroid deliberately skips callbacks declared inside such
    /// classes (paper §VI, "dynamically-generated classes"); the corpus
    /// injects them to reproduce that limitation.
    #[must_use]
    pub fn is_anonymous_inner(&self) -> bool {
        match self.0.rsplit_once('$') {
            Some((_, suffix)) => !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()),
            None => false,
        }
    }

    /// Whether the class belongs to the Android framework namespace
    /// (`android.*`, `androidx.*`, `java.*`, `dalvik.*`, `com.android.*`).
    #[must_use]
    pub fn is_framework_namespace(&self) -> bool {
        const PREFIXES: [&str; 5] = ["android.", "androidx.", "java.", "dalvik.", "com.android."];
        PREFIXES.iter().any(|p| self.0.starts_with(p))
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName::new(s)
    }
}

impl From<String> for ClassName {
    fn from(s: String) -> Self {
        ClassName::new(s)
    }
}

impl Borrow<str> for ClassName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for ClassName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A reference to a method: owning class, name and descriptor.
///
/// The descriptor uses a compact JVM-like form such as `(I)V` or
/// `(Landroid/os/Bundle;)V`; it is treated as an opaque signature
/// component (two methods differ iff any of the three parts differ).
///
/// # Examples
///
/// ```
/// use saint_ir::MethodRef;
///
/// let m = MethodRef::new("android.app.Activity", "onCreate", "(Landroid/os/Bundle;)V");
/// assert_eq!(m.to_string(), "android.app.Activity.onCreate(Landroid/os/Bundle;)V");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodRef {
    /// Class that declares (or is the static receiver of) the method.
    pub class: ClassName,
    /// Simple method name, e.g. `onCreate`.
    pub name: Arc<str>,
    /// Signature descriptor, e.g. `(Landroid/os/Bundle;)V`.
    pub descriptor: Arc<str>,
}

impl MethodRef {
    /// Creates a method reference.
    #[must_use]
    pub fn new(
        class: impl Into<ClassName>,
        name: impl Into<Arc<str>> + AsRef<str>,
        descriptor: impl Into<Arc<str>> + AsRef<str>,
    ) -> Self {
        MethodRef {
            class: class.into(),
            name: crate::intern::intern(name),
            descriptor: crate::intern::intern(descriptor),
        }
    }

    /// The `name + descriptor` pair that identifies the method within
    /// its class (and along override chains).
    #[must_use]
    pub fn signature(&self) -> MethodSig {
        MethodSig {
            name: Arc::clone(&self.name),
            descriptor: Arc::clone(&self.descriptor),
        }
    }

    /// The same method re-homed onto a different class (used when
    /// resolving virtual dispatch up the superclass chain).
    #[must_use]
    pub fn with_class(&self, class: ClassName) -> Self {
        MethodRef {
            class,
            name: Arc::clone(&self.name),
            descriptor: Arc::clone(&self.descriptor),
        }
    }
}

impl fmt::Display for MethodRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}{}", self.class, self.name, self.descriptor)
    }
}

/// A class-independent method signature: name plus descriptor.
///
/// Signatures identify override relationships: an app method overrides a
/// framework callback iff a superclass (transitively) declares a method
/// with the same signature.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodSig {
    /// Simple method name.
    pub name: Arc<str>,
    /// Signature descriptor.
    pub descriptor: Arc<str>,
}

impl MethodSig {
    /// Creates a signature.
    #[must_use]
    pub fn new(
        name: impl Into<Arc<str>> + AsRef<str>,
        descriptor: impl Into<Arc<str>> + AsRef<str>,
    ) -> Self {
        MethodSig {
            name: crate::intern::intern(name),
            descriptor: crate::intern::intern(descriptor),
        }
    }

    /// Re-homes this signature onto a class, producing a full
    /// [`MethodRef`].
    #[must_use]
    pub fn on_class(&self, class: impl Into<ClassName>) -> MethodRef {
        MethodRef {
            class: class.into(),
            name: Arc::clone(&self.name),
            descriptor: Arc::clone(&self.descriptor),
        }
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.descriptor)
    }
}

/// A reference to a (static or instance) field.
///
/// # Examples
///
/// ```
/// use saint_ir::FieldRef;
///
/// let sdk = FieldRef::sdk_int();
/// assert_eq!(sdk.class.as_str(), "android.os.Build$VERSION");
/// assert_eq!(&*sdk.name, "SDK_INT");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FieldRef {
    /// Declaring class.
    pub class: ClassName,
    /// Field name.
    pub name: Arc<str>,
}

impl FieldRef {
    /// Creates a field reference.
    #[must_use]
    pub fn new(class: impl Into<ClassName>, name: impl Into<Arc<str>> + AsRef<str>) -> Self {
        FieldRef {
            class: class.into(),
            name: crate::intern::intern(name),
        }
    }

    /// The static field `android.os.Build$VERSION.SDK_INT` whose reads
    /// seed the guard analysis.
    #[must_use]
    pub fn sdk_int() -> Self {
        FieldRef::new("android.os.Build$VERSION", "SDK_INT")
    }

    /// Whether this is the `SDK_INT` field.
    #[must_use]
    pub fn is_sdk_int(&self) -> bool {
        &*self.name == "SDK_INT" && self.class.as_str() == "android.os.Build$VERSION"
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.class, self.name)
    }
}

/// An Android permission string, e.g.
/// `android.permission.WRITE_EXTERNAL_STORAGE`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Permission(Arc<str>);

impl Permission {
    /// Creates a permission from its full string form.
    #[must_use]
    pub fn new(name: impl Into<Arc<str>> + AsRef<str>) -> Self {
        Permission(crate::intern::intern(name))
    }

    /// Shorthand: prefixes `android.permission.` onto a bare name.
    ///
    /// ```
    /// use saint_ir::Permission;
    /// assert_eq!(
    ///     Permission::android("CAMERA").as_str(),
    ///     "android.permission.CAMERA"
    /// );
    /// ```
    #[must_use]
    pub fn android(short: &str) -> Self {
        Permission::new(format!("android.permission.{short}"))
    }

    /// The full permission string.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Permission {
    fn from(s: &str) -> Self {
        Permission::new(s)
    }
}

impl Borrow<str> for Permission {
    fn borrow(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_name_parts() {
        let c = ClassName::new("com.example.app.MainActivity");
        assert_eq!(c.simple_name(), "MainActivity");
        assert_eq!(c.package(), "com.example.app");
        let d = ClassName::new("TopLevel");
        assert_eq!(d.simple_name(), "TopLevel");
        assert_eq!(d.package(), "");
    }

    #[test]
    fn anonymous_inner_detection() {
        assert!(ClassName::new("a.B$1").is_anonymous_inner());
        assert!(ClassName::new("a.B$12").is_anonymous_inner());
        assert!(!ClassName::new("a.B$Inner").is_anonymous_inner());
        assert!(!ClassName::new("a.B").is_anonymous_inner());
        assert!(!ClassName::new("a.B$").is_anonymous_inner());
        // nested anon: only the final suffix matters
        assert!(ClassName::new("a.B$Inner$3").is_anonymous_inner());
    }

    #[test]
    fn framework_namespace() {
        assert!(ClassName::new("android.app.Activity").is_framework_namespace());
        assert!(ClassName::new("androidx.fragment.app.Fragment").is_framework_namespace());
        assert!(ClassName::new("java.lang.Object").is_framework_namespace());
        assert!(!ClassName::new("com.example.Foo").is_framework_namespace());
        assert!(!ClassName::new("androidy.Foo").is_framework_namespace());
    }

    #[test]
    fn method_ref_identity() {
        let a = MethodRef::new("a.B", "m", "()V");
        let b = MethodRef::new("a.B", "m", "()V");
        let c = MethodRef::new("a.B", "m", "(I)V");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.signature(), MethodSig::new("m", "()V"));
    }

    #[test]
    fn method_ref_rehoming() {
        let a = MethodRef::new("a.B", "m", "()V");
        let up = a.with_class(ClassName::new("a.Base"));
        assert_eq!(up.class.as_str(), "a.Base");
        assert_eq!(up.signature(), a.signature());
        let back = a.signature().on_class("a.Other");
        assert_eq!(back.class.as_str(), "a.Other");
    }

    #[test]
    fn sdk_int_field() {
        assert!(FieldRef::sdk_int().is_sdk_int());
        assert!(!FieldRef::new("a.B", "SDK_INT").is_sdk_int());
        assert!(!FieldRef::new("android.os.Build$VERSION", "CODENAME").is_sdk_int());
    }

    #[test]
    fn permission_shorthand() {
        let p = Permission::android("READ_CONTACTS");
        assert_eq!(p.as_str(), "android.permission.READ_CONTACTS");
        assert_eq!(p.to_string(), "android.permission.READ_CONTACTS");
    }

    #[test]
    fn display_forms() {
        let m = MethodRef::new("a.B", "m", "(I)V");
        assert_eq!(m.to_string(), "a.B.m(I)V");
        let f = FieldRef::new("a.B", "x");
        assert_eq!(f.to_string(), "a.B.x");
    }
}
