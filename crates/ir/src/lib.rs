//! # saint-ir — the Dalvik-like IR substrate
//!
//! The SAINTDroid paper (DSN 2022) analyzes Android APKs: Dalvik
//! bytecode plus a manifest. This crate provides the offline-Rust
//! equivalent: a register-based intermediate representation shaped like
//! the slice of Dalvik that compatibility analysis consumes, a manifest
//! model, an APK container with late-bound secondary dex payloads, a
//! binary on-disk format ([`codec`]), and fluent builders used by
//! the framework generator and the benchmark corpus.
//!
//! ## Quick tour
//!
//! ```
//! use saint_ir::{ApkBuilder, ApiLevel, BodyBuilder, ClassBuilder, ClassOrigin, MethodRef};
//!
//! // An Activity that calls an API inside an SDK_INT guard:
//! let main = ClassBuilder::new("com.example.Main", ClassOrigin::App)
//!     .extends("android.app.Activity")
//!     .method("onCreate", "(Landroid/os/Bundle;)V", |b: &mut BodyBuilder| {
//!         let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
//!         b.switch_to(then_blk);
//!         b.invoke_virtual(
//!             MethodRef::new("android.content.Context", "getColorStateList", "(I)V"),
//!             &[],
//!             None,
//!         );
//!         b.goto(join);
//!         b.switch_to(join);
//!         b.ret_void();
//!     })?
//!     .build();
//!
//! let apk = ApkBuilder::new("com.example", ApiLevel::new(21), ApiLevel::new(28))
//!     .activity("com.example.Main")
//!     .class(main)?
//!     .build();
//!
//! // Serialize and parse back, as the analysis front-end does:
//! let bytes = saint_ir::codec::encode_apk(&apk);
//! let parsed = saint_ir::codec::decode_apk(&bytes)?;
//! assert_eq!(apk, parsed);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod apk;
mod body;
mod builder;
mod class;
pub mod codec;
mod error;
mod instr;
pub mod intern;
mod level;
mod manifest;
mod name;

pub use apk::{Apk, DexFile};
pub use body::{BasicBlock, BlockId, MethodBody, Terminator};
pub use builder::{ApkBuilder, BodyBuilder, ClassBuilder};
pub use class::{ClassDef, ClassOrigin, FieldDef, MethodDef, MethodFlags};
pub use error::{CodecError, IrError};
pub use instr::{BinOp, Cond, Instr, InvokeKind, Operand, Reg};
pub use intern::{intern, intern_stats, InternStats};
pub use level::{ApiLevel, LevelRange};
pub use manifest::{Component, ComponentKind, Manifest};
pub use name::{ClassName, FieldRef, MethodRef, MethodSig, Permission};
