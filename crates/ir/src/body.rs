//! Method bodies: basic blocks and terminators.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IrError;
use crate::instr::{Cond, Instr, Operand, Reg};

/// Index of a basic block within its method body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The entry block of every method body.
    pub const ENTRY: BlockId = BlockId(0);

    /// The index as `usize` for slice access.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The control-transfer instruction that ends a basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way conditional branch: `if lhs <cond> rhs then then_blk else else_blk`.
    If {
        /// Comparison condition.
        cond: Cond,
        /// Left operand register.
        lhs: Reg,
        /// Right operand (register or immediate).
        rhs: Operand,
        /// Branch taken when the condition holds.
        then_blk: BlockId,
        /// Fall-through branch.
        else_blk: BlockId,
    },
    /// Multi-way switch on an integer register.
    Switch {
        /// Scrutinee register.
        scrutinee: Reg,
        /// `(case value, target)` pairs.
        targets: Vec<(i64, BlockId)>,
        /// Default target.
        default: BlockId,
    },
    /// Method return with optional value register.
    Return(Option<Reg>),
    /// Throws the exception object in the register.
    Throw(Reg),
}

impl Terminator {
    /// Successor blocks of this terminator, in branch order.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(t) => vec![*t],
            Terminator::If {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::Switch {
                targets, default, ..
            } => {
                let mut v: Vec<BlockId> = targets.iter().map(|(_, b)| *b).collect();
                v.push(*default);
                v
            }
            Terminator::Return(_) | Terminator::Throw(_) => Vec::new(),
        }
    }

    /// Registers read by this terminator.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::Goto(_) => Vec::new(),
            Terminator::If { lhs, rhs, .. } => match rhs {
                Operand::Reg(r) => vec![*lhs, *r],
                Operand::Imm(_) => vec![*lhs],
            },
            Terminator::Switch { scrutinee, .. } => vec![*scrutinee],
            Terminator::Return(r) => r.iter().copied().collect(),
            Terminator::Throw(r) => vec![*r],
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Goto(t) => write!(f, "goto {t}"),
            Terminator::If {
                cond,
                lhs,
                rhs,
                then_blk,
                else_blk,
            } => write!(f, "if {lhs} {cond} {rhs} then {then_blk} else {else_blk}"),
            Terminator::Switch {
                scrutinee,
                targets,
                default,
            } => {
                write!(f, "switch {scrutinee} [")?;
                for (i, (v, b)) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v} => {b}")?;
                }
                write!(f, "] default {default}")
            }
            Terminator::Return(Some(r)) => write!(f, "return {r}"),
            Terminator::Return(None) => f.write_str("return-void"),
            Terminator::Throw(r) => write!(f, "throw {r}"),
        }
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Rough size in code units (instructions plus terminator).
    #[must_use]
    pub fn size_units(&self) -> usize {
        self.instrs.iter().map(Instr::size_units).sum::<usize>() + 2
    }
}

/// A validated method body: a CFG-shaped list of basic blocks with block
/// 0 as entry.
///
/// Construct through [`crate::builder::BodyBuilder`], which guarantees
/// the invariants checked by [`MethodBody::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodBody {
    blocks: Vec<BasicBlock>,
}

impl MethodBody {
    /// Wraps raw blocks after validating them.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::EmptyBody`] if `blocks` is empty and
    /// [`IrError::BadBranchTarget`] if any terminator or switch edge
    /// points outside `blocks`.
    pub fn from_blocks(blocks: Vec<BasicBlock>) -> Result<Self, IrError> {
        let body = MethodBody { blocks };
        body.validate()?;
        Ok(body)
    }

    /// Validates structural invariants (non-empty, in-range branch
    /// targets).
    ///
    /// # Errors
    ///
    /// See [`MethodBody::from_blocks`].
    pub fn validate(&self) -> Result<(), IrError> {
        if self.blocks.is_empty() {
            return Err(IrError::EmptyBody);
        }
        let n = self.blocks.len();
        for (i, b) in self.blocks.iter().enumerate() {
            for succ in b.terminator.successors() {
                if succ.index() >= n {
                    return Err(IrError::BadBranchTarget {
                        from: BlockId(i as u32),
                        to: succ,
                        len: n,
                    });
                }
            }
        }
        Ok(())
    }

    /// The blocks, indexed by [`BlockId`].
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// A single block.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the body has no blocks (never true for a validated body).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates `(BlockId, &BasicBlock)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// The highest register index used plus one (the register frame
    /// size).
    #[must_use]
    pub fn register_count(&self) -> u16 {
        let mut max: Option<u16> = None;
        for b in &self.blocks {
            for i in &b.instrs {
                for r in i.def().into_iter().chain(i.uses()) {
                    max = Some(max.map_or(r.0, |m| m.max(r.0)));
                }
            }
            for r in b.terminator.uses() {
                max = Some(max.map_or(r.0, |m| m.max(r.0)));
            }
        }
        max.map_or(0, |m| m + 1)
    }

    /// Total size in code units, used for KLOC estimation and the
    /// loaded-bytes meter.
    #[must_use]
    pub fn size_units(&self) -> usize {
        self.blocks.iter().map(BasicBlock::size_units).sum()
    }

    /// All methods invoked anywhere in the body (static call sites).
    pub fn call_sites(&self) -> impl Iterator<Item = &crate::name::MethodRef> {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter_map(Instr::invoked_method)
    }
}

impl fmt::Display for MethodBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, b) in self.iter() {
            writeln!(f, "  {id}:")?;
            for i in &b.instrs {
                writeln!(f, "    {i}")?;
            }
            writeln!(f, "    {}", b.terminator)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::MethodRef;

    fn ret() -> Terminator {
        Terminator::Return(None)
    }

    #[test]
    fn empty_body_rejected() {
        assert!(matches!(
            MethodBody::from_blocks(vec![]),
            Err(IrError::EmptyBody)
        ));
    }

    #[test]
    fn bad_branch_target_rejected() {
        let blocks = vec![BasicBlock {
            instrs: vec![],
            terminator: Terminator::Goto(BlockId(3)),
        }];
        assert!(matches!(
            MethodBody::from_blocks(blocks),
            Err(IrError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn switch_targets_validated() {
        let blocks = vec![BasicBlock {
            instrs: vec![],
            terminator: Terminator::Switch {
                scrutinee: Reg(0),
                targets: vec![(1, BlockId(0)), (2, BlockId(9))],
                default: BlockId(0),
            },
        }];
        assert!(MethodBody::from_blocks(blocks).is_err());
    }

    #[test]
    fn successors_cover_all_edges() {
        let t = Terminator::Switch {
            scrutinee: Reg(0),
            targets: vec![(1, BlockId(1)), (2, BlockId(2))],
            default: BlockId(3),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert!(ret().successors().is_empty());
    }

    #[test]
    fn register_count_spans_defs_uses_and_terminators() {
        let blocks = vec![BasicBlock {
            instrs: vec![Instr::Const {
                dst: Reg(4),
                value: 1,
            }],
            terminator: Terminator::Return(Some(Reg(7))),
        }];
        let body = MethodBody::from_blocks(blocks).unwrap();
        assert_eq!(body.register_count(), 8);
    }

    #[test]
    fn call_sites_enumerates_invokes() {
        let m = MethodRef::new("a.B", "m", "()V");
        let blocks = vec![BasicBlock {
            instrs: vec![
                Instr::Nop,
                Instr::Invoke {
                    kind: crate::instr::InvokeKind::Static,
                    method: m.clone(),
                    args: vec![],
                    dst: None,
                },
            ],
            terminator: ret(),
        }];
        let body = MethodBody::from_blocks(blocks).unwrap();
        let sites: Vec<_> = body.call_sites().collect();
        assert_eq!(sites, vec![&m]);
    }

    #[test]
    fn display_renders_blocks() {
        let blocks = vec![BasicBlock {
            instrs: vec![Instr::Nop],
            terminator: ret(),
        }];
        let body = MethodBody::from_blocks(blocks).unwrap();
        let s = body.to_string();
        assert!(s.contains("b0:"));
        assert!(s.contains("nop"));
        assert!(s.contains("return-void"));
    }
}
