//! The `SAPK` binary container format.
//!
//! Real SAINTDroid consumes APK files; our substitute is a compact
//! binary container for [`Apk`] values so that corpora can be written to
//! disk, shipped between processes, and parsed back — the parse step
//! plays the role apktool + the dex front-end play in the paper's
//! pipeline (and is timed as part of analysis, like theirs).
//!
//! Layout (all multi-byte integers are LEB128 varints unless noted):
//!
//! ```text
//! magic    b"SAPK"
//! version  u16 little-endian
//! manifest, primary dex, secondary dex list, has_source flag
//! ```
//!
//! # Examples
//!
//! ```
//! use saint_ir::{ApkBuilder, ApiLevel, codec};
//!
//! let apk = ApkBuilder::new("com.example", ApiLevel::new(21), ApiLevel::new(28)).build();
//! let bytes = codec::encode_apk(&apk);
//! let back = codec::decode_apk(&bytes)?;
//! assert_eq!(apk, back);
//! # Ok::<(), saint_ir::CodecError>(())
//! ```

use bytes::{BufMut, BytesMut};

use crate::apk::{Apk, DexFile};
use crate::body::{BasicBlock, BlockId, MethodBody, Terminator};
use crate::class::{ClassDef, ClassOrigin, FieldDef, MethodDef, MethodFlags};
use crate::error::CodecError;
use crate::instr::{BinOp, Cond, Instr, InvokeKind, Operand, Reg};
use crate::level::ApiLevel;
use crate::manifest::{Component, ComponentKind, Manifest};
use crate::name::{ClassName, FieldRef, MethodRef, Permission};

const MAGIC: [u8; 4] = *b"SAPK";
const VERSION: u16 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_i64(buf: &mut BytesMut, v: i64) {
    put_varint(buf, zigzag(v));
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        None => buf.put_u8(0),
    }
}

fn put_method_ref(buf: &mut BytesMut, m: &MethodRef) {
    put_str(buf, m.class.as_str());
    put_str(buf, &m.name);
    put_str(buf, &m.descriptor);
}

fn put_field_ref(buf: &mut BytesMut, f: &FieldRef) {
    put_str(buf, f.class.as_str());
    put_str(buf, &f.name);
}

fn put_reg(buf: &mut BytesMut, r: Reg) {
    put_varint(buf, u64::from(r.0));
}

fn put_opt_reg(buf: &mut BytesMut, r: Option<Reg>) {
    match r {
        Some(r) => {
            buf.put_u8(1);
            put_reg(buf, r);
        }
        None => buf.put_u8(0),
    }
}

fn put_operand(buf: &mut BytesMut, o: Operand) {
    match o {
        Operand::Reg(r) => {
            buf.put_u8(0);
            put_reg(buf, r);
        }
        Operand::Imm(v) => {
            buf.put_u8(1);
            put_i64(buf, v);
        }
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::And => 4,
        BinOp::Or => 5,
        BinOp::Xor => 6,
    }
}

fn cond_tag(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn invoke_tag(k: InvokeKind) -> u8 {
    match k {
        InvokeKind::Virtual => 0,
        InvokeKind::Static => 1,
        InvokeKind::Direct => 2,
        InvokeKind::Interface => 3,
        InvokeKind::Super => 4,
    }
}

fn origin_tag(o: ClassOrigin) -> u8 {
    match o {
        ClassOrigin::App => 0,
        ClassOrigin::Library => 1,
        ClassOrigin::Framework => 2,
        ClassOrigin::DynamicPayload => 3,
    }
}

fn component_tag(k: ComponentKind) -> u8 {
    match k {
        ComponentKind::Activity => 0,
        ComponentKind::Service => 1,
        ComponentKind::Receiver => 2,
        ComponentKind::Provider => 3,
    }
}

fn put_instr(buf: &mut BytesMut, i: &Instr) {
    match i {
        Instr::Const { dst, value } => {
            buf.put_u8(0);
            put_reg(buf, *dst);
            put_i64(buf, *value);
        }
        Instr::ConstString { dst, value } => {
            buf.put_u8(1);
            put_reg(buf, *dst);
            put_str(buf, value);
        }
        Instr::Move { dst, src } => {
            buf.put_u8(2);
            put_reg(buf, *dst);
            put_reg(buf, *src);
        }
        Instr::BinOp { op, dst, lhs, rhs } => {
            buf.put_u8(3);
            buf.put_u8(binop_tag(*op));
            put_reg(buf, *dst);
            put_reg(buf, *lhs);
            put_operand(buf, *rhs);
        }
        Instr::NewInstance { dst, class } => {
            buf.put_u8(4);
            put_reg(buf, *dst);
            put_str(buf, class.as_str());
        }
        Instr::Invoke {
            kind,
            method,
            args,
            dst,
        } => {
            buf.put_u8(5);
            buf.put_u8(invoke_tag(*kind));
            put_method_ref(buf, method);
            put_varint(buf, args.len() as u64);
            for a in args {
                put_reg(buf, *a);
            }
            put_opt_reg(buf, *dst);
        }
        Instr::FieldGet { dst, field, object } => {
            buf.put_u8(6);
            put_reg(buf, *dst);
            put_field_ref(buf, field);
            put_opt_reg(buf, *object);
        }
        Instr::FieldPut { src, field, object } => {
            buf.put_u8(7);
            put_reg(buf, *src);
            put_field_ref(buf, field);
            put_opt_reg(buf, *object);
        }
        Instr::Nop => buf.put_u8(8),
    }
}

fn put_terminator(buf: &mut BytesMut, t: &Terminator) {
    match t {
        Terminator::Goto(b) => {
            buf.put_u8(0);
            put_varint(buf, u64::from(b.0));
        }
        Terminator::If {
            cond,
            lhs,
            rhs,
            then_blk,
            else_blk,
        } => {
            buf.put_u8(1);
            buf.put_u8(cond_tag(*cond));
            put_reg(buf, *lhs);
            put_operand(buf, *rhs);
            put_varint(buf, u64::from(then_blk.0));
            put_varint(buf, u64::from(else_blk.0));
        }
        Terminator::Switch {
            scrutinee,
            targets,
            default,
        } => {
            buf.put_u8(2);
            put_reg(buf, *scrutinee);
            put_varint(buf, targets.len() as u64);
            for (v, b) in targets {
                put_i64(buf, *v);
                put_varint(buf, u64::from(b.0));
            }
            put_varint(buf, u64::from(default.0));
        }
        Terminator::Return(r) => {
            buf.put_u8(3);
            put_opt_reg(buf, *r);
        }
        Terminator::Throw(r) => {
            buf.put_u8(4);
            put_reg(buf, *r);
        }
    }
}

fn put_body(buf: &mut BytesMut, b: &MethodBody) {
    put_varint(buf, b.len() as u64);
    for (_, blk) in b.iter() {
        put_varint(buf, blk.instrs.len() as u64);
        for i in &blk.instrs {
            put_instr(buf, i);
        }
        put_terminator(buf, &blk.terminator);
    }
}

fn put_method(buf: &mut BytesMut, m: &MethodDef) {
    put_str(buf, &m.name);
    put_str(buf, &m.descriptor);
    let flags = u8::from(m.flags.is_static)
        | u8::from(m.flags.is_abstract) << 1
        | u8::from(m.flags.is_native) << 2
        | u8::from(m.flags.is_synthetic) << 3;
    buf.put_u8(flags);
    match &m.body {
        Some(b) => {
            buf.put_u8(1);
            put_body(buf, b);
        }
        None => buf.put_u8(0),
    }
}

fn put_class(buf: &mut BytesMut, c: &ClassDef) {
    put_str(buf, c.name.as_str());
    put_opt_str(buf, c.super_class.as_ref().map(ClassName::as_str));
    put_varint(buf, c.interfaces.len() as u64);
    for i in &c.interfaces {
        put_str(buf, i.as_str());
    }
    buf.put_u8(origin_tag(c.origin));
    put_varint(buf, c.fields.len() as u64);
    for f in &c.fields {
        put_str(buf, &f.name);
        buf.put_u8(u8::from(f.is_static));
    }
    put_varint(buf, c.methods.len() as u64);
    for m in &c.methods {
        put_method(buf, m);
    }
}

fn put_dex(buf: &mut BytesMut, d: &DexFile) {
    put_str(buf, &d.name);
    put_varint(buf, d.len() as u64);
    for c in d.classes() {
        put_class(buf, c);
    }
}

fn put_manifest(buf: &mut BytesMut, m: &Manifest) {
    put_str(buf, &m.package);
    buf.put_u8(m.min_sdk.get());
    buf.put_u8(m.target_sdk.get());
    match m.max_sdk {
        Some(l) => {
            buf.put_u8(1);
            buf.put_u8(l.get());
        }
        None => buf.put_u8(0),
    }
    put_varint(buf, m.uses_permissions.len() as u64);
    for p in &m.uses_permissions {
        put_str(buf, p.as_str());
    }
    put_varint(buf, m.components.len() as u64);
    for c in &m.components {
        buf.put_u8(component_tag(c.kind));
        put_str(buf, c.class.as_str());
    }
}

/// Encodes an APK into the `SAPK` binary form.
#[must_use]
pub fn encode_apk(apk: &Apk) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    put_manifest(&mut buf, &apk.manifest);
    put_dex(&mut buf, &apk.primary);
    put_varint(&mut buf, apk.secondary.len() as u64);
    for d in &apk.secondary {
        put_dex(&mut buf, d);
    }
    buf.put_u8(u8::from(apk.has_source));
    buf.to_vec()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    input: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(input: &'a [u8]) -> Self {
        Reader { input, offset: 0 }
    }

    fn eof(&self, context: &'static str) -> CodecError {
        CodecError::UnexpectedEof {
            offset: self.offset,
            context,
        }
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        let b = *self
            .input
            .get(self.offset)
            .ok_or_else(|| self.eof(context))?;
        self.offset += 1;
        Ok(b)
    }

    fn u16_le(&mut self, context: &'static str) -> Result<u16, CodecError> {
        let lo = self.u8(context)?;
        let hi = self.u8(context)?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self
            .offset
            .checked_add(n)
            .ok_or_else(|| self.eof(context))?;
        let s = self
            .input
            .get(self.offset..end)
            .ok_or_else(|| self.eof(context))?;
        self.offset = end;
        Ok(s)
    }

    fn varint(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let start = self.offset;
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(context)?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(CodecError::VarintOverflow { offset: start });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn i64(&mut self, context: &'static str) -> Result<i64, CodecError> {
        Ok(unzigzag(self.varint(context)?))
    }

    fn len(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let v = self.varint(context)?;
        usize::try_from(v).map_err(|_| CodecError::VarintOverflow {
            offset: self.offset,
        })
    }

    fn str(&mut self, context: &'static str) -> Result<String, CodecError> {
        let n = self.len(context)?;
        let start = self.offset;
        let raw = self.bytes(n, context)?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError::InvalidUtf8 { offset: start })
    }

    fn opt_str(&mut self, context: &'static str) -> Result<Option<String>, CodecError> {
        match self.u8(context)? {
            0 => Ok(None),
            _ => Ok(Some(self.str(context)?)),
        }
    }

    fn reg(&mut self, context: &'static str) -> Result<Reg, CodecError> {
        let v = self.varint(context)?;
        u16::try_from(v)
            .map(Reg)
            .map_err(|_| CodecError::VarintOverflow {
                offset: self.offset,
            })
    }

    fn opt_reg(&mut self, context: &'static str) -> Result<Option<Reg>, CodecError> {
        match self.u8(context)? {
            0 => Ok(None),
            _ => Ok(Some(self.reg(context)?)),
        }
    }

    fn operand(&mut self, context: &'static str) -> Result<Operand, CodecError> {
        let offset = self.offset;
        match self.u8(context)? {
            0 => Ok(Operand::Reg(self.reg(context)?)),
            1 => Ok(Operand::Imm(self.i64(context)?)),
            tag => Err(CodecError::InvalidTag {
                offset,
                tag,
                context,
            }),
        }
    }

    fn block_id(&mut self, context: &'static str) -> Result<BlockId, CodecError> {
        let v = self.varint(context)?;
        u32::try_from(v)
            .map(BlockId)
            .map_err(|_| CodecError::VarintOverflow {
                offset: self.offset,
            })
    }

    fn method_ref(&mut self) -> Result<MethodRef, CodecError> {
        let class = self.str("method ref class")?;
        let name = self.str("method ref name")?;
        let descriptor = self.str("method ref descriptor")?;
        Ok(MethodRef::new(class, name, descriptor))
    }

    fn field_ref(&mut self) -> Result<FieldRef, CodecError> {
        let class = self.str("field ref class")?;
        let name = self.str("field ref name")?;
        Ok(FieldRef::new(class, name))
    }

    fn binop(&mut self) -> Result<BinOp, CodecError> {
        let offset = self.offset;
        Ok(match self.u8("binop tag")? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Div,
            4 => BinOp::And,
            5 => BinOp::Or,
            6 => BinOp::Xor,
            tag => {
                return Err(CodecError::InvalidTag {
                    offset,
                    tag,
                    context: "binop",
                })
            }
        })
    }

    fn cond(&mut self) -> Result<Cond, CodecError> {
        let offset = self.offset;
        Ok(match self.u8("cond tag")? {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            tag => {
                return Err(CodecError::InvalidTag {
                    offset,
                    tag,
                    context: "cond",
                })
            }
        })
    }

    fn invoke_kind(&mut self) -> Result<InvokeKind, CodecError> {
        let offset = self.offset;
        Ok(match self.u8("invoke kind tag")? {
            0 => InvokeKind::Virtual,
            1 => InvokeKind::Static,
            2 => InvokeKind::Direct,
            3 => InvokeKind::Interface,
            4 => InvokeKind::Super,
            tag => {
                return Err(CodecError::InvalidTag {
                    offset,
                    tag,
                    context: "invoke kind",
                })
            }
        })
    }

    fn instr(&mut self) -> Result<Instr, CodecError> {
        let offset = self.offset;
        Ok(match self.u8("instr tag")? {
            0 => Instr::Const {
                dst: self.reg("const dst")?,
                value: self.i64("const value")?,
            },
            1 => Instr::ConstString {
                dst: self.reg("const-string dst")?,
                value: self.str("const-string value")?,
            },
            2 => Instr::Move {
                dst: self.reg("move dst")?,
                src: self.reg("move src")?,
            },
            3 => {
                let op = self.binop()?;
                Instr::BinOp {
                    op,
                    dst: self.reg("binop dst")?,
                    lhs: self.reg("binop lhs")?,
                    rhs: self.operand("binop rhs")?,
                }
            }
            4 => Instr::NewInstance {
                dst: self.reg("new-instance dst")?,
                class: ClassName::new(self.str("new-instance class")?),
            },
            5 => {
                let kind = self.invoke_kind()?;
                let method = self.method_ref()?;
                let n = self.len("invoke arg count")?;
                let mut args = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    args.push(self.reg("invoke arg")?);
                }
                let dst = self.opt_reg("invoke dst")?;
                Instr::Invoke {
                    kind,
                    method,
                    args,
                    dst,
                }
            }
            6 => Instr::FieldGet {
                dst: self.reg("field-get dst")?,
                field: self.field_ref()?,
                object: self.opt_reg("field-get object")?,
            },
            7 => Instr::FieldPut {
                src: self.reg("field-put src")?,
                field: self.field_ref()?,
                object: self.opt_reg("field-put object")?,
            },
            8 => Instr::Nop,
            tag => {
                return Err(CodecError::InvalidTag {
                    offset,
                    tag,
                    context: "instr",
                })
            }
        })
    }

    fn terminator(&mut self) -> Result<Terminator, CodecError> {
        let offset = self.offset;
        Ok(match self.u8("terminator tag")? {
            0 => Terminator::Goto(self.block_id("goto target")?),
            1 => {
                let cond = self.cond()?;
                Terminator::If {
                    cond,
                    lhs: self.reg("if lhs")?,
                    rhs: self.operand("if rhs")?,
                    then_blk: self.block_id("if then")?,
                    else_blk: self.block_id("if else")?,
                }
            }
            2 => {
                let scrutinee = self.reg("switch scrutinee")?;
                let n = self.len("switch target count")?;
                let mut targets = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let v = self.i64("switch case value")?;
                    let b = self.block_id("switch case target")?;
                    targets.push((v, b));
                }
                Terminator::Switch {
                    scrutinee,
                    targets,
                    default: self.block_id("switch default")?,
                }
            }
            3 => Terminator::Return(self.opt_reg("return value")?),
            4 => Terminator::Throw(self.reg("throw value")?),
            tag => {
                return Err(CodecError::InvalidTag {
                    offset,
                    tag,
                    context: "terminator",
                })
            }
        })
    }

    fn body(&mut self) -> Result<MethodBody, CodecError> {
        let n = self.len("block count")?;
        let mut blocks = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let ni = self.len("instr count")?;
            let mut instrs = Vec::with_capacity(ni.min(4096));
            for _ in 0..ni {
                instrs.push(self.instr()?);
            }
            let terminator = self.terminator()?;
            blocks.push(BasicBlock { instrs, terminator });
        }
        Ok(MethodBody::from_blocks(blocks)?)
    }

    fn method(&mut self) -> Result<MethodDef, CodecError> {
        let name = self.str("method name")?;
        let descriptor = self.str("method descriptor")?;
        let flags = self.u8("method flags")?;
        let flags = MethodFlags {
            is_static: flags & 1 != 0,
            is_abstract: flags & 2 != 0,
            is_native: flags & 4 != 0,
            is_synthetic: flags & 8 != 0,
        };
        let body = match self.u8("method body flag")? {
            0 => None,
            _ => Some(self.body()?),
        };
        Ok(MethodDef {
            name,
            descriptor,
            flags,
            body,
        })
    }

    fn class(&mut self) -> Result<ClassDef, CodecError> {
        let name = ClassName::new(self.str("class name")?);
        let super_class = self.opt_str("super class")?.map(ClassName::new);
        let ni = self.len("interface count")?;
        let mut interfaces = Vec::with_capacity(ni.min(64));
        for _ in 0..ni {
            interfaces.push(ClassName::new(self.str("interface name")?));
        }
        let offset = self.offset;
        let origin = match self.u8("class origin")? {
            0 => ClassOrigin::App,
            1 => ClassOrigin::Library,
            2 => ClassOrigin::Framework,
            3 => ClassOrigin::DynamicPayload,
            tag => {
                return Err(CodecError::InvalidTag {
                    offset,
                    tag,
                    context: "class origin",
                })
            }
        };
        let nf = self.len("field count")?;
        let mut fields = Vec::with_capacity(nf.min(1024));
        for _ in 0..nf {
            let name = self.str("field name")?;
            let is_static = self.u8("field static flag")? != 0;
            fields.push(FieldDef { name, is_static });
        }
        let nm = self.len("method count")?;
        let mut class = ClassDef {
            name,
            super_class,
            interfaces,
            origin,
            fields,
            methods: Vec::with_capacity(nm.min(4096)),
        };
        for _ in 0..nm {
            let m = self.method()?;
            class.add_method(m)?;
        }
        Ok(class)
    }

    fn dex(&mut self) -> Result<DexFile, CodecError> {
        let name = self.str("dex name")?;
        let n = self.len("class count")?;
        let mut dex = DexFile::new(name);
        for _ in 0..n {
            dex.add_class(self.class()?)?;
        }
        Ok(dex)
    }

    fn manifest(&mut self) -> Result<Manifest, CodecError> {
        let package = self.str("package")?;
        let min = ApiLevel::new(self.u8("minSdkVersion")?);
        let target = ApiLevel::new(self.u8("targetSdkVersion")?);
        let max = match self.u8("maxSdkVersion flag")? {
            0 => None,
            _ => Some(ApiLevel::new(self.u8("maxSdkVersion")?)),
        };
        let mut manifest = Manifest::new(package, min, target, max)?;
        let np = self.len("permission count")?;
        for _ in 0..np {
            manifest
                .uses_permissions
                .push(Permission::new(self.str("permission")?));
        }
        let nc = self.len("component count")?;
        for _ in 0..nc {
            let offset = self.offset;
            let kind = match self.u8("component kind")? {
                0 => ComponentKind::Activity,
                1 => ComponentKind::Service,
                2 => ComponentKind::Receiver,
                3 => ComponentKind::Provider,
                tag => {
                    return Err(CodecError::InvalidTag {
                        offset,
                        tag,
                        context: "component kind",
                    })
                }
            };
            let class = ClassName::new(self.str("component class")?);
            manifest.components.push(Component { kind, class });
        }
        Ok(manifest)
    }
}

/// Decodes an APK from its `SAPK` binary form.
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first malformed byte, or a
/// wrapped [`crate::IrError`] when the bytes parse but violate IR
/// invariants (duplicate classes, bad branch targets, …).
pub fn decode_apk(input: &[u8]) -> Result<Apk, CodecError> {
    saint_faults::trip(saint_faults::FaultPoint::Decode);
    let mut r = Reader::new(input);
    let magic = r.bytes(4, "magic")?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(CodecError::BadMagic { found });
    }
    let version = r.u16_le("version")?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            expected: VERSION,
        });
    }
    let manifest = r.manifest()?;
    let primary = r.dex()?;
    let ns = r.len("secondary dex count")?;
    let mut secondary = Vec::with_capacity(ns.min(64));
    for _ in 0..ns {
        secondary.push(r.dex()?);
    }
    let has_source = r.u8("has_source")? != 0;
    Ok(Apk {
        manifest,
        primary,
        secondary,
        has_source,
    })
}

/// Encodes a single class definition in the `SAPK` class wire form.
///
/// This is the per-class slice of the container format — the frozen
/// artifact layer stores one of these per `(api level, class)` entry so
/// framework class bodies can be decoded individually from an mmapped
/// image without parsing a whole container.
#[must_use]
pub fn encode_class(class: &ClassDef) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    put_class(&mut buf, class);
    buf.to_vec()
}

/// Decodes a single class definition from its `SAPK` class wire form.
///
/// The input must contain exactly one encoded class — trailing bytes
/// are rejected, so a sliced read from an offset table either yields
/// the intended class or a typed error.
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first malformed byte, or a
/// wrapped [`crate::IrError`] when the bytes parse but violate IR
/// invariants (duplicate methods, bad branch targets, …).
pub fn decode_class(input: &[u8]) -> Result<ClassDef, CodecError> {
    let mut r = Reader::new(input);
    let class = r.class()?;
    if r.offset != input.len() {
        return Err(CodecError::InvalidTag {
            offset: r.offset,
            tag: input.get(r.offset).copied().unwrap_or(0),
            context: "trailing bytes after class",
        });
    }
    Ok(class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ApkBuilder, BodyBuilder, ClassBuilder};

    fn sample_apk() -> Apk {
        let helper = ClassBuilder::new("com.example.Helper", ClassOrigin::App)
            .static_method("deep", "(I)I", |b| {
                let r = b.alloc_reg();
                b.const_int(r, 42);
                b.ret(r);
            })
            .unwrap()
            .build();
        let main = ClassBuilder::new("com.example.MainActivity", ClassOrigin::App)
            .extends("android.app.Activity")
            .field("state", false)
            .method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                |b: &mut BodyBuilder| {
                    let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
                    b.switch_to(then_blk);
                    b.invoke_virtual(
                        MethodRef::new("android.content.Context", "getColorStateList", "(I)V"),
                        &[],
                        None,
                    );
                    b.goto(join);
                    b.switch_to(join);
                    let s = b.alloc_reg();
                    b.const_str(s, "assets/payload.dex");
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        let mut payload = DexFile::new("assets/payload.dex");
        payload
            .add_class(
                ClassBuilder::new("com.example.Plugin", ClassOrigin::DynamicPayload)
                    .method("run", "()V", |b| {
                        b.ret_void();
                    })
                    .unwrap()
                    .build(),
            )
            .unwrap();
        ApkBuilder::new("com.example", ApiLevel::new(19), ApiLevel::new(28))
            .permission(Permission::android("CAMERA"))
            .activity("com.example.MainActivity")
            .class(helper)
            .unwrap()
            .class(main)
            .unwrap()
            .secondary_dex(payload)
            .without_source()
            .build()
    }

    #[test]
    fn roundtrip_rich_apk() {
        let apk = sample_apk();
        let bytes = encode_apk(&apk);
        let back = decode_apk(&bytes).unwrap();
        assert_eq!(apk, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_apk(b"NOPE....").unwrap_err();
        assert!(matches!(err, CodecError::BadMagic { .. }));
    }

    /// Byte offset of the manifest's `minSdkVersion` in an encoded
    /// container: magic (4) + version (2) + package varint length (1,
    /// for short names) + package bytes.
    fn min_sdk_offset(package: &str) -> usize {
        assert!(package.len() < 128, "single-byte varint assumption");
        4 + 2 + 1 + package.len()
    }

    #[test]
    fn decode_rejects_target_below_min() {
        // The builder can't produce this triple, but a hand-crafted or
        // corrupted container can: decode must fail typed, never hand
        // detectors a manifest no device satisfies.
        let mut bytes = encode_apk(&sample_apk());
        let target_off = min_sdk_offset("com.example") + 1;
        assert_eq!(bytes[target_off], 28);
        bytes[target_off] = 7;
        let err = decode_apk(&bytes).unwrap_err();
        assert_eq!(
            err,
            CodecError::Invalid(crate::IrError::InvalidTargetSdk { min: 19, target: 7 })
        );
    }

    #[test]
    fn decode_rejects_max_below_min() {
        let apk = ApkBuilder::new("p.m", ApiLevel::new(19), ApiLevel::new(26))
            .max_sdk(ApiLevel::new(28))
            .unwrap()
            .build();
        let mut bytes = encode_apk(&apk);
        // min, target, max-flag, max value.
        let max_off = min_sdk_offset("p.m") + 3;
        assert_eq!(bytes[max_off], 28);
        bytes[max_off] = 3;
        let err = decode_apk(&bytes).unwrap_err();
        assert_eq!(
            err,
            CodecError::Invalid(crate::IrError::InvalidSdkRange { min: 19, max: 3 })
        );
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode_apk(&sample_apk());
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        assert!(matches!(
            decode_apk(&bytes),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn truncation_yields_eof_not_panic() {
        let bytes = encode_apk(&sample_apk());
        // Truncate at every prefix; all failures must be clean errors.
        for cut in 0..bytes.len() {
            let r = decode_apk(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let bytes = encode_apk(&sample_apk());
        // Flipping bytes may legally still decode (e.g. flag bits), but
        // must never panic.
        for pos in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x5a;
            let _ = decode_apk(&corrupted);
        }
    }

    #[test]
    fn roundtrip_single_class() {
        let apk = sample_apk();
        for class in apk.primary.classes() {
            let bytes = encode_class(class);
            let back = decode_class(&bytes).unwrap();
            assert_eq!(class, &back);
        }
    }

    #[test]
    fn decode_class_rejects_trailing_bytes() {
        let apk = sample_apk();
        let class = apk.primary.classes().next().unwrap();
        let mut bytes = encode_class(class);
        bytes.push(0);
        assert!(decode_class(&bytes).is_err());
    }

    #[test]
    fn decode_class_truncation_yields_error_not_panic() {
        let apk = sample_apk();
        let class = apk.primary.classes().next().unwrap();
        let bytes = encode_class(class);
        for cut in 0..bytes.len() {
            assert!(decode_class(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn varint_overflow_detected() {
        let mut r = Reader::new(&[0xff; 11]);
        assert!(matches!(
            r.varint("test"),
            Err(CodecError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
