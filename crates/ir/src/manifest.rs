//! The Android manifest model.
//!
//! SAINTDroid extracts three attributes from the manifest (paper §II-A):
//! `minSdkVersion`, `targetSdkVersion` and `maxSdkVersion`, plus the
//! requested permissions and the component list used as analysis entry
//! points.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IrError;
use crate::level::{ApiLevel, LevelRange};
use crate::name::{ClassName, Permission};

/// The kind of an app component declared in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// `<activity>`
    Activity,
    /// `<service>`
    Service,
    /// `<receiver>`
    Receiver,
    /// `<provider>`
    Provider,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Activity => "activity",
            ComponentKind::Service => "service",
            ComponentKind::Receiver => "receiver",
            ComponentKind::Provider => "provider",
        };
        f.write_str(s)
    }
}

/// A declared component: its kind and implementing class.
///
/// Components are the entry points of the ICFG; inter-component
/// communication (intents) is modeled as separate invocations starting
/// from each handler (paper §III-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Component kind.
    pub kind: ComponentKind,
    /// The class implementing the component.
    pub class: ClassName,
}

/// A parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Application package id, e.g. `com.example.app`.
    pub package: String,
    /// `minSdkVersion`.
    pub min_sdk: ApiLevel,
    /// `targetSdkVersion`.
    pub target_sdk: ApiLevel,
    /// `maxSdkVersion`, rarely declared; defaults to the highest level
    /// the revision model knows about.
    pub max_sdk: Option<ApiLevel>,
    /// `<uses-permission>` entries.
    pub uses_permissions: Vec<Permission>,
    /// Declared components.
    pub components: Vec<Component>,
}

impl Manifest {
    /// Creates a manifest with the given package and SDK attributes and
    /// no permissions/components.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidSdkRange`] if a declared
    /// `maxSdkVersion` is below `minSdkVersion`, and
    /// [`IrError::InvalidTargetSdk`] if `targetSdkVersion` is below
    /// `minSdkVersion`. Running every construction path (builders *and*
    /// the binary decode path) through here is what keeps impossible
    /// triples out of the detectors: codec decode surfaces these as
    /// typed [`CodecError::Invalid`](crate::CodecError::Invalid)
    /// failures instead of propagating an unsatisfiable manifest.
    pub fn new(
        package: impl Into<String>,
        min_sdk: ApiLevel,
        target_sdk: ApiLevel,
        max_sdk: Option<ApiLevel>,
    ) -> Result<Self, IrError> {
        if let Some(max) = max_sdk {
            if max < min_sdk {
                return Err(IrError::InvalidSdkRange {
                    min: min_sdk.get(),
                    max: max.get(),
                });
            }
        }
        if target_sdk < min_sdk {
            return Err(IrError::InvalidTargetSdk {
                min: min_sdk.get(),
                target: target_sdk.get(),
            });
        }
        Ok(Manifest {
            package: package.into(),
            min_sdk,
            target_sdk,
            max_sdk,
            uses_permissions: Vec::new(),
            components: Vec::new(),
        })
    }

    /// The span of device API levels the app declares support for:
    /// `minSdkVersion ..= maxSdkVersion`, with an undeclared max
    /// defaulting to the top of the modeled range (clamped so apps with
    /// `minSdkVersion 1` still yield a valid modeled span).
    #[must_use]
    pub fn supported_levels(&self) -> LevelRange {
        let min = self.min_sdk.clamp_modeled();
        let max = self
            .max_sdk
            .map_or(ApiLevel::MAX, ApiLevel::clamp_modeled)
            .max(min);
        LevelRange::new(min, max)
    }

    /// Whether the app targets the runtime-permission regime (API ≥ 23,
    /// paper §II-C).
    #[must_use]
    pub fn targets_runtime_permissions(&self) -> bool {
        self.target_sdk >= ApiLevel::RUNTIME_PERMISSIONS
    }

    /// Whether the app declares the given permission.
    #[must_use]
    pub fn requests_permission(&self, p: &Permission) -> bool {
        self.uses_permissions.contains(p)
    }

    /// Component classes, in declaration order.
    pub fn component_classes(&self) -> impl Iterator<Item = &ClassName> {
        self.components.iter().map(|c| &c.class)
    }
}

impl fmt::Display for Manifest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "package {} (min {}, target {}, max {})",
            self.package,
            self.min_sdk,
            self.target_sdk,
            self.max_sdk
                .map_or_else(|| "-".to_string(), |m| m.to_string())
        )?;
        for p in &self.uses_permissions {
            writeln!(f, "  uses-permission {p}")?;
        }
        for c in &self.components {
            writeln!(f, "  {} {}", c.kind, c.class)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn man(min: u8, target: u8, max: Option<u8>) -> Manifest {
        Manifest::new(
            "com.example.app",
            ApiLevel::new(min),
            ApiLevel::new(target),
            max.map(ApiLevel::new),
        )
        .unwrap()
    }

    #[test]
    fn target_below_min_rejected() {
        let err = Manifest::new("p", ApiLevel::new(23), ApiLevel::new(19), None).unwrap_err();
        assert!(matches!(
            err,
            IrError::InvalidTargetSdk {
                min: 23,
                target: 19
            }
        ));
    }

    #[test]
    fn inverted_sdk_range_rejected() {
        let err = Manifest::new(
            "p",
            ApiLevel::new(23),
            ApiLevel::new(23),
            Some(ApiLevel::new(21)),
        )
        .unwrap_err();
        assert!(matches!(err, IrError::InvalidSdkRange { min: 23, max: 21 }));
    }

    #[test]
    fn supported_levels_defaults_max() {
        let m = man(21, 28, None);
        assert_eq!(
            m.supported_levels(),
            LevelRange::new(ApiLevel::new(21), ApiLevel::new(29))
        );
    }

    #[test]
    fn supported_levels_respects_declared_max() {
        let m = man(8, 22, Some(22));
        assert_eq!(
            m.supported_levels(),
            LevelRange::new(ApiLevel::new(8), ApiLevel::new(22))
        );
    }

    #[test]
    fn supported_levels_clamps_ancient_min() {
        let m = man(1, 10, None);
        assert_eq!(m.supported_levels().min(), ApiLevel::new(2));
    }

    #[test]
    fn runtime_permission_regime_boundary() {
        assert!(!man(8, 22, None).targets_runtime_permissions());
        assert!(man(8, 23, None).targets_runtime_permissions());
        assert!(man(8, 28, None).targets_runtime_permissions());
    }

    #[test]
    fn permission_membership() {
        let mut m = man(21, 28, None);
        let p = Permission::android("CAMERA");
        assert!(!m.requests_permission(&p));
        m.uses_permissions.push(p.clone());
        assert!(m.requests_permission(&p));
    }

    #[test]
    fn display_lists_components() {
        let mut m = man(21, 28, None);
        m.components.push(Component {
            kind: ComponentKind::Activity,
            class: ClassName::new("com.example.app.MainActivity"),
        });
        let s = m.to_string();
        assert!(s.contains("activity com.example.app.MainActivity"));
    }
}
