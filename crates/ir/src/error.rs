//! Error types for IR construction and the binary codec.

use std::fmt;

use crate::body::BlockId;

/// Errors raised while constructing or validating IR structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A method body must contain at least one basic block.
    EmptyBody,
    /// A branch target points outside the block list.
    BadBranchTarget {
        /// Block holding the offending terminator.
        from: BlockId,
        /// Out-of-range target.
        to: BlockId,
        /// Number of blocks in the body.
        len: usize,
    },
    /// A class defines two methods with the same name and descriptor.
    DuplicateMethod {
        /// Rendered `Class.name(descriptor)` of the duplicate.
        method: String,
    },
    /// A dex file defines the same class twice.
    DuplicateClass {
        /// The duplicated class name.
        class: String,
    },
    /// The manifest declares an inverted SDK range.
    InvalidSdkRange {
        /// Declared `minSdkVersion`.
        min: u8,
        /// Declared `maxSdkVersion`.
        max: u8,
    },
    /// The manifest declares `targetSdkVersion` below `minSdkVersion` —
    /// an impossible triple no device satisfies: detectors gating on
    /// the target (e.g. the runtime-permission regime) would reason
    /// about levels the app cannot even install on.
    InvalidTargetSdk {
        /// Declared `minSdkVersion`.
        min: u8,
        /// Declared `targetSdkVersion`.
        target: u8,
    },
    /// A builder was finalized without a terminator on some block.
    MissingTerminator {
        /// Block missing its terminator.
        block: BlockId,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyBody => f.write_str("method body has no basic blocks"),
            IrError::BadBranchTarget { from, to, len } => {
                write!(
                    f,
                    "branch from {from} targets {to} but body has {len} blocks"
                )
            }
            IrError::DuplicateMethod { method } => {
                write!(f, "duplicate method definition: {method}")
            }
            IrError::DuplicateClass { class } => {
                write!(f, "duplicate class definition: {class}")
            }
            IrError::InvalidSdkRange { min, max } => {
                write!(
                    f,
                    "manifest declares minSdkVersion {min} > maxSdkVersion {max}"
                )
            }
            IrError::InvalidTargetSdk { min, target } => {
                write!(
                    f,
                    "manifest declares targetSdkVersion {target} < minSdkVersion {min}"
                )
            }
            IrError::MissingTerminator { block } => {
                write!(f, "block {block} was never terminated")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// Errors raised while decoding the binary container format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input did not start with the `SAPK` magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// Unsupported container version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// Input ended in the middle of a field.
    UnexpectedEof {
        /// Byte offset where more input was needed.
        offset: usize,
        /// What was being decoded.
        context: &'static str,
    },
    /// A varint ran longer than the 64-bit maximum.
    VarintOverflow {
        /// Byte offset of the varint.
        offset: usize,
    },
    /// A decoded string was not valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the string payload.
        offset: usize,
    },
    /// A decoded tag byte did not correspond to any variant.
    InvalidTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The unknown tag value.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// Structural validation of the decoded value failed.
    Invalid(IrError),
}

impl CodecError {
    /// Byte offset of the offending input, when the failure is tied to
    /// one: decode errors carry the exact position, the magic/version
    /// checks sit at fixed header offsets, and structural validation
    /// ([`CodecError::Invalid`]) happens after decoding, so it has no
    /// single byte to point at. Surfaced to scan-service clients so a
    /// corrupt SAPK can be triaged without re-running the decoder.
    #[must_use]
    pub fn offset(&self) -> Option<usize> {
        match self {
            CodecError::BadMagic { .. } => Some(0),
            CodecError::UnsupportedVersion { .. } => Some(4),
            CodecError::UnexpectedEof { offset, .. }
            | CodecError::VarintOverflow { offset }
            | CodecError::InvalidUtf8 { offset }
            | CodecError::InvalidTag { offset, .. } => Some(*offset),
            CodecError::Invalid(_) => None,
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(f, "bad magic bytes {found:?}, expected \"SAPK\"")
            }
            CodecError::UnsupportedVersion { found, expected } => {
                write!(
                    f,
                    "unsupported container version {found}, expected {expected}"
                )
            }
            CodecError::UnexpectedEof { offset, context } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset} while decoding {context}"
                )
            }
            CodecError::VarintOverflow { offset } => {
                write!(f, "varint at byte {offset} overflows 64 bits")
            }
            CodecError::InvalidUtf8 { offset } => {
                write!(f, "invalid utf-8 in string at byte {offset}")
            }
            CodecError::InvalidTag {
                offset,
                tag,
                context,
            } => {
                write!(
                    f,
                    "invalid tag {tag} at byte {offset} while decoding {context}"
                )
            }
            CodecError::Invalid(e) => write!(f, "decoded value failed validation: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for CodecError {
    fn from(e: IrError) -> Self {
        CodecError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::BadBranchTarget {
            from: BlockId(1),
            to: BlockId(9),
            len: 3,
        };
        let s = e.to_string();
        assert!(s.contains("b1") && s.contains("b9") && s.contains('3'));

        let c = CodecError::UnexpectedEof {
            offset: 42,
            context: "class name",
        };
        assert!(c.to_string().contains("42"));
        assert!(c.to_string().contains("class name"));
    }

    #[test]
    fn offsets_point_at_the_offending_byte() {
        assert_eq!(CodecError::BadMagic { found: *b"nope" }.offset(), Some(0));
        assert_eq!(
            CodecError::UnsupportedVersion {
                found: 9,
                expected: 1
            }
            .offset(),
            Some(4)
        );
        assert_eq!(
            CodecError::UnexpectedEof {
                offset: 42,
                context: "class name"
            }
            .offset(),
            Some(42)
        );
        assert_eq!(CodecError::VarintOverflow { offset: 7 }.offset(), Some(7));
        assert_eq!(CodecError::InvalidUtf8 { offset: 8 }.offset(), Some(8));
        assert_eq!(
            CodecError::InvalidTag {
                offset: 9,
                tag: 200,
                context: "terminator"
            }
            .offset(),
            Some(9)
        );
        assert_eq!(CodecError::from(IrError::EmptyBody).offset(), None);
    }

    #[test]
    fn codec_error_source_chains_to_ir_error() {
        use std::error::Error as _;
        let c = CodecError::from(IrError::EmptyBody);
        assert!(c.source().is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
        assert_send_sync::<CodecError>();
    }
}
