//! Android API levels and inclusive level ranges.
//!
//! The paper (Section II-A) refers to framework releases by *API level*
//! (e.g. 23) rather than by marketing name (Marshmallow) or version
//! number (6.0). SAINTDroid's revision modeler covers levels 2 through
//! 29; [`ApiLevel::MIN`] and [`ApiLevel::MAX`] pin that range.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single Android API level (e.g. `23` for Android 6.0).
///
/// # Examples
///
/// ```
/// use saint_ir::ApiLevel;
///
/// let m = ApiLevel::new(23);
/// assert!(m >= ApiLevel::RUNTIME_PERMISSIONS);
/// assert_eq!(m.to_string(), "23");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ApiLevel(u8);

impl ApiLevel {
    /// The lowest level modeled by the revision modeler (paper §III-B).
    pub const MIN: ApiLevel = ApiLevel(2);
    /// The highest level modeled (paper §III-B builds the database for
    /// levels 2 through 28; the tool itself "supports up to API level
    /// 29", §VII — we model the full 2..=29 span).
    pub const MAX: ApiLevel = ApiLevel(29);
    /// API level 23 (Android 6.0), which introduced the runtime
    /// permission system (paper §II-C).
    pub const RUNTIME_PERMISSIONS: ApiLevel = ApiLevel(23);

    /// Creates an API level from its numeric value.
    ///
    /// Values outside `2..=29` are accepted (apps in the wild declare
    /// `minSdkVersion 1` and future targets); queries against the API
    /// database simply clamp to the modeled range.
    #[must_use]
    pub const fn new(level: u8) -> Self {
        ApiLevel(level)
    }

    /// The numeric value of this level.
    #[must_use]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// The next level up, saturating at `u8::MAX`.
    #[must_use]
    pub const fn succ(self) -> Self {
        ApiLevel(self.0.saturating_add(1))
    }

    /// The next level down, saturating at zero.
    #[must_use]
    pub const fn pred(self) -> Self {
        ApiLevel(self.0.saturating_sub(1))
    }

    /// Clamps the level into the modeled `MIN..=MAX` span.
    #[must_use]
    pub fn clamp_modeled(self) -> Self {
        ApiLevel(self.0.clamp(Self::MIN.0, Self::MAX.0))
    }

    /// Iterates every modeled level, `MIN..=MAX`.
    pub fn all_modeled() -> impl DoubleEndedIterator<Item = ApiLevel> {
        (Self::MIN.0..=Self::MAX.0).map(ApiLevel)
    }
}

impl fmt::Display for ApiLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u8> for ApiLevel {
    fn from(v: u8) -> Self {
        ApiLevel(v)
    }
}

impl From<ApiLevel> for u8 {
    fn from(v: ApiLevel) -> Self {
        v.0
    }
}

/// An inclusive range of API levels, `min..=max`.
///
/// Level ranges drive every detector: an app's supported span comes from
/// its manifest (`minSdkVersion..=maxSdkVersion`), and SDK_INT guard
/// conditions *refine* that span along execution paths (paper
/// Algorithm 2, lines 2–3 and 10–11).
///
/// # Examples
///
/// ```
/// use saint_ir::{ApiLevel, LevelRange};
///
/// let supported = LevelRange::new(ApiLevel::new(21), ApiLevel::new(28));
/// let guarded = supported.refine_at_least(ApiLevel::new(23));
/// assert_eq!(guarded, LevelRange::new(ApiLevel::new(23), ApiLevel::new(28)));
/// assert!(guarded.contains(ApiLevel::new(26)));
/// assert!(!guarded.contains(ApiLevel::new(22)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LevelRange {
    min: ApiLevel,
    max: ApiLevel,
}

impl LevelRange {
    /// Creates the inclusive range `min..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`; use [`LevelRange::checked_new`] for
    /// fallible construction.
    #[must_use]
    pub fn new(min: ApiLevel, max: ApiLevel) -> Self {
        assert!(min <= max, "invalid level range {min}..={max}");
        LevelRange { min, max }
    }

    /// Creates the inclusive range `min..=max`, or `None` if empty.
    #[must_use]
    pub fn checked_new(min: ApiLevel, max: ApiLevel) -> Option<Self> {
        (min <= max).then_some(LevelRange { min, max })
    }

    /// The full modeled span, `2..=29`.
    #[must_use]
    pub fn modeled() -> Self {
        LevelRange::new(ApiLevel::MIN, ApiLevel::MAX)
    }

    /// Lower bound (inclusive).
    #[must_use]
    pub const fn min(self) -> ApiLevel {
        self.min
    }

    /// Upper bound (inclusive).
    #[must_use]
    pub const fn max(self) -> ApiLevel {
        self.max
    }

    /// Whether `level` falls inside this range.
    #[must_use]
    pub fn contains(self, level: ApiLevel) -> bool {
        self.min <= level && level <= self.max
    }

    /// The intersection of two ranges, or `None` when disjoint.
    #[must_use]
    pub fn intersect(self, other: LevelRange) -> Option<LevelRange> {
        LevelRange::checked_new(self.min.max(other.min), self.max.min(other.max))
    }

    /// Refines the range with a `SDK_INT >= level` guard.
    ///
    /// Returns the (possibly empty, hence `Option`-free saturated)
    /// narrowed range; an unsatisfiable guard collapses to `None`.
    #[must_use]
    pub fn refine_at_least(self, level: ApiLevel) -> LevelRange {
        LevelRange {
            min: self.min.max(level),
            max: self.max.max(level), // keep non-empty; callers check satisfiability separately
        }
    }

    /// Refines the range with a `SDK_INT <= level` guard.
    #[must_use]
    pub fn refine_at_most(self, level: ApiLevel) -> LevelRange {
        LevelRange {
            min: self.min.min(level),
            max: self.max.min(level),
        }
    }

    /// Refinement that reports unsatisfiable guards: intersects with
    /// `level..=MAX_REPRESENTABLE`.
    #[must_use]
    pub fn checked_refine_at_least(self, level: ApiLevel) -> Option<LevelRange> {
        self.intersect(LevelRange {
            min: level,
            max: ApiLevel(u8::MAX),
        })
    }

    /// Refinement that reports unsatisfiable guards: intersects with
    /// `0..=level`.
    #[must_use]
    pub fn checked_refine_at_most(self, level: ApiLevel) -> Option<LevelRange> {
        self.intersect(LevelRange {
            min: ApiLevel(0),
            max: level,
        })
    }

    /// Iterates the levels in the range, lowest first.
    pub fn iter(self) -> impl DoubleEndedIterator<Item = ApiLevel> {
        (self.min.0..=self.max.0).map(ApiLevel)
    }

    /// Number of levels in the range.
    #[must_use]
    pub fn len(self) -> usize {
        (self.max.0 - self.min.0) as usize + 1
    }

    /// Always false: a constructed range holds at least one level.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }
}

impl fmt::Display for LevelRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..={}", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_constants() {
        assert!(ApiLevel::MIN < ApiLevel::RUNTIME_PERMISSIONS);
        assert!(ApiLevel::RUNTIME_PERMISSIONS < ApiLevel::MAX);
        assert_eq!(ApiLevel::RUNTIME_PERMISSIONS.get(), 23);
    }

    #[test]
    fn succ_pred_saturate() {
        assert_eq!(ApiLevel::new(255).succ().get(), 255);
        assert_eq!(ApiLevel::new(0).pred().get(), 0);
        assert_eq!(ApiLevel::new(22).succ(), ApiLevel::new(23));
    }

    #[test]
    fn all_modeled_spans_2_to_29() {
        let all: Vec<_> = ApiLevel::all_modeled().collect();
        assert_eq!(all.len(), 28);
        assert_eq!(all.first().copied(), Some(ApiLevel::new(2)));
        assert_eq!(all.last().copied(), Some(ApiLevel::new(29)));
    }

    #[test]
    fn clamp_modeled_clamps_both_ends() {
        assert_eq!(ApiLevel::new(1).clamp_modeled(), ApiLevel::new(2));
        assert_eq!(ApiLevel::new(33).clamp_modeled(), ApiLevel::new(29));
        assert_eq!(ApiLevel::new(15).clamp_modeled(), ApiLevel::new(15));
    }

    #[test]
    #[should_panic(expected = "invalid level range")]
    fn inverted_range_panics() {
        let _ = LevelRange::new(ApiLevel::new(9), ApiLevel::new(3));
    }

    #[test]
    fn checked_new_rejects_inverted() {
        assert!(LevelRange::checked_new(ApiLevel::new(9), ApiLevel::new(3)).is_none());
        assert!(LevelRange::checked_new(ApiLevel::new(3), ApiLevel::new(3)).is_some());
    }

    #[test]
    fn intersect_overlapping() {
        let a = LevelRange::new(ApiLevel::new(5), ApiLevel::new(20));
        let b = LevelRange::new(ApiLevel::new(10), ApiLevel::new(28));
        assert_eq!(
            a.intersect(b),
            Some(LevelRange::new(ApiLevel::new(10), ApiLevel::new(20)))
        );
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = LevelRange::new(ApiLevel::new(5), ApiLevel::new(9));
        let b = LevelRange::new(ApiLevel::new(10), ApiLevel::new(28));
        assert_eq!(a.intersect(b), None);
    }

    #[test]
    fn refine_guards() {
        let app = LevelRange::new(ApiLevel::new(21), ApiLevel::new(28));
        assert_eq!(
            app.checked_refine_at_least(ApiLevel::new(23)),
            Some(LevelRange::new(ApiLevel::new(23), ApiLevel::new(28)))
        );
        assert_eq!(
            app.checked_refine_at_most(ApiLevel::new(22)),
            Some(LevelRange::new(ApiLevel::new(21), ApiLevel::new(22)))
        );
        assert_eq!(app.checked_refine_at_least(ApiLevel::new(29)), None);
    }

    #[test]
    fn iter_and_len() {
        let r = LevelRange::new(ApiLevel::new(23), ApiLevel::new(25));
        assert_eq!(r.len(), 3);
        let v: Vec<_> = r.iter().map(ApiLevel::get).collect();
        assert_eq!(v, vec![23, 24, 25]);
    }

    #[test]
    fn display_forms() {
        let r = LevelRange::new(ApiLevel::new(2), ApiLevel::new(29));
        assert_eq!(r.to_string(), "2..=29");
    }
}
