//! Global string interning for name atoms.
//!
//! Class names, method names, descriptors and permissions recur
//! massively across apps in a batch scan: every app names
//! `android.app.Activity`, every exploration re-creates `onCreate`
//! strings, and the framework's own surface is shared by construction.
//! Interning collapses all of those into one `Arc<str>` per distinct
//! string, so equality-heavy workloads (worklist dedup, map keys)
//! compare mostly-shared pointers over short strings and the heap holds
//! one copy of each atom process-wide.
//!
//! The table is append-only and sharded: 16 shards, each a
//! `Mutex<HashSet<Arc<str>>>`, picked by a deterministic FNV-1a hash so
//! concurrent scan workers rarely contend on the same shard.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex};

const SHARD_COUNT: usize = 16;

struct Interner {
    shards: [Mutex<HashSet<Arc<str>>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
}

static INTERNER: LazyLock<Interner> = LazyLock::new(|| Interner {
    shards: std::array::from_fn(|_| Mutex::new(HashSet::new())),
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
});

fn shard_of(text: &str) -> usize {
    // FNV-1a: deterministic across runs (unlike RandomState), so shard
    // load is reproducible in benchmarks.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (hash as usize) % SHARD_COUNT
}

/// Returns the canonical `Arc<str>` for `text`, inserting it on first
/// sight. All name constructors in this crate route through here.
pub fn intern<S>(text: S) -> Arc<str>
where
    S: AsRef<str> + Into<Arc<str>>,
{
    let interner = &*INTERNER;
    let shard = &interner.shards[shard_of(text.as_ref())];
    let mut set = shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = set.get(text.as_ref()) {
        interner.hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(existing);
    }
    interner.misses.fetch_add(1, Ordering::Relaxed);
    let atom: Arc<str> = text.into();
    set.insert(Arc::clone(&atom));
    atom
}

/// A snapshot of interner activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Lookups that found an existing atom.
    pub hits: u64,
    /// Lookups that inserted a new atom.
    pub misses: u64,
    /// Distinct atoms currently held.
    pub entries: usize,
}

impl InternStats {
    /// Hit fraction in `[0, 1]` (zero when nothing was interned yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Reads the global interner counters.
#[must_use]
pub fn intern_stats() -> InternStats {
    let interner = &*INTERNER;
    let entries = interner
        .shards
        .iter()
        .map(|shard| {
            shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len()
        })
        .sum();
    InternStats {
        hits: interner.hits.load(Ordering::Relaxed),
        misses: interner.misses.load(Ordering::Relaxed),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes_to_pointer_identity() {
        let a = intern("com.test.intern.PointerIdentity");
        let b = intern("com.test.intern.PointerIdentity".to_string());
        let c = intern(Arc::<str>::from("com.test.intern.PointerIdentity"));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        let a = intern("com.test.intern.DistinctA");
        let b = intern("com.test.intern.DistinctB");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a, b);
    }

    #[test]
    fn stats_move_forward() {
        let before = intern_stats();
        let _ = intern("com.test.intern.StatsProbe");
        let _ = intern("com.test.intern.StatsProbe");
        let after = intern_stats();
        assert!(after.hits + after.misses >= before.hits + before.misses + 2);
        assert!(after.entries >= 1);
    }
}
