//! `saintdroid` — the command-line front-end of the reproduction,
//! standing in for the tool the paper makes "publicly available to the
//! research and education community" (§I).
//!
//! ```text
//! saintdroid scan app.sapk [--json] [--synth N]
//! saintdroid verify app.sapk
//! saintdroid repair app.sapk -o fixed.sapk [--manifest-fixes]
//! saintdroid disasm app.sapk
//! saintdroid help
//! ```
//!
//! Packages are `SAPK` containers (see `saint_ir::codec`); the
//! `realworld_audit` example shows how to produce one.

use std::process::ExitCode;
use std::sync::Arc;

use saint_adf::{AndroidFramework, SynthConfig};
use saint_dynamic::Verifier;
use saint_ir::{codec, Apk};
use saintdroid::repair::{repair, RepairOptions};
use saintdroid::{CompatDetector, SaintDroid, ScanEngine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("saintdroid: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        print_help();
        return Ok(ExitCode::FAILURE);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(ExitCode::SUCCESS)
        }
        "scan" => scan(&args[1..]),
        "verify" => verify(&args[1..]),
        "repair" => do_repair(&args[1..]),
        "disasm" => disasm(&args[1..]),
        "callgraph" => callgraph(&args[1..]),
        other => {
            eprintln!("unknown command `{other}`; try `saintdroid help`");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn print_help() {
    eprintln!(
        "SAINTDroid reproduction CLI\n\
         \n\
         usage:\n\
         \x20 saintdroid scan <app.sapk>... [--json] [--jobs N] [--app-jobs M] [--synth N]\n\
         \x20                                                   detect compatibility mismatches; several\n\
         \x20                                                   packages are scanned as one parallel batch\n\
         \x20 saintdroid verify <app.sapk>                      scan, then dynamically verify findings\n\
         \x20 saintdroid repair <app.sapk> -o <out.sapk> [--manifest-fixes]\n\
         \x20                                                   synthesize fixes and write the patched app\n\
         \x20 saintdroid disasm <app.sapk>                      print manifest and smali-like listing\n\
         \x20 saintdroid callgraph <app.sapk>                   emit the explored call graph as Graphviz dot\n\
         \n\
         --jobs N      scan batches on N worker threads sharing one\n\
         framework-class cache (default: one per core).\n\
         --app-jobs M  give each app M intra-app worker threads\n\
         (parallel exploration, detectors, and framework-subtree\n\
         scans); app slots shrink to N/M so the global budget holds.\n\
         Default: auto — derived from batch size and cores. Reports\n\
         are identical at any setting.\n\
         --synth N     grows the framework model with N synthetic\n\
         classes (default: curated surface only)."
    );
}

fn load_apk(path: &str) -> Result<Apk, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(codec::decode_apk(&bytes)?)
}

fn framework(args: &[String]) -> Arc<AndroidFramework> {
    let synth = args
        .iter()
        .position(|a| a == "--synth")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok());
    match synth {
        Some(classes) => {
            let mut cfg = SynthConfig::medium();
            cfg.classes = classes;
            Arc::new(AndroidFramework::with_scale(&cfg))
        }
        None => Arc::new(AndroidFramework::curated()),
    }
}

/// Positional arguments: everything that is neither a flag nor the
/// value of a value-taking flag (`--synth N`, `--jobs N`,
/// `--app-jobs M`).
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg == "--synth" || arg == "--jobs" || arg == "--app-jobs" {
            skip_value = true;
            continue;
        }
        if !arg.starts_with('-') {
            out.push(arg);
        }
    }
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
}

fn scan(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let paths = positionals(args);
    if paths.is_empty() {
        return Err("scan: missing <app.sapk>".into());
    }
    let apks = paths
        .iter()
        .map(|p| load_apk(p))
        .collect::<Result<Vec<_>, _>>()?;
    let mut engine = ScanEngine::new(framework(args));
    if let Some(jobs) = flag_value(args, "--jobs") {
        engine = engine.jobs(jobs);
    }
    if let Some(app_jobs) = flag_value(args, "--app-jobs") {
        engine = engine.app_jobs(app_jobs);
    }
    let outcome = engine.scan_batch_timed(&apks);
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&outcome.reports)?);
    } else {
        for report in &outcome.reports {
            print!("{report}");
        }
        if apks.len() > 1 {
            eprintln!(
                "scanned {} packages in {:.2}s on {} workers ({:.1} apps/s)",
                apks.len(),
                outcome.wall.as_secs_f64(),
                outcome.workers.len(),
                outcome.apps_per_sec()
            );
        }
    }
    Ok(
        if outcome.reports.iter().all(saintdroid::Report::is_clean) {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        },
    )
}

fn verify(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(path) = args.first() else {
        return Err("verify: missing <app.sapk>".into());
    };
    let apk = load_apk(path)?;
    let fw = framework(args);
    let tool = SaintDroid::new(Arc::clone(&fw));
    let report = tool.analyze(&apk).expect("SAINTDroid analyzes any APK");
    print!("{report}");
    if report.is_clean() {
        return Ok(ExitCode::SUCCESS);
    }
    let verification = Verifier::new(fw).verify(&apk, &report);
    println!(
        "dynamic verification: {} confirmed, {} refuted, {} undetermined",
        verification.confirmed.len(),
        verification.refuted.len(),
        verification.undetermined.len()
    );
    for m in &verification.refuted {
        println!("  refuted (likely false alarm): {m}");
    }
    Ok(ExitCode::from(2))
}

fn do_repair(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(path) = args.first() else {
        return Err("repair: missing <app.sapk>".into());
    };
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .ok_or("repair: missing -o <out.sapk>")?;
    let opts = RepairOptions {
        apply_manifest_fixes: args.iter().any(|a| a == "--manifest-fixes"),
    };
    let apk = load_apk(path)?;
    let fw = framework(args);
    let tool = SaintDroid::new(Arc::clone(&fw));
    let report = tool.analyze(&apk).expect("SAINTDroid analyzes any APK");
    if report.is_clean() {
        println!("no mismatches; nothing to repair");
        std::fs::write(out_path, codec::encode_apk(&apk))?;
        return Ok(ExitCode::SUCCESS);
    }
    let outcome = repair(&apk, &report, &opts);
    for action in &outcome.actions {
        println!("{action:?}");
    }
    let after = tool
        .analyze(&outcome.apk)
        .expect("SAINTDroid analyzes any APK");
    println!(
        "findings: {} before, {} after repair",
        report.total(),
        after.total()
    );
    std::fs::write(out_path, codec::encode_apk(&outcome.apk))?;
    println!("patched package written to {out_path}");
    Ok(ExitCode::SUCCESS)
}

fn callgraph(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(path) = args.first() else {
        return Err("callgraph: missing <app.sapk>".into());
    };
    let apk = load_apk(path)?;
    let tool = SaintDroid::new(framework(args));
    let model = tool.model(&apk);
    let graph = saint_analysis::CallGraph::from_exploration(&model.exploration);
    print!("{}", graph.to_dot());
    Ok(ExitCode::SUCCESS)
}

fn disasm(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(path) = args.first() else {
        return Err("disasm: missing <app.sapk>".into());
    };
    let apk = load_apk(path)?;
    println!("{}", apk.manifest);
    for class in apk.all_classes() {
        println!("{class}");
    }
    Ok(ExitCode::SUCCESS)
}
