//! `saintdroid` — the command-line front-end of the reproduction,
//! standing in for the tool the paper makes "publicly available to the
//! research and education community" (§I).
//!
//! ```text
//! saintdroid scan app.sapk [--json] [--synth N] [--detectors SET]
//! saintdroid compare [--suite planted|benchmark|all] [--out FILE]
//! saintdroid verify app.sapk
//! saintdroid repair app.sapk -o fixed.sapk [--manifest-fixes]
//! saintdroid disasm app.sapk
//! saintdroid serve [--listen ADDR] [--jobs N] [--queue-depth D]
//! saintdroid submit app.sapk... [--addr ADDR] [--timeout-ms T] [--pipeline [--window W]]
//! saintdroid status [--addr ADDR]
//! saintdroid metrics [--addr ADDR]
//! saintdroid help
//! ```
//!
//! Packages are `SAPK` containers (see `saint_ir::codec`); the
//! `realworld_audit` example and `saintdroid synth-pkg` show how to
//! produce one.
//!
//! Exit-code contract (`scan` and `submit`): **0** no mismatches,
//! **2** at least one mismatch, **1** operational error (unreadable
//! package, service unreachable, rejected request). Scripts can gate
//! on "clean" vs "findings" without parsing output.

use std::process::ExitCode;
use std::sync::Arc;

use saint_adf::{AndroidFramework, SynthConfig};
use saint_dynamic::Verifier;
use saint_ir::{codec, Apk};
use saint_service::{Client, ClientError, ServerConfig};
use saintdroid::repair::{repair, RepairOptions};
use saintdroid::{CompatDetector, SaintDroid, ScanEngine};

/// Where `submit`/`status`/`shutdown` look for the daemon unless
/// `--addr` says otherwise; matches `serve`'s default `--listen`.
const DEFAULT_ADDR: &str = "127.0.0.1:7744";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("saintdroid: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        print_help();
        return Ok(ExitCode::FAILURE);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(ExitCode::SUCCESS)
        }
        "scan" => scan(&args[1..]),
        "compare" => compare_cli(&args[1..]),
        "verify" => verify(&args[1..]),
        "repair" => do_repair(&args[1..]),
        "disasm" => disasm(&args[1..]),
        "callgraph" => callgraph(&args[1..]),
        "serve" => serve(&args[1..]),
        "campaign" => campaign(&args[1..]),
        "submit" => submit(&args[1..]),
        "status" => status(&args[1..]),
        "metrics" => metrics(&args[1..]),
        "shutdown" => shutdown(&args[1..]),
        "synth-pkg" => synth_pkg(&args[1..]),
        "synth-lineage" => synth_lineage(&args[1..]),
        "compile-db" => compile_db(&args[1..]),
        "compile-corpus" => compile_corpus(&args[1..]),
        other => {
            eprintln!("unknown command `{other}`; try `saintdroid help`");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn print_help() {
    eprintln!(
        "SAINTDroid reproduction CLI\n\
         \n\
         usage:\n\
         \x20 saintdroid scan <app.sapk>... [--json] [--jobs N] [--app-jobs M] [--synth N]\n\
         \x20                [--trace-json <out.json>]\n\
         \x20                                                   detect compatibility mismatches; several\n\
         \x20                                                   packages are scanned as one parallel batch\n\
         \x20 saintdroid compare [--suite planted|benchmark|all] [--out FILE] [--json]\n\
         \x20                                                   run the full tool matrix (SAINTDroid with\n\
         \x20                                                   every family + CID/CIDER/Lint) against a\n\
         \x20                                                   labeled corpus and report per-family\n\
         \x20                                                   precision/recall/F1 (BENCH_compare.json)\n\
         \x20 saintdroid scan --history <dir> [--delta-dir D] [--json]\n\
         \x20                                                   scan a version lineage (the directory's\n\
         \x20                                                   .sapk files, oldest first by name) through\n\
         \x20                                                   the incremental store and report when each\n\
         \x20                                                   mismatch was introduced and fixed\n\
         \x20 saintdroid verify <app.sapk>                      scan, then dynamically verify findings\n\
         \x20 saintdroid repair <app.sapk> -o <out.sapk> [--manifest-fixes]\n\
         \x20                                                   synthesize fixes and write the patched app\n\
         \x20 saintdroid disasm <app.sapk>                      print manifest and smali-like listing\n\
         \x20 saintdroid callgraph <app.sapk>                   emit the explored call graph as Graphviz dot\n\
         \x20 saintdroid serve [--listen ADDR] [--jobs N] [--app-jobs M]\n\
         \x20                  [--queue-depth D] [--synth N]    run the persistent scan service: one warm\n\
         \x20                                                   engine (framework + caches built once),\n\
         \x20                                                   newline-delimited JSON over TCP\n\
         \x20 saintdroid submit <app.sapk>... [--addr ADDR] [--timeout-ms T]\n\
         \x20                  [--pipeline [--window W]]        scan packages through a running service\n\
         \x20 saintdroid status [--addr ADDR]                   daemon uptime, jobs, queue, cache hit rates\n\
         \x20 saintdroid metrics [--addr ADDR]                  full observability view: per-phase spans,\n\
         \x20                                                   counters, cache and queue state\n\
         \x20 saintdroid shutdown [--addr ADDR]                 gracefully drain and stop the daemon\n\
         \x20 saintdroid campaign run [--corpus IMG]... [--sapk-dir DIR]...\n\
         \x20                  [--daemon ADDR]... [--fleet N] [--journal J] [--out R] [--stable]\n\
         \x20                                                   scan a whole corpus across a daemon fleet:\n\
         \x20                                                   consistent-hash sharding, checkpointed\n\
         \x20                                                   journal, failover on daemon loss, one\n\
         \x20                                                   aggregated JSON report\n\
         \x20 saintdroid campaign resume [same flags]           replay the journal and scan only what is\n\
         \x20                                                   not covered; converges to the same report\n\
         \x20 saintdroid campaign report [--journal J] [--out R] [--stable]\n\
         \x20                                                   rebuild the aggregated report from the\n\
         \x20                                                   journal alone (no fleet, no re-scan)\n\
         \x20 saintdroid synth-pkg <out.sapk> [--index I]       write one synthesized package (for smoke\n\
         \x20                                                   tests and protocol experiments)\n\
         \x20 saintdroid synth-lineage <out-dir> [--versions N] [--churn-pct P] [--seed S]\n\
         \x20                                                   write a synthesized app-update lineage\n\
         \x20                                                   (v0.sapk...) with P% class churn per\n\
         \x20                                                   version, for `scan --history`\n\
         \x20 saintdroid compile-db <out.sfrz> [--synth N]      compile the framework model (API database,\n\
         \x20                                                   permission map, class bodies) into a frozen\n\
         \x20                                                   mmap-able image\n\
         \x20 saintdroid compile-corpus -o <out.sfrz> <app.sapk>... | --synth-corpus N\n\
         \x20                                                   pack SAPK packages into one frozen corpus\n\
         \x20                                                   image scanned zero-copy via `scan --corpus`\n\
         \n\
         exit codes (scan, submit, campaign): 0 = no mismatches, 2 =\n\
         mismatches found, 1 = error (unreadable package, service\n\
         unreachable or request rejected).\n\
         \n\
         --jobs N      scan batches on N worker threads sharing one\n\
         framework-class cache (default: one per core). For `serve`:\n\
         N concurrent scan workers over the warm engine.\n\
         --app-jobs M  give each app M intra-app worker threads\n\
         (parallel exploration, detectors, and framework-subtree\n\
         scans); app slots shrink to N/M so the global budget holds.\n\
         Default: auto — derived from batch size and cores. Reports\n\
         are identical at any setting.\n\
         --synth N     grows the framework model with N synthetic\n\
         classes (default: curated surface only).\n\
         --detectors SET scan/serve: the detector families to run —\n\
         `amd` (api,apc,prm — the default), `all`, or a comma list of\n\
         api,apc,prm,dsd. The set is part of a scan's identity: the\n\
         incremental store keys fold it in, and a daemon rejects\n\
         submissions asserting a different set (`detector_mismatch`).\n\
         --suite S     compare: the labeled corpus — `planted` (six\n\
         apps with exactly-known defects across all four families,\n\
         the default), `benchmark` (the 19-app CIDER/CID suite), or\n\
         `all` (both).\n\
         --out FILE    compare: where the JSON artifact goes (default\n\
         BENCH_compare.json); the human table always prints to stderr.\n\
         --listen ADDR serve: bind address (default {DEFAULT_ADDR};\n\
         port 0 picks an ephemeral port, printed on startup).\n\
         --queue-depth D serve: queued scans beyond the workers before\n\
         submissions are rejected with `busy` (default 64).\n\
         --name NAME   serve: operator-assigned daemon name, echoed in\n\
         status/metrics and campaign per-daemon attribution.\n\
         --scan-pace-ms P serve/campaign --fleet: artificial per-scan\n\
         service time (capacity emulation for fleet benches on hosts\n\
         with fewer cores than daemons; default: off).\n\
         --trace-json <out.json> scan: write per-phase spans as Chrome\n\
         trace JSON (load in chrome://tracing or Perfetto).\n\
         --delta-dir D scan --history/serve: the incremental artifact\n\
         store (default .saint/delta for --history; serve answers the\n\
         `delta` verb from it, and without the flag the verb degrades\n\
         to a plain full scan). Reports are byte-identical to a cold\n\
         scan either way — the store only changes what is recomputed.\n\
         --addr ADDR   submit/status/metrics/shutdown: daemon address\n\
         (default {DEFAULT_ADDR}).\n\
         --timeout-ms T submit: per-package deadline, queue wait\n\
         included (default: none).\n\
         --retries N   submit: retry transient failures (busy,\n\
         internal, connection reset) up to N times per package with\n\
         capped exponential backoff (default 0: fail fast; --pipeline\n\
         defaults to 3 and retries only the failed request).\n\
         --pipeline    submit: stream every package over one\n\
         connection with a window of scans in flight instead of\n\
         request/response lockstep; reports and exit codes are\n\
         identical to the lockstep path.\n\
         --window W    submit --pipeline: in-flight requests kept on\n\
         the wire (default 64, matching the server-side per-connection\n\
         window; the daemon suspends reads beyond its own window).\n\
         --corpus IMG  scan: analyze every package of a frozen corpus\n\
         image (see compile-corpus) straight out of the mapping.\n\
         --frozen-db PATH scan/serve: frozen framework image to attach\n\
         (default for serve: $SAINT_FROZEN_IMAGE or\n\
         .saint/frozen/framework-<fingerprint>.sfrz, compiled on first\n\
         run). For scan the flag opts in; for serve it overrides.\n\
         --no-frozen   serve: boot on the classic parse path instead\n\
         of attaching (or compiling) a frozen image.\n\
         --frozen-trust serve: trusted warm attach — skip the\n\
         full-image checksum and eager index validation (a prior boot\n\
         verified the image); every read stays bounds-checked.\n\
         --corpus IMG / --sapk-dir DIR campaign: work sources, both\n\
         repeatable; packages are deduplicated by content across all\n\
         sources.\n\
         --daemon ADDR campaign: an already-running daemon to enlist\n\
         (repeatable).\n\
         --fleet N     campaign: spawn and supervise N local daemons\n\
         on ephemeral ports for the run (combines with --daemon).\n\
         --journal J   campaign: checkpointed completion journal\n\
         (default campaign.journal); `resume`/`report` read it back.\n\
         --checkpoint-every K campaign: journal records per fsync\n\
         batch (default 32; a crash loses at most the unsynced tail).\n\
         --out R       campaign: write the aggregated JSON report to R\n\
         instead of stdout.\n\
         --stable      campaign: omit runtime/throughput stats from\n\
         the report so converged runs compare byte-for-byte."
    );
}

/// Where `serve` keeps its frozen framework image by default: the
/// `SAINT_FROZEN_IMAGE` env override, else a fingerprint-named file
/// under `.saint/frozen/` — different framework scales get different
/// images, and a spec change simply compiles a sibling file.
fn default_frozen_path(fw: &AndroidFramework) -> std::path::PathBuf {
    if let Ok(path) = std::env::var("SAINT_FROZEN_IMAGE") {
        return std::path::PathBuf::from(path);
    }
    let fp = saint_frozen::spec_fingerprint(fw.spec());
    std::path::PathBuf::from(".saint/frozen").join(format!("framework-{fp:016x}.sfrz"))
}

fn load_apk(path: &str) -> Result<Apk, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(codec::decode_apk(&bytes)?)
}

fn framework(args: &[String]) -> Arc<AndroidFramework> {
    match flag_value(args, "--synth") {
        Some(classes) => {
            let mut cfg = SynthConfig::medium();
            cfg.classes = classes;
            Arc::new(AndroidFramework::with_scale(&cfg))
        }
        None => Arc::new(AndroidFramework::curated()),
    }
}

/// The scan engine for `scan`/`serve`, honoring `--detectors`: without
/// the flag the engine runs the default AMD families; with it, the
/// engine is built around a tool running exactly the requested set
/// (which the incremental store and the daemon's assertion check then
/// treat as part of the scan's identity).
fn engine_for(fw: Arc<AndroidFramework>, args: &[String]) -> Result<ScanEngine, String> {
    match string_flag(args, "--detectors") {
        Some(spec) => {
            let set = saintdroid::DetectorSet::parse(spec)
                .map_err(|e| format!("--detectors {spec}: {e}"))?;
            Ok(ScanEngine::from_tool(
                SaintDroid::new(fw).with_detectors(set),
            ))
        }
        None => Ok(ScanEngine::new(fw)),
    }
}

/// Flags that take a value (so the value is not a positional).
const VALUE_FLAGS: &[&str] = &[
    "--synth",
    "--detectors",
    "--suite",
    "--jobs",
    "--app-jobs",
    "--listen",
    "--queue-depth",
    "--addr",
    "--timeout-ms",
    "--retries",
    "--window",
    "--trace-json",
    "--index",
    "--corpus",
    "--frozen-db",
    "--synth-corpus",
    "--name",
    "--scan-pace-ms",
    "--sapk-dir",
    "--daemon",
    "--fleet",
    "--journal",
    "--out",
    "--checkpoint-every",
    "--history",
    "--delta-dir",
    "--versions",
    "--churn-pct",
    "--seed",
    "-o",
];

/// Positional arguments: everything that is neither a flag nor the
/// value of a value-taking flag ([`VALUE_FLAGS`]).
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if VALUE_FLAGS.iter().any(|f| f == arg) {
            skip_value = true;
            continue;
        }
        if !arg.starts_with('-') {
            out.push(arg);
        }
    }
    out
}

/// The single `<app.sapk>` positional of the one-package verbs
/// (`verify`, `repair`, `disasm`, `callgraph`); flags may appear in
/// any position.
fn sole_package<'a>(args: &'a [String], verb: &str) -> Result<&'a String, String> {
    positionals(args)
        .first()
        .copied()
        .ok_or_else(|| format!("{verb}: missing <app.sapk>"))
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse::<usize>().ok())
}

fn string_flag<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every value of a repeatable value-taking flag, in argument order
/// (`campaign --corpus a.sfrz --corpus b.sfrz`).
fn string_flags<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        if arg == flag {
            if let Some(value) = args.get(i + 1) {
                out.push(value.as_str());
            }
        }
    }
    out
}

/// The exit code the scan contract assigns to a set of reports.
fn scan_exit_code(reports: &[saintdroid::Report]) -> ExitCode {
    if reports.iter().all(saintdroid::Report::is_clean) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn scan(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    if let Some(dir) = string_flag(args, "--history") {
        return scan_history_cli(dir, args);
    }
    let paths = positionals(args);
    let corpus = string_flag(args, "--corpus")
        .map(|img| {
            saint_frozen::FrozenCorpus::open(std::path::Path::new(img))
                .map_err(|e| format!("cannot attach corpus image {img}: {e}"))
        })
        .transpose()?;
    if paths.is_empty() && corpus.is_none() {
        return Err("scan: missing <app.sapk> (or --corpus <image>)".into());
    }
    let apks = paths
        .iter()
        .map(|p| load_apk(p))
        .collect::<Result<Vec<_>, _>>()?;
    let mut engine = engine_for(framework(args), args)?;
    if let Some(jobs) = flag_value(args, "--jobs") {
        engine = engine.jobs(jobs);
    }
    if let Some(app_jobs) = flag_value(args, "--app-jobs") {
        engine = engine.app_jobs(app_jobs);
    }
    let trace_path = string_flag(args, "--trace-json");
    let trace = trace_path.map(|_| Arc::new(saint_obs::TraceSink::new()));
    if let Some(trace) = &trace {
        engine = engine.with_trace(Arc::clone(trace)).ensure_metrics();
    }
    if let Some(db) = string_flag(args, "--frozen-db") {
        engine
            .attach_frozen(std::path::Path::new(db))
            .map_err(|e| format!("cannot attach frozen framework image {db}: {e}"))?;
        engine.prewarm();
    }
    let outcome = match &corpus {
        Some(corpus) => {
            let mut outcome = engine.scan_frozen_batch_timed(corpus);
            if !apks.is_empty() {
                // Mixed invocation: .sapk positionals after the corpus.
                let extra = engine.scan_batch_timed(&apks);
                outcome.reports.extend(extra.reports);
                outcome.wall += extra.wall;
            }
            outcome
        }
        None => engine.scan_batch_timed(&apks),
    };
    if let (Some(path), Some(trace)) = (trace_path, &trace) {
        let events = trace.len();
        std::fs::write(path, trace.to_chrome_json())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("wrote {events} trace events to {path}");
    }
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&outcome.reports)?);
    } else {
        for report in &outcome.reports {
            print!("{report}");
        }
        if outcome.reports.len() > 1 {
            eprintln!(
                "scanned {} packages in {:.2}s on {} workers ({:.1} apps/s)",
                outcome.reports.len(),
                outcome.wall.as_secs_f64(),
                outcome.workers.len(),
                outcome.apps_per_sec()
            );
        }
    }
    Ok(scan_exit_code(&outcome.reports))
}

/// `saintdroid compare`: run the full tool matrix (SAINTDroid with all
/// four detector families, then CID/CIDER/Lint as published) against a
/// labeled ground-truth corpus and report per-family and per-tool
/// precision/recall/F1. The human-readable table goes to stderr; the
/// JSON artifact goes to `--out` (default `BENCH_compare.json`), and
/// `--json` additionally prints it to stdout for piping.
fn compare_cli(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let suite = string_flag(args, "--suite").unwrap_or("planted");
    let (label, apps) = match suite {
        "planted" => ("planted", saint_corpus::planted_suite()),
        "benchmark" => ("benchmark", saint_corpus::benchmark_suite()),
        "all" => {
            let mut apps = saint_corpus::planted_suite();
            apps.extend(saint_corpus::benchmark_suite());
            ("planted+benchmark", apps)
        }
        other => {
            return Err(
                format!("compare: unknown --suite `{other}` (planted|benchmark|all)").into(),
            )
        }
    };
    let fw = framework(args);
    let cmp = saint_baselines::compare(label, &fw, &apps);
    eprint!("{cmp}");
    let mut json = serde_json::to_string_pretty(&cmp)?;
    json.push('\n');
    if args.iter().any(|a| a == "--json") {
        print!("{json}");
    }
    let out = string_flag(args, "--out").unwrap_or("BENCH_compare.json");
    std::fs::write(out, &json).map_err(|e| format!("compare: cannot write {out}: {e}"))?;
    eprintln!("wrote comparison artifact to {out}");
    Ok(ExitCode::SUCCESS)
}

/// `scan --history <dir>`: scan a version lineage oldest-first through
/// the incremental artifact store and report the version at which each
/// mismatch was introduced and, if ever, fixed.
///
/// Versions are the directory's `.sapk` files in lexicographic name
/// order (`v0.sapk`, `v1.sapk`, … — zero-pad past ten versions).
/// Reports go to stdout; reuse accounting and the evolution summary go
/// to stderr, so the report stream stays byte-comparable between cold
/// and warm runs.
fn scan_history_cli(dir: &str, args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("scan --history: cannot read {dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sapk"))
        .collect();
    if files.is_empty() {
        return Err(format!("scan --history: no .sapk files in {dir}").into());
    }
    files.sort();
    let mut versions = Vec::with_capacity(files.len());
    for path in &files {
        let label = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let apk = codec::decode_apk(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        versions.push((label, apk));
    }

    let store = string_flag(args, "--delta-dir").unwrap_or(".saint/delta");
    let scanner = saint_delta::DeltaScanner::new(store);
    let tool = SaintDroid::new(framework(args));
    let app_jobs = flag_value(args, "--app-jobs").unwrap_or(1).max(1);
    let evolution = saint_delta::scan_history(&scanner, &tool, &versions, app_jobs);

    if args.iter().any(|a| a == "--json") {
        let reports: Vec<&saintdroid::Report> =
            evolution.versions.iter().map(|v| &v.report).collect();
        println!("{}", serde_json::to_string_pretty(&reports)?);
    } else {
        for v in &evolution.versions {
            print!("{}: {}", v.label, v.report);
        }
    }

    let (mut hits, mut misses, mut reanalyzed) = (0u64, 0u64, 0u64);
    for v in &evolution.versions {
        hits += v.stats.hits;
        misses += v.stats.misses;
        reanalyzed += v.stats.reanalyzed;
    }
    eprintln!(
        "delta: {hits} hits / {misses} misses / {reanalyzed} classes reanalyzed (store {store})"
    );
    for e in &evolution.entries {
        match &e.fixed {
            Some(fixed) => eprintln!("  {}: introduced {} fixed {fixed}", e.key, e.introduced),
            None => eprintln!("  {}: introduced {} still present", e.key, e.introduced),
        }
    }
    Ok(if evolution.current_mismatches() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn verify(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let path = sole_package(args, "verify")?;
    let apk = load_apk(path)?;
    let fw = framework(args);
    let tool = SaintDroid::new(Arc::clone(&fw));
    let report = tool.analyze(&apk).expect("SAINTDroid analyzes any APK");
    print!("{report}");
    if report.is_clean() {
        return Ok(ExitCode::SUCCESS);
    }
    let verification = Verifier::new(fw).verify(&apk, &report);
    println!(
        "dynamic verification: {} confirmed, {} refuted, {} undetermined",
        verification.confirmed.len(),
        verification.refuted.len(),
        verification.undetermined.len()
    );
    for m in &verification.refuted {
        println!("  refuted (likely false alarm): {m}");
    }
    Ok(ExitCode::from(2))
}

fn do_repair(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let path = sole_package(args, "repair")?;
    let out_path = string_flag(args, "-o").ok_or("repair: missing -o <out.sapk>")?;
    let opts = RepairOptions {
        apply_manifest_fixes: args.iter().any(|a| a == "--manifest-fixes"),
    };
    let apk = load_apk(path)?;
    let fw = framework(args);
    let tool = SaintDroid::new(Arc::clone(&fw));
    let report = tool.analyze(&apk).expect("SAINTDroid analyzes any APK");
    if report.is_clean() {
        println!("no mismatches; nothing to repair");
        std::fs::write(out_path, codec::encode_apk(&apk))?;
        return Ok(ExitCode::SUCCESS);
    }
    let outcome = repair(&apk, &report, &opts);
    for action in &outcome.actions {
        println!("{action:?}");
    }
    let after = tool
        .analyze(&outcome.apk)
        .expect("SAINTDroid analyzes any APK");
    println!(
        "findings: {} before, {} after repair",
        report.total(),
        after.total()
    );
    std::fs::write(out_path, codec::encode_apk(&outcome.apk))?;
    println!("patched package written to {out_path}");
    Ok(ExitCode::SUCCESS)
}

fn callgraph(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let path = sole_package(args, "callgraph")?;
    let apk = load_apk(path)?;
    let tool = SaintDroid::new(framework(args));
    let model = tool.model(&apk);
    let graph = saint_analysis::CallGraph::from_exploration(&model.exploration);
    print!("{}", graph.to_dot());
    Ok(ExitCode::SUCCESS)
}

fn disasm(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let path = sole_package(args, "disasm")?;
    let apk = load_apk(path)?;
    println!("{}", apk.manifest);
    for class in apk.all_classes() {
        println!("{class}");
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------
// Service verbs
// ---------------------------------------------------------------------

fn serve(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut cfg = ServerConfig {
        listen: string_flag(args, "--listen")
            .unwrap_or(DEFAULT_ADDR)
            .to_string(),
        ..ServerConfig::default()
    };
    if let Some(jobs) = flag_value(args, "--jobs") {
        cfg.jobs = jobs.max(1);
    }
    if let Some(depth) = flag_value(args, "--queue-depth") {
        cfg.queue_depth = depth;
    }
    cfg.name = string_flag(args, "--name").map(str::to_string);
    if let Some(ms) = flag_value(args, "--scan-pace-ms") {
        cfg.scan_pace = Some(std::time::Duration::from_millis(ms as u64));
    }
    // Opt-in incremental store: the daemon answers the `delta` verb
    // from warm artifacts; without the flag the verb degrades to a
    // plain full scan.
    cfg.delta_dir = string_flag(args, "--delta-dir").map(std::path::PathBuf::from);
    let fw = framework(args);
    let mut engine = engine_for(Arc::clone(&fw), args)?;
    if let Some(app_jobs) = flag_value(args, "--app-jobs") {
        engine = engine.app_jobs(app_jobs);
    }
    eprintln!("saint-service: warming engine (framework model + shared caches)...");
    // The daemon always carries a registry (`start` would install one
    // anyway); installing it before the frozen attach means the attach
    // itself is recorded (frozen_map span, frozen_bytes_mapped).
    engine = engine.ensure_metrics();
    if !args.iter().any(|a| a == "--no-frozen") {
        // Frozen boot is the default: attach (or compile, first run)
        // the image so nothing is mined at startup and class bodies
        // come out of shared pages. Any failure falls back to the
        // classic parse path — the daemon always comes up.
        let image = string_flag(args, "--frozen-db")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| default_frozen_path(&fw));
        // `--frozen-trust` opts in to the warm-boot attach: skip the
        // full-image checksum and eager index walk (a prior boot
        // already verified the image end to end); falls back to the
        // verified, compile-on-miss attach when the image is absent.
        let trust = args.iter().any(|a| a == "--frozen-trust");
        let booted = if trust {
            engine
                .attach_frozen_trusted(&image)
                .or_else(|_| engine.attach_frozen(&image))
        } else {
            engine.attach_frozen(&image)
        };
        match booted {
            Ok(boot) => eprintln!(
                "saint-service: frozen image {} ({}, {} bytes, {:.3}s)",
                image.display(),
                if boot.trusted {
                    "attached, trusted"
                } else if boot.attached {
                    "attached"
                } else {
                    "compiled on first run"
                },
                boot.bytes_mapped,
                boot.startup.as_secs_f64()
            ),
            Err(e) => eprintln!(
                "saint-service: frozen image unavailable ({e}); parsing framework instead"
            ),
        }
    }
    engine.prewarm();
    let handle = saint_service::start(engine, &cfg)?;
    // Stdout, flushed: scripts (the CI smoke job among them) wait for
    // this line to learn the ephemeral port.
    println!("saint-service listening on {}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    eprintln!(
        "jobs={} queue-depth={} — submit with `saintdroid submit <app.sapk> --addr {}`",
        cfg.jobs,
        cfg.queue_depth,
        handle.addr()
    );
    handle.wait();
    eprintln!("saint-service: drained and stopped");
    Ok(ExitCode::SUCCESS)
}

fn submit(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let paths = positionals(args);
    if paths.is_empty() {
        return Err("submit: missing <app.sapk>".into());
    }
    let addr = string_flag(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let deadline_ms = flag_value(args, "--timeout-ms").map(|t| t as u64);
    if args.iter().any(|a| a == "--pipeline") {
        return submit_pipelined(&paths, args, addr, deadline_ms);
    }
    let retries = flag_value(args, "--retries").map_or(0, |r| r as u32);
    let policy = saint_service::RetryPolicy::new(retries);
    let mut reports = Vec::new();
    for path in paths {
        let sapk = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        match saint_service::scan_with_retries(addr, &sapk, deadline_ms, policy, None) {
            Ok((response, used)) => {
                if used > 0 {
                    eprintln!("{path}: served after {used} retr{}", plural_y(used));
                }
                print!("{}", response.report);
                reports.push(response.report);
            }
            Err(ClientError::Rejected(err)) => {
                return Err(format!(
                    "{path}: service rejected scan: {} ({})",
                    err.code, err.message
                )
                .into())
            }
            Err(e) => return Err(format!("{path}: {e}").into()),
        }
    }
    Ok(scan_exit_code(&reports))
}

/// `submit --pipeline`: every package streamed over one connection
/// with a window of scans in flight; responses may come back out of
/// order and are reordered by request id, so printed reports — and the
/// exit code — match the lockstep path byte for byte.
fn submit_pipelined(
    paths: &[&String],
    args: &[String],
    addr: &str,
    deadline_ms: Option<u64>,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    // Default matches the server-side per-connection window
    // (`ServerConfig::default().window`): a smaller client window
    // under-fills the pipe, a larger one just gets suspended.
    let window = flag_value(args, "--window").unwrap_or(saint_service::DEFAULT_WINDOW);
    let mut client = saint_service::PipelinedClient::connect(addr, window)
        .map_err(|e| format!("cannot reach scan service at {addr}: {e}"))?;
    if let Some(retries) = flag_value(args, "--retries") {
        client = client.with_retry_policy(saint_service::RetryPolicy::new(retries as u32));
    }
    let mut sapks = Vec::with_capacity(paths.len());
    for path in paths {
        sapks.push(std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?);
    }
    let responses = match client.scan_all(&sapks, deadline_ms) {
        Ok(responses) => responses,
        Err(ClientError::Rejected(err)) => {
            return Err(format!("service rejected scan: {} ({})", err.code, err.message).into())
        }
        Err(e) => return Err(format!("pipelined submit: {e}").into()),
    };
    let reports: Vec<saintdroid::Report> = responses.into_iter().map(|r| r.report).collect();
    for report in &reports {
        print!("{report}");
    }
    Ok(scan_exit_code(&reports))
}

fn plural_y(n: u32) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn plural_s(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// `campaign run|resume|report`: the fleet campaign runner
/// (`saint-campaign`) behind one verb.
fn campaign(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    match positionals(args).first().map(|s| s.as_str()) {
        Some("run") => campaign_execute(args, false),
        Some("resume") => campaign_execute(args, true),
        Some("report") => campaign_report(args),
        _ => Err("campaign: expected `run`, `resume` or `report` (see `saintdroid help`)".into()),
    }
}

/// The journal the campaign verbs operate on (`--journal`, default
/// `campaign.journal` in the working directory).
fn campaign_journal_path(args: &[String]) -> std::path::PathBuf {
    std::path::PathBuf::from(string_flag(args, "--journal").unwrap_or("campaign.journal"))
}

/// Renders a campaign report to `--out` or stdout and maps it onto the
/// scan exit-code contract (0 clean, 2 mismatches found).
fn emit_campaign_report(
    args: &[String],
    report: &saint_campaign::CampaignReport,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let rendered = if args.iter().any(|a| a == "--stable") {
        report.stable_json()
    } else {
        report.to_json()
    };
    match string_flag(args, "--out") {
        Some(path) => {
            std::fs::write(path, rendered + "\n")
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("campaign: report written to {path}");
        }
        None => println!("{rendered}"),
    }
    Ok(if report.mismatches == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// `campaign run` / `campaign resume`: build the corpus registry,
/// stand up (or address) the fleet, drive the campaign, emit the
/// aggregated report.
fn campaign_execute(args: &[String], resume: bool) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let mut registry = saint_campaign::CorpusRegistry::new();
    for image in string_flags(args, "--corpus") {
        let added = registry.add_image(std::path::Path::new(image))?;
        eprintln!("campaign: {added} package{} from {image}", plural_s(added));
    }
    for dir in string_flags(args, "--sapk-dir") {
        let added = registry.add_sapk_dir(std::path::Path::new(dir))?;
        eprintln!("campaign: {added} package{} from {dir}/", plural_s(added));
    }
    if registry.is_empty() {
        return Err("campaign: no work — pass --corpus <img.sfrz> and/or --sapk-dir <dir>".into());
    }

    let mut endpoints: Vec<String> = string_flags(args, "--daemon")
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut fleet = None;
    if let Some(n) = flag_value(args, "--fleet") {
        let mut fleet_cfg = saint_campaign::FleetConfig::default();
        if let Some(jobs) = flag_value(args, "--jobs") {
            fleet_cfg.jobs = jobs.max(1);
        }
        if let Some(ms) = flag_value(args, "--scan-pace-ms") {
            fleet_cfg.scan_pace = Some(std::time::Duration::from_millis(ms as u64));
        }
        eprintln!(
            "campaign: starting local fleet of {n} daemon{} (one warm engine each)...",
            plural_s(n)
        );
        let local = saint_campaign::LocalFleet::start(&framework(args), n.max(1), &fleet_cfg)?;
        endpoints.extend(local.endpoints().iter().cloned());
        fleet = Some(local);
    }
    if endpoints.is_empty() {
        return Err("campaign: no daemons — pass --daemon <addr> and/or --fleet N".into());
    }

    let mut cfg = saint_campaign::CampaignConfig::default();
    if let Some(window) = flag_value(args, "--window") {
        cfg.window = window.max(1);
    }
    if let Some(retries) = flag_value(args, "--retries") {
        cfg.retries = retries as u32;
    }
    if let Some(every) = flag_value(args, "--checkpoint-every") {
        cfg.checkpoint_every = every.max(1);
    }
    cfg.deadline_ms = flag_value(args, "--timeout-ms").map(|t| t as u64);

    let metrics = Arc::new(saint_obs::MetricsRegistry::new());
    let journal = campaign_journal_path(args);
    let outcome = saint_campaign::run_campaign(
        &registry,
        &endpoints,
        &journal,
        resume,
        &cfg,
        Some(&metrics),
    )?;
    if let Some(mut local) = fleet {
        local.shutdown();
    }

    if outcome.journal_truncated {
        eprintln!("campaign: journal had a damaged tail; the affected units were re-scanned");
    }
    if outcome.foreign > 0 {
        eprintln!(
            "campaign: {} journal record{} ignored (not in this corpus)",
            outcome.foreign,
            plural_s(outcome.foreign)
        );
    }
    let r = &outcome.runtime;
    eprintln!(
        "campaign: {} app{} done ({} scanned now, {} resumed from journal) across {} daemon{} \
         in {:.1}s — {:.1} apps/s, {} resubmission{}, {} failover{}, {} checkpoint flush{}",
        outcome.store.len(),
        plural_s(outcome.store.len()),
        outcome.completed,
        outcome.resumed,
        endpoints.len(),
        plural_s(endpoints.len()),
        r.wall_secs,
        r.apps_per_sec,
        r.resubmissions,
        plural_s(r.resubmissions as usize),
        r.daemon_failovers,
        plural_s(r.daemon_failovers as usize),
        r.checkpoint_flushes,
        if r.checkpoint_flushes == 1 { "" } else { "es" },
    );
    let report = outcome.store.report(Some(outcome.runtime.clone()));
    emit_campaign_report(args, &report)
}

/// `campaign report`: rebuild the aggregated report from the journal
/// alone — no fleet, no corpus, no re-scan.
fn campaign_report(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let journal = campaign_journal_path(args);
    let replayed = saint_campaign::replay(&journal)?;
    if replayed.truncated {
        eprintln!(
            "campaign: journal has a damaged tail; reporting the {} salvaged record{} \
             (run `campaign resume` to finish)",
            replayed.records.len(),
            plural_s(replayed.records.len())
        );
    }
    let mut store = saint_campaign::ResultStore::new();
    for record in replayed.records {
        store.insert(record);
    }
    let report = store.report(None);
    emit_campaign_report(args, &report)
}

fn status(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let addr = string_flag(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot reach scan service at {addr}: {e}"))?;
    let s = client.status()?;
    print_status(addr, &s);
    Ok(ExitCode::SUCCESS)
}

fn print_status(addr: &str, s: &saint_service::StatusResponse) {
    println!(
        "scan service at {addr}: up {:.1}s{}{}",
        s.uptime_ms as f64 / 1000.0,
        match &s.daemon {
            Some(name) => format!(" — daemon `{name}`"),
            None => String::new(),
        },
        if s.draining { " (draining)" } else { "" }
    );
    println!(
        "  jobs: {} served, {} active, {} queued (capacity {}), {} rejected busy, {} timed out",
        s.jobs_served, s.jobs_active, s.queue_depth, s.queue_capacity, s.rejected_busy, s.timed_out
    );
    println!("  scan workers: {} live", s.scan_workers);
    if let Some(set) = &s.detectors {
        println!("  detectors: {set}");
    }
    print_reactor(s.reactor.as_ref());
    for (name, cache) in [
        ("class cache   ", &s.class_cache),
        ("artifact cache", &s.artifact_cache),
        ("scan cache    ", &s.scan_cache),
    ] {
        if let Some(c) = cache {
            println!(
                "  {name}: {} hits / {} misses ({:.1}% hit rate, {} entries)",
                c.hits,
                c.misses,
                c.hit_rate * 100.0,
                c.entries
            );
        }
    }
    print_frozen(s.frozen.as_ref());
}

/// Renders the event-loop state (shared by `status` and `metrics`):
/// live connection/in-flight gauges plus lifetime backpressure
/// counters.
fn print_reactor(reactor: Option<&saint_service::ReactorStatus>) {
    let Some(r) = reactor else {
        return;
    };
    println!(
        "  reactor: {} connections open ({} suspended), {} scans in flight; lifetime: {} accepted, {} backpressure suspends, {} write stalls",
        r.open_connections,
        r.suspended_connections,
        r.inflight,
        r.connections_accepted,
        r.backpressure_suspends,
        r.write_stalls
    );
}

/// Renders frozen-boot provenance (shared by `status` and `metrics`).
fn print_frozen(frozen: Option<&saint_service::FrozenStatus>) {
    let Some(f) = frozen else {
        println!("  frozen: false (framework parsed at startup)");
        return;
    };
    println!(
        "  frozen: true — image {} ({}), startup {:.3}s, {} bytes mapped{}, {} classes preloaded",
        f.image,
        if f.trusted {
            "cached, trusted attach"
        } else if f.cached {
            "cached"
        } else {
            "compiled this boot"
        },
        f.startup_secs,
        f.bytes_mapped,
        if f.page_mapped {
            ""
        } else {
            " (owned-buffer fallback)"
        },
        f.classes_preloaded
    );
}

fn metrics(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let addr = string_flag(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot reach scan service at {addr}: {e}"))?;
    let m = client.metrics()?;
    println!("scan service at {addr}: metrics");
    println!("  phases (count / total):");
    for p in &m.phases {
        if p.count == 0 {
            continue;
        }
        println!(
            "    {:<20} {:>8} spans  {:>10.3}s",
            p.name,
            p.count,
            p.total_ns as f64 / 1e9
        );
    }
    println!("  counters:");
    for c in &m.counters {
        println!("    {:<28} {}", c.name, c.value);
    }
    for (name, cache) in [
        ("class cache   ", &m.class_cache),
        ("artifact cache", &m.artifact_cache),
        ("scan cache    ", &m.scan_cache),
    ] {
        if let Some(c) = cache {
            println!(
                "  {name}: {} lookups, {} hits ({:.1}% hit rate, {} entries)",
                c.lookups,
                c.hits,
                c.hit_rate * 100.0,
                c.entries
            );
        }
    }
    if let Some(q) = &m.queue {
        println!(
            "  queue: {} deep (capacity {}), {} active, {} served, {} rejected busy, {} timed out",
            q.depth, q.capacity, q.active, q.served, q.rejected_busy, q.timed_out
        );
    }
    print_reactor(m.reactor.as_ref());
    print_frozen(m.frozen.as_ref());
    Ok(ExitCode::SUCCESS)
}

fn shutdown(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let addr = string_flag(args, "--addr").unwrap_or(DEFAULT_ADDR);
    let mut client =
        Client::connect(addr).map_err(|e| format!("cannot reach scan service at {addr}: {e}"))?;
    let s = client.shutdown()?;
    println!("scan service at {addr} draining; final counters:");
    print_status(addr, &s);
    Ok(ExitCode::SUCCESS)
}

fn synth_pkg(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let out_path = *positionals(args)
        .first()
        .ok_or("synth-pkg: missing <out.sapk>")?;
    let index = flag_value(args, "--index").unwrap_or(0);
    let mut cfg = saint_corpus::RealWorldConfig::small();
    cfg.apps = index + 1;
    let corpus = saint_corpus::RealWorldCorpus::new(cfg);
    let apk = corpus.get(index).apk;
    std::fs::write(out_path, codec::encode_apk(&apk))?;
    println!(
        "wrote synthesized package {} to {out_path}",
        apk.manifest.package
    );
    Ok(ExitCode::SUCCESS)
}

/// `synth-lineage <out-dir>`: write a synthesized app-update lineage
/// (`v0.sapk` … `vN.sapk`) with controlled churn between versions — the
/// input `scan --history` and the CI incremental smoke consume.
fn synth_lineage(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let out_dir = *positionals(args)
        .first()
        .ok_or("synth-lineage: missing <out-dir>")?;
    let mut cfg = saint_corpus::LineageConfig::small();
    if let Some(versions) = flag_value(args, "--versions") {
        cfg.versions = versions.max(2);
        // Keep the canonical shape on shorter lineages: the issue is
        // introduced at v1 and fixed in the newest version.
        cfg.introduce_at = Some(1);
        cfg.fix_at = (cfg.versions > 2).then(|| cfg.versions - 1);
    }
    if let Some(pct) = flag_value(args, "--churn-pct") {
        cfg.churn = f64::from(u32::try_from(pct.min(100)).unwrap_or(100)) / 100.0;
    }
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = seed as u64;
    }
    std::fs::create_dir_all(out_dir)?;
    let lineage = saint_corpus::generate_lineage(&cfg);
    for (label, apk) in &lineage {
        let path = std::path::Path::new(out_dir).join(format!("{label}.sapk"));
        std::fs::write(&path, codec::encode_apk(apk))?;
    }
    println!(
        "wrote {}-version lineage of {} to {out_dir}/ ({:.0}% churn per version)",
        lineage.len(),
        lineage
            .first()
            .map_or("?", |(_, apk)| apk.manifest.package.as_str()),
        cfg.churn * 100.0
    );
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------
// Frozen-artifact verbs
// ---------------------------------------------------------------------

fn compile_db(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let out_path = *positionals(args)
        .first()
        .ok_or("compile-db: missing <out.sfrz>")?;
    let fw = framework(args);
    let bytes = saint_frozen::freeze_framework(&fw);
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(out_path, &bytes)?;
    // Attach what we just wrote: proves the image is readable and
    // reports the class count out of the image itself.
    let frozen = saint_frozen::FrozenFramework::open(std::path::Path::new(out_path))
        .map_err(|e| format!("compiled image failed to attach: {e}"))?;
    println!(
        "wrote frozen framework image to {out_path}: {} bytes, {} class entries, fingerprint {:016x}",
        bytes.len(),
        frozen.class_entry_count(),
        frozen.fingerprint()
    );
    Ok(ExitCode::SUCCESS)
}

fn compile_corpus(args: &[String]) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let out_path = string_flag(args, "-o").ok_or("compile-corpus: missing -o <out.sfrz>")?;
    let paths = positionals(args);
    let image = if let Some(apps) = flag_value(args, "--synth-corpus") {
        if !paths.is_empty() {
            return Err("compile-corpus: give either <app.sapk> files or --synth-corpus N".into());
        }
        let mut cfg = saint_corpus::RealWorldConfig::small();
        cfg.apps = apps;
        let corpus = saint_corpus::RealWorldCorpus::new(cfg);
        let apks: Vec<Apk> = (0..apps).map(|i| corpus.get(i).apk).collect();
        saint_frozen::freeze_apks(&apks)
    } else {
        if paths.is_empty() {
            return Err("compile-corpus: missing <app.sapk> (or --synth-corpus N)".into());
        }
        // The image stores the exact container bytes: workers later
        // decode the same bytes they would have read from each file.
        let mut packages: Vec<(String, Vec<u8>)> = Vec::with_capacity(paths.len());
        for path in paths {
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let apk = codec::decode_apk(&bytes).map_err(|e| format!("{path}: {e}"))?;
            packages.push((apk.manifest.package.clone(), bytes));
        }
        saint_frozen::freeze_corpus(packages.iter().map(|(p, b)| (p.as_str(), b.as_slice())))
    };
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(out_path, &image)?;
    let corpus = saint_frozen::FrozenCorpus::open(std::path::Path::new(out_path))
        .map_err(|e| format!("compiled image failed to attach: {e}"))?;
    println!(
        "wrote frozen corpus image to {out_path}: {} packages, {} bytes",
        corpus.len(),
        image.len()
    );
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_skip_flag_values_everywhere() {
        // The historical bug: `verify --synth 100 app.sapk` parsed
        // `--synth` as the package path because the verb used
        // `args.first()`.
        let a = args(&["--synth", "100", "app.sapk"]);
        assert_eq!(positionals(&a), [&"app.sapk".to_string()]);
        assert_eq!(sole_package(&a, "verify").unwrap(), "app.sapk");

        // Flags after the positional are equally fine.
        let a = args(&["app.sapk", "--jobs", "4"]);
        assert_eq!(sole_package(&a, "callgraph").unwrap(), "app.sapk");

        // Every value-taking flag is skipped with its value.
        let a = args(&[
            "--addr",
            "127.0.0.1:9999",
            "a.sapk",
            "--timeout-ms",
            "500",
            "b.sapk",
            "--queue-depth",
            "8",
        ]);
        assert_eq!(
            positionals(&a),
            [&"a.sapk".to_string(), &"b.sapk".to_string()]
        );
    }

    #[test]
    fn repair_output_flag_is_not_a_positional() {
        let a = args(&["broken.sapk", "-o", "fixed.sapk", "--manifest-fixes"]);
        assert_eq!(sole_package(&a, "repair").unwrap(), "broken.sapk");
        assert_eq!(string_flag(&a, "-o"), Some("fixed.sapk"));
        // Flag order must not matter either.
        let a = args(&["-o", "fixed.sapk", "broken.sapk"]);
        assert_eq!(sole_package(&a, "repair").unwrap(), "broken.sapk");
    }

    #[test]
    fn missing_package_is_reported_per_verb() {
        let a = args(&["--synth", "100"]);
        assert_eq!(
            sole_package(&a, "disasm").unwrap_err(),
            "disasm: missing <app.sapk>"
        );
    }

    #[test]
    fn value_flags_parse_numbers_and_strings() {
        let a = args(&["serve", "--listen", "127.0.0.1:0", "--jobs", "3"]);
        assert_eq!(string_flag(&a, "--listen"), Some("127.0.0.1:0"));
        assert_eq!(flag_value(&a, "--jobs"), Some(3));
        assert_eq!(flag_value(&a, "--queue-depth"), None);
        assert_eq!(string_flag(&a, "--addr"), None);
    }

    #[test]
    fn exit_code_contract_over_reports() {
        let clean = saintdroid::Report::new("p.clean", "saintdroid");
        assert_eq!(
            scan_exit_code(std::slice::from_ref(&clean)),
            ExitCode::SUCCESS
        );
        assert_eq!(scan_exit_code(&[]), ExitCode::SUCCESS);
        let mut dirty = saintdroid::Report::new("p.dirty", "saintdroid");
        dirty.extend_deduped([saintdroid::Mismatch {
            kind: saintdroid::MismatchKind::ApiInvocation,
            site: saint_ir::MethodRef::new("p.C", "m", "()V"),
            api: saint_ir::MethodRef::new("android.x.Y", "api", "()V"),
            api_life: None,
            missing_levels: vec![saint_ir::ApiLevel::new(21)],
            context: None,
            permission: None,
            via: Vec::new(),
        }]);
        assert_eq!(scan_exit_code(&[clean, dirty]), ExitCode::from(2));
    }
}
