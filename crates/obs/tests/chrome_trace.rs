//! Validates that the hand-emitted trace export is *well-formed Chrome
//! trace JSON*: a real JSON parser (serde_json, dev-dependency only)
//! must accept the document, and every event must carry the fields the
//! Chrome trace event format requires of a complete (`ph: "X"`) span.
//! This is the same document `saint-cli scan --trace-json` writes.

use std::time::Duration;

use saint_obs::{Phase, TraceSink};

fn assert_well_formed_chrome_trace(json: &str, expected_events: usize) {
    let doc: serde::Value =
        serde_json::from_str_value(json).expect("trace output must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("top-level traceEvents array");
    assert_eq!(events.len(), expected_events);
    for event in events {
        assert_eq!(event.get("ph").and_then(serde::Value::as_str), Some("X"));
        assert!(event.get("name").and_then(serde::Value::as_str).is_some());
        assert!(event.get("cat").and_then(serde::Value::as_str).is_some());
        for field in ["ts", "dur", "pid", "tid"] {
            assert!(
                event.get(field).and_then(serde::Value::as_u64).is_some(),
                "event field {field} must be a non-negative integer: {event:?}"
            );
        }
    }
}

#[test]
fn trace_export_parses_as_chrome_trace_json() {
    let sink = TraceSink::new();
    let epoch = sink.epoch();
    // One span per phase, including a name with every JSON
    // metacharacter the emitter must escape.
    for (i, phase) in Phase::ALL.iter().enumerate() {
        sink.complete(
            format!("span {i} \"quoted\" back\\slash\nnewline"),
            phase.name(),
            epoch + Duration::from_micros(i as u64 * 100),
            Duration::from_micros(42),
        );
    }
    assert_well_formed_chrome_trace(&sink.to_chrome_json(), Phase::ALL.len());
}

#[test]
fn empty_trace_is_still_well_formed() {
    let sink = TraceSink::new();
    assert_well_formed_chrome_trace(&sink.to_chrome_json(), 0);
}
