//! # saint-obs — the observability layer
//!
//! The SAINTDroid reproduction's scalability story (the paper's
//! Tables III–IV and Fig. 4) is a claim about *where time goes*:
//! gradual class loading trades exploration breadth for per-class
//! materialization cost, and the batch/daemon layers amortize that
//! cost across apps. This crate gives every layer one shared,
//! lock-cheap vocabulary for substantiating that story:
//!
//! * [`MetricsRegistry`] — per-[`Phase`] span accounting (count, total
//!   time, log2 latency histogram) plus monotone [`Counter`]s, all on
//!   relaxed atomics so recording never perturbs what it measures.
//! * [`MetricsSnapshot`] — the unified read side: registry contents
//!   plus the three cache surfaces (class / artifact / deep-scan),
//!   load-meter byte totals, and daemon queue state, in one type that
//!   the NDJSON `metrics` request, the bench summary, and tests all
//!   share.
//! * [`TraceSink`] — Chrome-trace span export for
//!   `saint-cli scan --trace-json`.
//!
//! The crate is deliberately std-only: it sits under every other crate
//! in the workspace and must never drag serialization or locking
//! dependencies onto the per-class hot path.

mod registry;
mod trace;

pub use registry::{
    Counter, CounterSnapshot, LatencyHistogram, MetricsRegistry, Phase, PhaseMetrics,
    PhaseSnapshot, RegistrySnapshot, HIST_BUCKETS,
};
pub use trace::{TraceEvent, TraceSink};

/// Point-in-time view of one cache: the class cache, artifact cache,
/// or deep-scan cache. Maintains the invariant
/// `hits + misses == lookups` (each lookup resolves to exactly one of
/// the two outcomes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Total probes.
    pub lookups: u64,
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to materialize.
    pub misses: u64,
    /// Entries resident right now.
    pub entries: u64,
}

impl CacheSnapshot {
    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Unified load-meter totals (the paper's Fig. 4 byte accounting),
/// accumulated across every scanned app via the registry's monotone
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeterSnapshot {
    /// Classes materialized.
    pub classes_loaded: u64,
    /// Bytes of class metadata loaded.
    pub class_bytes: u64,
    /// Method bodies analyzed.
    pub methods_analyzed: u64,
    /// Bytes of graph/artifact storage built.
    pub graph_bytes: u64,
    /// Lookups no provider could resolve.
    pub unresolved_lookups: u64,
}

impl MeterSnapshot {
    /// Total bytes charged (class metadata + graphs).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.class_bytes + self.graph_bytes
    }
}

/// Point-in-time view of the daemon's job queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Jobs waiting for a worker right now.
    pub depth: u64,
    /// Admission-control capacity.
    pub capacity: u64,
    /// Jobs currently being scanned.
    pub active: u64,
    /// Jobs completed since startup.
    pub served: u64,
    /// Jobs rejected because the queue was full.
    pub rejected_busy: u64,
    /// Jobs whose deadline expired while queued.
    pub timed_out: u64,
}

/// The one unified metrics view: everything the stack knows about
/// where time and memory went, assembled by the scan engine (and
/// extended with queue state by the daemon).
///
/// Cache fields are `None` when the corresponding cache is not
/// attached (e.g. a bare `SaintDroid` without shared caches); `queue`
/// is `None` outside the daemon.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Phase spans and monotone counters.
    pub registry: RegistrySnapshot,
    /// Class cache (`(ApiLevel, ClassName)` → class) state.
    pub class_cache: Option<CacheSnapshot>,
    /// Artifact cache (`(ApiLevel, MethodRef)` → artifacts) state.
    pub artifact_cache: Option<CacheSnapshot>,
    /// Deep-scan cache (subtree findings) state.
    pub deep_scan_cache: Option<CacheSnapshot>,
    /// Accumulated load-meter totals.
    pub meter: MeterSnapshot,
    /// Daemon queue state, when serving.
    pub queue: Option<QueueSnapshot>,
}

impl MetricsSnapshot {
    /// Derives the meter view from the registry's monotone counters.
    #[must_use]
    pub fn meter_from(registry: &RegistrySnapshot) -> MeterSnapshot {
        let get = |name: &str| registry.counter(name).unwrap_or(0);
        MeterSnapshot {
            classes_loaded: get("classes_loaded"),
            class_bytes: get("class_bytes"),
            methods_analyzed: get("methods_analyzed"),
            graph_bytes: get("graph_bytes"),
            unresolved_lookups: get("unresolved_lookups"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_snapshot_hit_rate() {
        let c = CacheSnapshot {
            lookups: 10,
            hits: 7,
            misses: 3,
            entries: 3,
        };
        assert!((c.hit_rate() - 0.7).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn meter_derives_from_counters() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::ClassesLoaded, 4);
        reg.add(Counter::ClassBytes, 1000);
        reg.add(Counter::GraphBytes, 24);
        let meter = MetricsSnapshot::meter_from(&reg.snapshot());
        assert_eq!(meter.classes_loaded, 4);
        assert_eq!(meter.total_bytes(), 1024);
    }
}
