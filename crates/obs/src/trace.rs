//! Chrome-trace span export.
//!
//! [`TraceSink`] collects *complete* spans (`ph: "X"` in the Chrome
//! trace event format) and serializes them to the JSON grammar that
//! `chrome://tracing` / Perfetto load directly. Recording appends to a
//! per-thread shard — a short uncontended lock per span, never a
//! global one — and shards are merged only at export time, so tracing
//! a parallel scan does not serialize its workers.
//!
//! The emitter is hand-rolled: the grammar is tiny and fixed, and
//! keeping it local is what lets this crate stay dependency-free.

use std::sync::atomic::{AtomicU64, Ordering};

use saint_sync::Mutex;
use std::time::{Duration, Instant};

/// Number of shard locks. Spans are routed by a per-thread id, so with
/// a handful of workers each shard is effectively thread-private.
const SHARDS: usize = 16;

thread_local! {
    static THREAD_SLOT: u64 = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

static NEXT_THREAD_SLOT: AtomicU64 = AtomicU64::new(1);

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Display name, e.g. `scan com.example.app`.
    pub name: String,
    /// Category, conventionally the [`crate::Phase`] name.
    pub cat: &'static str,
    /// Microseconds since the sink's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Small dense id of the recording thread.
    pub tid: u64,
}

/// Collects complete spans and renders them as Chrome trace JSON.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    shards: [Mutex<Vec<TraceEvent>>; SHARDS],
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Creates an empty sink; `ts` fields are measured from now.
    #[must_use]
    pub fn new() -> Self {
        TraceSink {
            epoch: Instant::now(),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
        }
    }

    /// The instant all span timestamps are relative to.
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Records a completed span that started at `start` and ran for
    /// `dur`. `start` must not precede the sink's epoch (clamped to it
    /// if it somehow does).
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        start: Instant,
        dur: Duration,
    ) {
        let ts_us = start
            .saturating_duration_since(self.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let dur_us = dur.as_micros().min(u128::from(u64::MAX)) as u64;
        let tid = THREAD_SLOT.with(|slot| *slot);
        let event = TraceEvent {
            name: name.into(),
            cat,
            ts_us,
            dur_us,
            tid,
        };
        let shard = (tid as usize) % SHARDS;
        // saint-sync recovers a shard whose writer panicked mid-span,
        // so tracing a crashing scan never wedges later exports.
        self.shards[shard].lock().push(event);
    }

    /// Total spans recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no spans have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges all shards into one timestamp-ordered event list.
    #[must_use]
    pub fn drain_sorted(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for shard in &self.shards {
            all.append(&mut shard.lock());
        }
        // Deterministic order: by start time, then thread, then name.
        all.sort_by(|a, b| (a.ts_us, a.tid, &a.name).cmp(&(b.ts_us, b.tid, &b.name)));
        all
    }

    /// Renders every recorded span as a Chrome trace JSON document:
    /// `{"displayTimeUnit":"ms","traceEvents":[...]}` with one
    /// `ph: "X"` (complete) event per span. The sink is drained.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let events = self.drain_sorted();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &e.name);
            out.push_str(",\"cat\":");
            push_json_string(&mut out, e.cat);
            out.push_str(",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&e.ts_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&e.dur_us.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal, escaping the characters JSON
/// requires (quote, backslash, and control characters).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_survive_the_round_trip() {
        let sink = TraceSink::new();
        let start = sink.epoch();
        sink.complete(
            "scan com.example",
            "scan_total",
            start,
            Duration::from_micros(1500),
        );
        sink.complete("explore", "explore", start, Duration::from_micros(700));
        assert_eq!(sink.len(), 2);
        let json = sink.to_chrome_json();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1500"));
        // Export drains the sink.
        assert!(sink.is_empty());
    }

    #[test]
    fn names_with_json_metacharacters_are_escaped() {
        let sink = TraceSink::new();
        sink.complete(
            "weird \"name\"\\with\ncontrol\u{1}",
            "scan_total",
            sink.epoch(),
            Duration::ZERO,
        );
        let json = sink.to_chrome_json();
        assert!(json.contains("weird \\\"name\\\"\\\\with\\ncontrol\\u0001"));
    }

    #[test]
    fn merged_output_is_timestamp_ordered_across_threads() {
        let sink = std::sync::Arc::new(TraceSink::new());
        let epoch = sink.epoch();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sink = std::sync::Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..50u64 {
                        sink.complete(
                            format!("span {t}.{i}"),
                            "explore",
                            epoch + Duration::from_micros(i * 10 + t),
                            Duration::from_micros(5),
                        );
                    }
                });
            }
        });
        let events = sink.drain_sorted();
        assert_eq!(events.len(), 200);
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }
}
