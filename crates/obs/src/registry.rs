//! The metrics registry: per-phase latency accounting and monotone
//! named counters, all on relaxed atomics.
//!
//! Every recording operation is a handful of `fetch_add`s — no locks,
//! no allocation — so the registry can sit on the per-class hot path
//! of the CLVM without perturbing the timings it measures. Workers on
//! any `--jobs/--app-jobs` split write to the same shared atomics;
//! because every write is a pure increment, the merged totals are
//! exact once the scan quiesces, regardless of interleaving. Snapshots
//! taken *while* workers are still recording are monotone
//! lower bounds, never garbage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The pipeline phases SAINTDroid accounts for, mirroring the paper's
/// per-stage measurements (Tables III–IV): gradual class loading
/// (Algorithm 1's materialization step), worklist exploration, API-map
/// mining, and the three mismatch detectors. `ScanTotal` brackets a
/// whole per-app scan; `QueueWait` is daemon-only admission latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// One CLVM class materialization (cache-miss path of `load_class`).
    ClvmLoad = 0,
    /// One Algorithm-1 worklist exploration over an app.
    Explore = 1,
    /// One ARM database / permission-map acquisition.
    ArmMine = 2,
    /// One run of the API-invocation detector over an app model.
    DetectInvocation = 3,
    /// One run of the callback detector over an app model.
    DetectCallback = 4,
    /// One run of the permission detector over an app model.
    DetectPermission = 5,
    /// One whole per-app scan (model build + all detectors + merge).
    ScanTotal = 6,
    /// Time a daemon job spent queued before a worker picked it up.
    QueueWait = 7,
    /// One frozen-artifact attach: mmap + header/checksum verification
    /// + database/permission-map reconstruction.
    FrozenMap = 8,
    /// One run of the declared-SDK consistency detector over an app
    /// model (DSD overuse/underuse vetting).
    DetectDeclaredSdk = 9,
}

impl Phase {
    /// Every phase, in wire order. Snapshot vectors follow this order.
    pub const ALL: [Phase; 10] = [
        Phase::ClvmLoad,
        Phase::Explore,
        Phase::ArmMine,
        Phase::DetectInvocation,
        Phase::DetectCallback,
        Phase::DetectPermission,
        Phase::ScanTotal,
        Phase::QueueWait,
        Phase::FrozenMap,
        Phase::DetectDeclaredSdk,
    ];

    /// Stable snake_case name used on every export surface (NDJSON
    /// `metrics` response, Chrome trace categories, bench columns).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Phase::ClvmLoad => "clvm_load",
            Phase::Explore => "explore",
            Phase::ArmMine => "arm_mine",
            Phase::DetectInvocation => "detect_invocation",
            Phase::DetectCallback => "detect_callback",
            Phase::DetectPermission => "detect_permission",
            Phase::ScanTotal => "scan_total",
            Phase::QueueWait => "queue_wait",
            Phase::FrozenMap => "frozen_map",
            Phase::DetectDeclaredSdk => "detect_declared_sdk",
        }
    }
}

/// Monotone counters. These only ever increase (`add` is the sole
/// mutator), which is what makes cross-snapshot deltas meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Apps fully scanned (bumped once per completed report).
    AppsScanned = 0,
    /// Mismatches across all findings families, post-dedup.
    MismatchesFound = 1,
    /// Classes materialized by the CLVM (sum of per-app meters).
    ClassesLoaded = 2,
    /// Bytes of class metadata charged by the load meter.
    ClassBytes = 3,
    /// Method bodies pushed through the worklist.
    MethodsAnalyzed = 4,
    /// Bytes of graph/artifact storage charged by the load meter.
    GraphBytes = 5,
    /// Lookups the CLVM could not resolve against any provider.
    UnresolvedLookups = 6,
    /// Call sites inspected by the invocation detector.
    InvocationSitesScanned = 7,
    /// App-declared overrides checked by the callback detector.
    CallbackOverridesChecked = 8,
    /// Permission-protected API uses checked by the permission detector.
    PermissionChecksPerformed = 9,
    /// Scans that panicked and were converted to a typed
    /// `ScanError::Internal` by an isolation boundary (engine
    /// `catch_unwind`, daemon worker guard, handler-side decode).
    ScansPanicked = 10,
    /// Daemon scan workers that died and were respawned by the
    /// supervisor.
    WorkersRespawned = 11,
    /// Client-side retries of transient failures (connect/reset,
    /// `busy`, worker-crash `internal`).
    ClientRetries = 12,
    /// Bytes of frozen artifact images currently attached (mmapped or,
    /// on fallback, read into memory).
    FrozenBytesMapped = 13,
    /// Client connections accepted by the daemon's reactor.
    ConnectionsAccepted = 14,
    /// Times the reactor suspended reading a connection (its in-flight
    /// window filled, or the job queue was at capacity).
    BackpressureSuspends = 15,
    /// Response writes that hit a full socket buffer and had to wait
    /// for writability (slow or stalled readers).
    WriteStalls = 16,
    /// Campaign work units handed to a daemon shard by the driver
    /// (a unit dispatched twice after failover counts twice).
    AppsDispatched = 17,
    /// Campaign work units completed and journaled exactly once.
    AppsCompleted = 18,
    /// Campaign work units re-dispatched after a transient failure or
    /// a daemon loss (failover re-queues count here, once per unit).
    Resubmissions = 19,
    /// Daemons declared dead by the campaign driver, with their
    /// residual shard reassigned to survivors.
    DaemonFailovers = 20,
    /// Batched fsync checkpoints flushed by the campaign journal.
    CheckpointFlushes = 21,
    /// App classes whose cached delta artifacts were reused verbatim.
    DeltaHits = 22,
    /// App classes with no usable cached artifact (first sight, hash
    /// change, corrupt/skewed store entry). `hits + misses` equals the
    /// classes seen by the delta scanner.
    DeltaMisses = 23,
    /// App classes actually pushed through a fresh per-group analysis
    /// (equals `delta_misses` unless a fallback full rescan widened the
    /// re-analyzed slice).
    ClassesReanalyzed = 24,
    /// DSD-overuse findings (unguarded use of an API above the declared
    /// `minSdkVersion`) across all vetted apps, post-dedup.
    DsdOveruseFound = 25,
    /// DSD-underuse findings (declared SDK bounds inconsistent with
    /// actual API usage) across all vetted apps, post-dedup.
    DsdUnderuseFound = 26,
    /// Apps pushed through the declared-SDK vetting pass (bumped once
    /// per scan whose detector set enables the DSD family; always
    /// `<= apps_scanned`).
    AppsVetted = 27,
}

impl Counter {
    /// Every counter, in wire order. Snapshot vectors follow this order.
    pub const ALL: [Counter; 28] = [
        Counter::AppsScanned,
        Counter::MismatchesFound,
        Counter::ClassesLoaded,
        Counter::ClassBytes,
        Counter::MethodsAnalyzed,
        Counter::GraphBytes,
        Counter::UnresolvedLookups,
        Counter::InvocationSitesScanned,
        Counter::CallbackOverridesChecked,
        Counter::PermissionChecksPerformed,
        Counter::ScansPanicked,
        Counter::WorkersRespawned,
        Counter::ClientRetries,
        Counter::FrozenBytesMapped,
        Counter::ConnectionsAccepted,
        Counter::BackpressureSuspends,
        Counter::WriteStalls,
        Counter::AppsDispatched,
        Counter::AppsCompleted,
        Counter::Resubmissions,
        Counter::DaemonFailovers,
        Counter::CheckpointFlushes,
        Counter::DeltaHits,
        Counter::DeltaMisses,
        Counter::ClassesReanalyzed,
        Counter::DsdOveruseFound,
        Counter::DsdUnderuseFound,
        Counter::AppsVetted,
    ];

    /// Stable snake_case name used on every export surface.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Counter::AppsScanned => "apps_scanned",
            Counter::MismatchesFound => "mismatches_found",
            Counter::ClassesLoaded => "classes_loaded",
            Counter::ClassBytes => "class_bytes",
            Counter::MethodsAnalyzed => "methods_analyzed",
            Counter::GraphBytes => "graph_bytes",
            Counter::UnresolvedLookups => "unresolved_lookups",
            Counter::InvocationSitesScanned => "invocation_sites_scanned",
            Counter::CallbackOverridesChecked => "callback_overrides_checked",
            Counter::PermissionChecksPerformed => "permission_checks_performed",
            Counter::ScansPanicked => "scans_panicked",
            Counter::WorkersRespawned => "workers_respawned",
            Counter::ClientRetries => "client_retries",
            Counter::FrozenBytesMapped => "frozen_bytes_mapped",
            Counter::ConnectionsAccepted => "connections_accepted",
            Counter::BackpressureSuspends => "backpressure_suspends",
            Counter::WriteStalls => "write_stalls",
            Counter::AppsDispatched => "apps_dispatched",
            Counter::AppsCompleted => "apps_completed",
            Counter::Resubmissions => "resubmissions",
            Counter::DaemonFailovers => "daemon_failovers",
            Counter::CheckpointFlushes => "checkpoint_flushes",
            Counter::DeltaHits => "delta_hits",
            Counter::DeltaMisses => "delta_misses",
            Counter::ClassesReanalyzed => "classes_reanalyzed",
            Counter::DsdOveruseFound => "dsd_overuse_found",
            Counter::DsdUnderuseFound => "dsd_underuse_found",
            Counter::AppsVetted => "apps_vetted",
        }
    }
}

/// Number of log2 latency buckets. Bucket `i` counts samples with
/// `2^(i-1) µs <= latency < 2^i µs` (bucket 0 is `< 1 µs`); the last
/// bucket absorbs everything from ~4.2 s up.
pub const HIST_BUCKETS: usize = 23;

/// A fixed-size log2 histogram of latencies in microseconds.
///
/// Log2 bucketing gives ~2× resolution across nine decades in 23
/// words, which is plenty to tell "the explore phase went from tens of
/// µs to tens of ms" — the regression shape that matters — without
/// per-sample storage.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl LatencyHistogram {
    /// Maps a duration to its bucket index.
    #[must_use]
    pub fn bucket_of(d: Duration) -> usize {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        if us == 0 {
            return 0;
        }
        // 1 µs → bucket 1, 2–3 µs → bucket 2, 4–7 µs → bucket 3, …
        let b = 64 - u64::leading_zeros(us) as usize;
        b.min(HIST_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts out.
    #[must_use]
    pub fn snapshot(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }
}

/// Accumulated observations for one [`Phase`]: sample count, total
/// time, and a latency histogram.
#[derive(Debug, Default)]
pub struct PhaseMetrics {
    count: AtomicU64,
    total_ns: AtomicU64,
    hist: LatencyHistogram,
}

impl PhaseMetrics {
    /// Records one completed span of this phase.
    pub fn record(&self, elapsed: Duration) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.hist.record(elapsed);
    }

    /// Number of spans recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across all recorded spans.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

/// Point-in-time copy of one phase's accumulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Stable phase name (see [`Phase::name`]).
    pub name: &'static str,
    /// Spans recorded.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
    /// Log2-µs latency buckets (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl PhaseSnapshot {
    /// Total time as seconds, for human-facing summaries.
    #[must_use]
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// Point-in-time copy of one monotone counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Stable counter name (see [`Counter::name`]).
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// Point-in-time copy of the whole registry. Phases and counters
/// appear in `Phase::ALL` / `Counter::ALL` order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// All phase accumulators.
    pub phases: Vec<PhaseSnapshot>,
    /// All monotone counters.
    pub counters: Vec<CounterSnapshot>,
}

impl RegistrySnapshot {
    /// Looks up a phase by its stable name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Looks up a counter value by its stable name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// The shared registry: one `PhaseMetrics` per [`Phase`] plus one
/// atomic per [`Counter`]. Cheap to share (`Arc`), cheap to write
/// (relaxed `fetch_add`), and impossible to reset — counters are
/// monotone by construction, which is what the test oracle leans on.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    phases: [PhaseMetrics; Phase::ALL.len()],
    counters: [AtomicU64; Counter::ALL.len()],
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulator for one phase.
    #[must_use]
    pub fn phase(&self, phase: Phase) -> &PhaseMetrics {
        &self.phases[phase as usize]
    }

    /// Records one completed span of `phase`.
    pub fn record(&self, phase: Phase, elapsed: Duration) {
        self.phase(phase).record(elapsed);
    }

    /// Times `f` and records it under `phase`.
    pub fn time<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(phase, start.elapsed());
        out
    }

    /// Adds `n` to a monotone counter.
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of a monotone counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Copies every accumulator out. Exact once recording threads have
    /// quiesced; a monotone lower bound while they are still running.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            phases: Phase::ALL
                .iter()
                .map(|&p| {
                    let m = self.phase(p);
                    PhaseSnapshot {
                        name: p.name(),
                        count: m.count(),
                        total_ns: m.total_ns(),
                        buckets: m.hist.snapshot().to_vec(),
                    }
                })
                .collect(),
            counters: Counter::ALL
                .iter()
                .map(|&c| CounterSnapshot {
                    name: c.name(),
                    value: self.counter(c),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_log2_microseconds() {
        assert_eq!(LatencyHistogram::bucket_of(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(999)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(2)), 2);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(3)), 2);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(4)), 3);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1023)), 10);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1024)), 11);
        // The last bucket absorbs arbitrarily long samples.
        assert_eq!(
            LatencyHistogram::bucket_of(Duration::from_secs(3600)),
            HIST_BUCKETS - 1
        );
    }

    #[test]
    fn histogram_count_equals_phase_count() {
        let reg = MetricsRegistry::new();
        for us in [0u64, 1, 5, 900, 4096, 1_000_000] {
            reg.record(Phase::Explore, Duration::from_micros(us));
        }
        let snap = reg.snapshot();
        let explore = snap.phase("explore").unwrap();
        assert_eq!(explore.count, 6);
        assert_eq!(explore.buckets.iter().sum::<u64>(), 6);
        // Untouched phases stay empty.
        assert_eq!(snap.phase("clvm_load").unwrap().count, 0);
    }

    #[test]
    fn counters_are_monotone_and_named() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::AppsScanned, 3);
        reg.add(Counter::AppsScanned, 2);
        assert_eq!(reg.counter(Counter::AppsScanned), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("apps_scanned"), Some(5));
        assert_eq!(snap.counter("mismatches_found"), Some(0));
        assert_eq!(snap.counter("no_such_counter"), None);
    }

    #[test]
    fn concurrent_recording_merges_exactly() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.add(Counter::MethodsAnalyzed, 1);
                        reg.record(Phase::ClvmLoad, Duration::from_micros(7));
                    }
                });
            }
        });
        assert_eq!(reg.counter(Counter::MethodsAnalyzed), 4000);
        let clvm = reg.snapshot();
        let clvm = clvm.phase("clvm_load").unwrap();
        assert_eq!(clvm.count, 4000);
        assert_eq!(clvm.buckets.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn time_returns_closure_result_and_records() {
        let reg = MetricsRegistry::new();
        let out = reg.time(Phase::ArmMine, || 42);
        assert_eq!(out, 42);
        assert_eq!(reg.phase(Phase::ArmMine).count(), 1);
    }
}
