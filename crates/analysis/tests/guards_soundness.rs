//! Soundness property for the guard analysis: for any randomly shaped
//! guard structure and any concrete device level inside the incoming
//! range, every block a concrete execution visits must carry a static
//! range containing that level. (The analysis may over-approximate —
//! a block's range may include levels that never reach it — but it must
//! never exclude a level that does.)

use proptest::collection::vec;
use proptest::prelude::*;
use saint_analysis::{AbsState, BlockRanges, Cfg};
use saint_ir::{
    ApiLevel, BlockId, BodyBuilder, Cond, Instr, LevelRange, MethodBody, Operand, Terminator,
};

#[derive(Debug, Clone)]
enum GuardShape {
    AtLeast(u8),
    Below(u8),
    Exact(u8),
    /// Comparison against an opaque value: no refinement possible.
    Opaque,
}

fn arb_guard() -> impl Strategy<Value = GuardShape> {
    prop_oneof![
        (10u8..29).prop_map(GuardShape::AtLeast),
        (10u8..29).prop_map(GuardShape::Below),
        (10u8..29).prop_map(GuardShape::Exact),
        Just(GuardShape::Opaque),
    ]
}

/// Builds a body as a chain of diamonds, one per guard shape.
fn build_body(guards: &[GuardShape]) -> MethodBody {
    let mut b = BodyBuilder::new();
    for g in guards {
        let (cond, rhs_level, opaque) = match g {
            GuardShape::AtLeast(l) => (Cond::Ge, *l, false),
            GuardShape::Below(l) => (Cond::Lt, *l, false),
            GuardShape::Exact(l) => (Cond::Eq, *l, false),
            GuardShape::Opaque => (Cond::Ge, 23, true),
        };
        let scrutinee = if opaque {
            let r = b.alloc_reg();
            b.invoke_static(
                saint_ir::MethodRef::new("a.Env", "flag", "()I"),
                &[],
                Some(r),
            );
            r
        } else {
            b.sdk_int()
        };
        let then_blk = b.new_block();
        let join = b.new_block();
        b.branch_if(cond, scrutinee, i64::from(rhs_level), then_blk, join);
        b.switch_to(then_blk);
        b.pad(1);
        b.goto(join);
        b.switch_to(join);
        b.pad(1);
    }
    b.ret_void();
    b.finish().expect("generated bodies are valid")
}

/// Concretely executes the body at `level`, returning visited blocks.
/// Mirrors the interpreter's branch semantics for the subset of
/// instructions the generator emits (SDK_INT reads and opaque calls
/// returning 0).
fn concrete_visit(body: &MethodBody, level: u8) -> Vec<BlockId> {
    let mut regs = vec![0i64; body.register_count() as usize];
    let mut visited = Vec::new();
    let mut block = BlockId::ENTRY;
    for _ in 0..10_000 {
        visited.push(block);
        for i in &body.block(block).instrs {
            match i {
                Instr::FieldGet { dst, field, .. } if field.is_sdk_int() => {
                    regs[dst.0 as usize] = i64::from(level);
                }
                Instr::Invoke { dst: Some(d), .. } => regs[d.0 as usize] = 0,
                Instr::Const { dst, value } => regs[dst.0 as usize] = *value,
                _ => {}
            }
        }
        match &body.block(block).terminator {
            Terminator::Goto(t) => block = *t,
            Terminator::If {
                cond,
                lhs,
                rhs,
                then_blk,
                else_blk,
            } => {
                let l = regs[lhs.0 as usize];
                let r = match rhs {
                    Operand::Reg(r) => regs[r.0 as usize],
                    Operand::Imm(v) => *v,
                };
                let taken = match cond {
                    Cond::Eq => l == r,
                    Cond::Ne => l != r,
                    Cond::Lt => l < r,
                    Cond::Le => l <= r,
                    Cond::Gt => l > r,
                    Cond::Ge => l >= r,
                };
                block = if taken { *then_blk } else { *else_blk };
            }
            Terminator::Return(_) | Terminator::Throw(_) => return visited,
            Terminator::Switch { default, .. } => block = *default,
        }
    }
    visited
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn static_ranges_cover_every_concrete_execution(
        guards in vec(arb_guard(), 0..6),
        min in 8u8..24,
        span in 1u8..10,
    ) {
        let body = build_body(&guards);
        let cfg = Cfg::build(&body);
        let abs = AbsState::analyze(&body, &cfg);
        let max = min.saturating_add(span).min(29);
        let incoming = LevelRange::new(ApiLevel::new(min), ApiLevel::new(max));
        let ranges = BlockRanges::analyze(&body, &cfg, &abs, incoming);

        for level in incoming.iter() {
            for block in concrete_visit(&body, level.get()) {
                let range = ranges.range(block);
                prop_assert!(
                    range.is_some_and(|r| r.contains(level)),
                    "level {level} reaches {block} but its static range is {range:?}\nbody:\n{body}"
                );
            }
        }
    }

    #[test]
    fn unreachable_blocks_are_never_visited(
        guards in vec(arb_guard(), 0..6),
        min in 8u8..24,
        span in 1u8..10,
    ) {
        let body = build_body(&guards);
        let cfg = Cfg::build(&body);
        let abs = AbsState::analyze(&body, &cfg);
        let max = min.saturating_add(span).min(29);
        let incoming = LevelRange::new(ApiLevel::new(min), ApiLevel::new(max));
        let ranges = BlockRanges::analyze(&body, &cfg, &abs, incoming);

        // A block with no static range must be unreachable at every
        // supported level (the dead-branch elimination is sound).
        for level in incoming.iter() {
            for block in concrete_visit(&body, level.get()) {
                prop_assert!(
                    ranges.range(block).is_some(),
                    "statically-dead {block} executed at level {level}\nbody:\n{body}"
                );
            }
        }
    }
}
