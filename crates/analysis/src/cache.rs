//! A lock-sharded framework-class cache shared across a batch scan.
//!
//! Materializing a framework class from its spec is the single most
//! repeated unit of work in a batch: every app targeting level L that
//! touches `android.app.Activity` re-materializes the same definition.
//! A [`ShardedClassCache`] is `Arc`-shared by every `FrameworkProvider`
//! in a batch, keyed by `(ApiLevel, ClassName)` so apps targeting
//! different levels never see each other's view of the platform.
//!
//! **Metering stays exact.** The cache changes *where a definition
//! comes from*, never *whether an app loads it*: each app's
//! [`LoadMeter`](crate::LoadMeter) records class bytes inside its own
//! CLVM on first per-app load, regardless of whether the `Arc` was
//! freshly materialized or served from this cache. Per-app metered
//! bytes are identical with and without sharing (asserted by the
//! engine's parity tests).
//!
//! Sharding: keys are distributed over N independent
//! `RwLock<HashMap>` shards by a deterministic FNV-1a hash, so scan
//! workers materializing disjoint classes proceed without contention,
//! and concurrent readers of hot classes share read locks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use saint_ir::{ApiLevel, ClassDef, ClassName, MethodRef};
use saint_sync::RwLock;

use crate::explore::MethodArtifacts;

/// Default shard count: enough to keep `jobs` workers from colliding
/// without bloating the struct.
const DEFAULT_SHARDS: usize = 16;

// Two-level maps so the hot path (a read-lock hit) can probe with the
// borrowed `&ClassName` directly — a flat `(ApiLevel, ClassName)` key
// would force cloning the name into a lookup tuple on every hit.
type Shard = RwLock<HashMap<ApiLevel, HashMap<ClassName, Option<Arc<ClassDef>>>>>;

/// A concurrent `(ApiLevel, ClassName) -> Option<Arc<ClassDef>>` map.
///
/// Negative results (`None`: the class does not exist at that level)
/// are cached too — repeated lookups of missing classes are just as
/// common as hits during exploration.
pub struct ShardedClassCache {
    shards: Vec<Shard>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedClassCache {
    /// A cache with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (power of two not required).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        ShardedClassCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, level: ApiLevel, name: &ClassName) -> &Shard {
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ u64::from(level.get());
        for b in name.as_str().bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(hash as usize) % self.shards.len()]
    }

    /// Looks up `(level, name)`, calling `materialize` on a miss.
    ///
    /// The materializer runs *outside* any lock, so a slow
    /// materialization never blocks other shard traffic; if two workers
    /// race on the same key, the first insert wins and both observe the
    /// same `Arc`.
    pub fn get_or_materialize<F>(
        &self,
        level: ApiLevel,
        name: &ClassName,
        materialize: F,
    ) -> Option<Arc<ClassDef>>
    where
        F: FnOnce() -> Option<Arc<ClassDef>>,
    {
        let shard = self.shard_of(level, name);
        // Every probe resolves to exactly one of hit/miss, keeping the
        // observability invariant `hits + misses == lookups` exact.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(cached) = shard.read().get(&level).and_then(|m| m.get(name)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let made = materialize();
        let mut map = shard.write();
        map.entry(level)
            .or_default()
            .entry(name.clone())
            .or_insert(made)
            .clone()
    }

    /// Number of cached keys (positive and negative) across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(HashMap::len).sum::<usize>())
            .sum()
    }

    /// Whether nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl Default for ShardedClassCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ShardedClassCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ShardedClassCache")
            .field("shards", &self.shards.len())
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// A batch-wide cache of framework [`MethodArtifacts`], keyed by
/// `(snapshot level, method)`.
///
/// Exploration builds a CFG and runs the abstract-state fixpoint for
/// every method it visits — including every framework method reached
/// through the beyond-first-level descent. Those artifacts are
/// app-invariant: the framework body at a given snapshot level is the
/// same for every app, so the CFG/abstract-state pair is too. Sharing
/// them turns the dominant exploration cost from per-app into
/// per-batch.
///
/// **Metering stays exact**: each app's `LoadMeter` records the
/// artifact's byte sizes on visit whether the artifact was freshly
/// built or served from here — the recorded value is a pure function of
/// the artifact's content, which is identical either way. App-origin
/// methods are never cached.
#[derive(Default)]
pub struct ArtifactCache {
    map: RwLock<HashMap<ApiLevel, HashMap<MethodRef, Arc<MethodArtifacts>>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `(level, method)`, calling `build` on a miss. `build`
    /// runs outside the lock; if two workers race on the same key, the
    /// first insert wins and both observe the same `Arc`.
    pub fn get_or_build<F>(
        &self,
        level: ApiLevel,
        method: &MethodRef,
        build: F,
    ) -> Arc<MethodArtifacts>
    where
        F: FnOnce() -> Arc<MethodArtifacts>,
    {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(art) = self.map.read().get(&level).and_then(|m| m.get(method)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(art);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = build();
        Arc::clone(
            self.map
                .write()
                .entry(level)
                .or_default()
                .entry(method.clone())
                .or_insert(built),
        )
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().values().map(HashMap::len).sum(),
        }
    }
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ArtifactCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// A snapshot of cache activity. Maintains
/// `hits + misses == lookups`: every probe resolves to exactly one of
/// the two outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total probes.
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the materializer.
    pub misses: u64,
    /// Distinct `(level, class)` keys held.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (zero before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

impl From<CacheStats> for saint_obs::CacheSnapshot {
    fn from(stats: CacheStats) -> Self {
        saint_obs::CacheSnapshot {
            lookups: stats.lookups,
            hits: stats.hits,
            misses: stats.misses,
            entries: stats.entries as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::ClassOrigin;

    fn class(name: &str) -> Option<Arc<ClassDef>> {
        Some(Arc::new(ClassDef::new(name, ClassOrigin::Framework)))
    }

    #[test]
    fn second_lookup_shares_the_arc() {
        let cache = ShardedClassCache::new();
        let name = ClassName::new("android.cache.test.A");
        let level = ApiLevel::new(28);
        let first = cache
            .get_or_materialize(level, &name, || class("android.cache.test.A"))
            .unwrap();
        let second = cache
            .get_or_materialize(level, &name, || panic!("must not re-materialize"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn levels_are_isolated() {
        let cache = ShardedClassCache::new();
        let name = ClassName::new("android.cache.test.B");
        let hit21 = cache.get_or_materialize(ApiLevel::new(21), &name, || None);
        let hit28 =
            cache.get_or_materialize(ApiLevel::new(28), &name, || class("android.cache.test.B"));
        assert!(hit21.is_none());
        assert!(hit28.is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn negative_results_are_cached() {
        let cache = ShardedClassCache::new();
        let name = ClassName::new("android.cache.test.Missing");
        assert!(cache
            .get_or_materialize(ApiLevel::new(28), &name, || None)
            .is_none());
        assert!(cache
            .get_or_materialize(ApiLevel::new(28), &name, || panic!("cached negative"))
            .is_none());
    }

    #[test]
    fn concurrent_fill_converges_to_one_arc() {
        let cache = Arc::new(ShardedClassCache::with_shards(4));
        let results: Vec<Arc<ClassDef>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        cache
                            .get_or_materialize(
                                ApiLevel::new(28),
                                &ClassName::new("android.cache.test.Race"),
                                || class("android.cache.test.Race"),
                            )
                            .unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r));
        }
        assert_eq!(cache.len(), 1);
    }
}
