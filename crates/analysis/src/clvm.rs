//! The Class Loader Virtual Machine (CLVM).
//!
//! Paper §III-A: "SAINTDroid, unlike all the other incompatibility
//! detectors, mimics the incremental loading behavior of the Android
//! runtime during execution … the algorithm uses a worklist that
//! contains an initial list of methods to be explored, and loads
//! classes to which they belong using a Class Loader Virtual Machine
//! (CLVM)."
//!
//! The CLVM owns the provider delegation chain, the set of loaded
//! classes, and the [`LoadMeter`]. Everything downstream (virtual
//! dispatch resolution, override lookup, exploration) loads classes
//! *through* it, so the meter sees exactly what the analysis
//! materializes.
//!
//! **Shared access.** The loaded-class table is sharded over
//! independent `RwLock` shards (the same deterministic FNV-1a
//! distribution as [`ShardedClassCache`](crate::ShardedClassCache)) and
//! the meter is atomic, so [`load_class`](Clvm::load_class),
//! [`resolve_virtual`](Clvm::resolve_virtual),
//! [`resolve_body`](Clvm::resolve_body) and
//! [`framework_ancestor`](Clvm::framework_ancestor) all take `&self`:
//! any number of intra-app exploration workers can drive one CLVM
//! concurrently. Metering stays exact under concurrency because loads
//! are deduplicated per class (only the thread that wins the insert
//! race records the charge) and every charge is a pure function of the
//! materialized content.

use std::collections::HashMap;
use std::sync::Arc;

use saint_ir::{ClassDef, ClassName, MethodDef, MethodRef, MethodSig};
use saint_obs::MetricsRegistry;
use saint_sync::RwLock;

use crate::meter::{AtomicMeter, LoadMeter};
use crate::provider::ClassProvider;

/// Shard count of the loaded-class table: enough to keep a machine's
/// worth of exploration workers from colliding.
const LOADED_SHARDS: usize = 16;

/// Outcome of resolving a virtual call through the loaded hierarchy.
#[derive(Debug, Clone)]
pub enum Resolution {
    /// The declaring class and method were found.
    Found {
        /// The class that actually declares the method.
        declaring: Arc<ClassDef>,
        /// The resolved method reference (`declaring.name` + signature).
        method: MethodRef,
    },
    /// The receiver class chain was fully loaded but no declaration
    /// matched.
    NotFound,
    /// Resolution left the statically analyzable world (class served by
    /// no provider — e.g. code loaded from outside the package, or
    /// native). Such calls are terminals in the call graph (paper
    /// §III-A).
    External(ClassName),
}

type LoadedShard = RwLock<HashMap<ClassName, Option<Arc<ClassDef>>>>;

/// The lazy class loader.
pub struct Clvm {
    providers: Vec<Box<dyn ClassProvider>>,
    loaded: Vec<LoadedShard>,
    meter: AtomicMeter,
    metrics: Option<Arc<MetricsRegistry>>,
}

fn shard_index(name: &ClassName, shards: usize) -> usize {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_str().bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (hash as usize) % shards
}

impl Clvm {
    /// An empty CLVM with no providers.
    #[must_use]
    pub fn new() -> Self {
        Clvm {
            providers: Vec::new(),
            loaded: (0..LOADED_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            meter: AtomicMeter::new(),
            metrics: None,
        }
    }

    /// Appends a provider to the delegation chain.
    pub fn add_provider(&mut self, provider: Box<dyn ClassProvider>) {
        self.providers.push(provider);
    }

    /// Attaches a metrics registry. The registry itself records nothing
    /// here — [`Phase::ClvmLoad`](saint_obs::Phase::ClvmLoad) spans
    /// are recorded by the framework
    /// provider at actual materialization, where the work happens — but
    /// detectors and the exploration reach the registry through this
    /// CLVM, so it rides along with the model.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    /// The attached registry, if any. Detectors reach the registry
    /// through the app model's CLVM via this accessor.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    fn shard(&self, name: &ClassName) -> &LoadedShard {
        &self.loaded[shard_index(name, self.loaded.len())]
    }

    /// Loads a class (materializing and metering it on first access).
    /// Returns `None` when no provider knows the class; the failed
    /// lookup is remembered and metered once.
    pub fn load_class(&self, name: &ClassName) -> Option<Arc<ClassDef>> {
        let shard = self.shard(name);
        // Probe before inserting: hits are the overwhelmingly common
        // case during exploration and must not clone the name or take
        // the write lock.
        if let Some(cached) = shard.read().get(name) {
            return cached.clone();
        }
        // Materialize outside any lock: providers may be slow, and two
        // workers racing on the same name produce identical definitions
        // (materialization is a pure function of provider content).
        // `Phase::ClvmLoad` spans are recorded inside the framework
        // provider, around actual materialization only — a probe that
        // resolves to a shared-cache `Arc` clone is not loading work.
        let found = self.providers.iter().find_map(|p| p.find_class(name));
        let mut map = shard.write();
        if let Some(cached) = map.get(name) {
            // Lost the race: the winner already recorded the charge.
            return cached.clone();
        }
        match &found {
            Some(c) => self.meter.record_class(c.size_bytes()),
            None => self.meter.record_unresolved(),
        }
        map.insert(name.clone(), found.clone());
        found
    }

    /// Whether a class has already been loaded (without loading it).
    #[must_use]
    pub fn is_loaded(&self, name: &ClassName) -> bool {
        matches!(self.shard(name).read().get(name), Some(Some(_)))
    }

    /// Eagerly loads every class every provider can serve — the
    /// monolithic strategy of the baseline tools (paper §II-D:
    /// "Existing analysis techniques first load all code in the project
    /// and then perform analysis on the loaded code").
    pub fn load_everything(&self) {
        let names: Vec<ClassName> = self
            .providers
            .iter()
            .flat_map(|p| p.class_names())
            .collect();
        for name in names {
            self.load_class(&name);
        }
    }

    /// All class names every provider can serve, without loading.
    #[must_use]
    pub fn available_class_names(&self) -> Vec<ClassName> {
        self.providers
            .iter()
            .flat_map(|p| p.class_names())
            .collect()
    }

    /// Resolves a virtual/interface call: loads the static receiver
    /// class and walks up the superclass chain until a declaration of
    /// the signature is found.
    pub fn resolve_virtual(&self, call: &MethodRef) -> Resolution {
        let sig = call.signature();
        let mut current = call.class.clone();
        for _ in 0..64 {
            let Some(class) = self.load_class(&current) else {
                return Resolution::External(current);
            };
            if class.method(&sig).is_some() {
                let method = sig.on_class(class.name.clone());
                return Resolution::Found {
                    declaring: class,
                    method,
                };
            }
            match &class.super_class {
                Some(sup) => current = sup.clone(),
                None => return Resolution::NotFound,
            }
        }
        Resolution::NotFound
    }

    /// Finds the concrete [`MethodDef`] for a resolved call, if the
    /// declaring class carries a body.
    pub fn resolve_body(&self, call: &MethodRef) -> Option<(Arc<ClassDef>, MethodRef)> {
        match self.resolve_virtual(call) {
            Resolution::Found { declaring, method } => {
                let has_body = declaring
                    .method(&method.signature())
                    .is_some_and(|m| m.body.is_some());
                has_body.then_some((declaring, method))
            }
            _ => None,
        }
    }

    /// Walks the loaded superclass chain from `class` (exclusive) and
    /// returns the first *framework-provided* ancestor name, loading
    /// classes along the way. Used by the callback detector to find
    /// which framework class an app class ultimately extends.
    pub fn framework_ancestor(&self, class: &ClassName) -> Option<ClassName> {
        let mut current = self.load_class(class)?.super_class.clone();
        for _ in 0..64 {
            let sup_name = current?;
            match self.load_class(&sup_name) {
                Some(sup) => {
                    if matches!(sup.origin, saint_ir::ClassOrigin::Framework) {
                        return Some(sup_name);
                    }
                    current = sup.super_class.clone();
                }
                // Unresolvable super: treat its *name* as the framework
                // boundary if it looks like one, else give up.
                None => {
                    return sup_name.is_framework_namespace().then_some(sup_name);
                }
            }
        }
        None
    }

    /// Looks up the method definition on an already-resolved class.
    #[must_use]
    pub fn method_def<'a>(class: &'a ClassDef, sig: &MethodSig) -> Option<&'a MethodDef> {
        class.method(sig)
    }

    /// The meter's current snapshot. Exact once all threads driving
    /// this CLVM have finished.
    #[must_use]
    pub fn meter(&self) -> LoadMeter {
        self.meter.snapshot()
    }

    /// Shared access for exploration code that meters method analysis.
    #[must_use]
    pub fn meter_ref(&self) -> &AtomicMeter {
        &self.meter
    }

    /// Number of distinct classes successfully loaded.
    #[must_use]
    pub fn loaded_count(&self) -> usize {
        self.loaded
            .iter()
            .map(|s| s.read().values().filter(|v| v.is_some()).count())
            .sum()
    }

    /// Every load-table entry with its metered byte charge, sorted by
    /// name: `Some(size_bytes)` for materialized classes, `None` for
    /// remembered failed lookups. Each entry corresponds to exactly one
    /// `record_class`/`record_unresolved` meter event, so unioning the
    /// entry sets of several scans reconstructs the class-side meter of
    /// a combined scan (the incremental layer relies on this).
    #[must_use]
    pub fn loaded_entries(&self) -> Vec<(ClassName, Option<usize>)> {
        let mut out: Vec<(ClassName, Option<usize>)> = self
            .loaded
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(n, v)| (n.clone(), v.as_ref().map(|c| c.size_bytes())))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Names of all loaded classes (diagnostics).
    #[must_use]
    pub fn loaded_names(&self) -> Vec<ClassName> {
        self.loaded
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter(|(_, v)| v.is_some())
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

impl Default for Clvm {
    fn default() -> Self {
        Clvm::new()
    }
}

impl std::fmt::Debug for Clvm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Clvm")
            .field("providers", &self.providers.len())
            .field("loaded", &self.loaded_count())
            .field("meter", &self.meter.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{FrameworkProvider, PrimaryDexProvider};
    use saint_adf::AndroidFramework;
    use saint_ir::{ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin};

    fn demo_clvm() -> Clvm {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let mid = ClassBuilder::new("p.Base", ClassOrigin::App)
            .extends("android.app.ListActivity")
            .build();
        let sub = ClassBuilder::new("p.Sub", ClassOrigin::App)
            .extends("p.Base")
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .class(mid)
            .unwrap()
            .class(sub)
            .unwrap()
            .build();
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(&apk)));
        clvm.add_provider(Box::new(FrameworkProvider::new(
            Arc::new(AndroidFramework::curated()),
            ApiLevel::new(28),
        )));
        clvm
    }

    #[test]
    fn lazy_loading_meters_once() {
        let clvm = demo_clvm();
        let name = ClassName::new("p.Main");
        clvm.load_class(&name);
        clvm.load_class(&name);
        assert_eq!(clvm.meter().classes_loaded, 1);
        assert!(clvm.is_loaded(&name));
    }

    #[test]
    fn unresolved_lookup_remembered() {
        let clvm = demo_clvm();
        let ghost = ClassName::new("no.Such");
        assert!(clvm.load_class(&ghost).is_none());
        assert!(clvm.load_class(&ghost).is_none());
        assert_eq!(clvm.meter().unresolved_lookups, 1);
    }

    #[test]
    fn virtual_resolution_walks_into_framework() {
        let clvm = demo_clvm();
        // p.Main extends android.app.Activity; setContentView resolves
        // up into the framework class.
        let call = MethodRef::new("p.Main", "setContentView", "(I)V");
        match clvm.resolve_virtual(&call) {
            Resolution::Found { method, .. } => {
                assert_eq!(method.class.as_str(), "android.app.Activity");
            }
            other => panic!("expected Found, got {other:?}"),
        }
        // Lazy: only the classes on the resolution path got loaded.
        assert!(clvm.is_loaded(&ClassName::new("android.app.Activity")));
        assert!(!clvm.is_loaded(&ClassName::new("android.webkit.WebView")));
    }

    #[test]
    fn resolution_reports_external_for_unknown_receiver() {
        let clvm = demo_clvm();
        let call = MethodRef::new("com.thirdparty.Blob", "run", "()V");
        assert!(matches!(
            clvm.resolve_virtual(&call),
            Resolution::External(_)
        ));
    }

    #[test]
    fn resolution_not_found_for_missing_signature() {
        let clvm = demo_clvm();
        let call = MethodRef::new("p.Main", "noSuchMethod", "()V");
        assert!(matches!(clvm.resolve_virtual(&call), Resolution::NotFound));
    }

    #[test]
    fn framework_ancestor_skips_app_layers() {
        let clvm = demo_clvm();
        let anc = clvm.framework_ancestor(&ClassName::new("p.Sub")).unwrap();
        assert_eq!(anc.as_str(), "android.app.ListActivity");
    }

    #[test]
    fn load_everything_is_monolithic() {
        let lazy = demo_clvm();
        lazy.load_class(&ClassName::new("p.Main"));
        let lazy_count = lazy.loaded_count();

        let eager = demo_clvm();
        eager.load_everything();
        assert!(
            eager.loaded_count() > lazy_count * 10,
            "eager {} vs lazy {}",
            eager.loaded_count(),
            lazy_count
        );
        assert!(eager.meter().total_bytes() > lazy.meter().total_bytes());
    }

    #[test]
    fn resolve_body_returns_concrete_bodies_only() {
        let clvm = demo_clvm();
        let call = MethodRef::new("p.Main", "onCreate", "(Landroid/os/Bundle;)V");
        let (declaring, method) = clvm.resolve_body(&call).unwrap();
        assert_eq!(declaring.name.as_str(), "p.Main");
        assert_eq!(&*method.name, "onCreate");
    }

    #[test]
    fn concurrent_loads_meter_each_class_once() {
        let clvm = Arc::new(demo_clvm());
        let names = ["p.Main", "p.Base", "p.Sub", "android.app.Activity"];
        std::thread::scope(|s| {
            for _ in 0..8 {
                let clvm = Arc::clone(&clvm);
                s.spawn(move || {
                    for name in names {
                        clvm.load_class(&ClassName::new(name));
                    }
                });
            }
        });
        assert_eq!(clvm.meter().classes_loaded, names.len());
    }

    #[test]
    fn concurrent_loads_share_one_arc() {
        let clvm = Arc::new(demo_clvm());
        let arcs: Vec<Arc<ClassDef>> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let clvm = Arc::clone(&clvm);
                    s.spawn(move || clvm.load_class(&ClassName::new("p.Main")).unwrap())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
    }
}
