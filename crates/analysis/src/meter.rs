//! The loaded-bytes meter.
//!
//! The paper's memory experiment (Figure 4) is fundamentally about how
//! much code an analysis *materializes*: CID loads the entire app and
//! framework model up front (≈1.3 GB average), SAINTDroid only loads
//! classes its reachability analysis touches (≈329 MB average). Our
//! substitute for watching RSS is a deterministic meter that accounts
//! every class definition and analysis structure as it is materialized
//! — portable, reproducible, and measuring exactly the quantity the
//! paper's argument is about. Wall-clock time is still measured for the
//! timing experiments (Table III, Figure 3).

use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

/// Running counters for one analysis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadMeter {
    /// Classes materialized into the CLVM.
    pub classes_loaded: usize,
    /// Bytes of class definitions materialized.
    pub class_bytes: usize,
    /// Methods whose control/data-flow graphs were built.
    pub methods_analyzed: usize,
    /// Bytes of analysis structures (CFG/DFG/guard tables) built.
    pub graph_bytes: usize,
    /// Class lookups that found nothing (external/native terminals).
    pub unresolved_lookups: usize,
}

impl LoadMeter {
    /// A fresh meter.
    #[must_use]
    pub fn new() -> Self {
        LoadMeter::default()
    }

    /// Records the materialization of one class of `bytes` bytes.
    pub fn record_class(&mut self, bytes: usize) {
        self.classes_loaded += 1;
        self.class_bytes += bytes;
    }

    /// Records the analysis of one method with `graph_bytes` of derived
    /// structures.
    pub fn record_method(&mut self, graph_bytes: usize) {
        self.methods_analyzed += 1;
        self.graph_bytes += graph_bytes;
    }

    /// Records a failed class lookup.
    pub fn record_unresolved(&mut self) {
        self.unresolved_lookups += 1;
    }

    /// Total materialized bytes: classes plus analysis structures. This
    /// is the Figure-4 y-axis quantity.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.class_bytes + self.graph_bytes
    }

    /// Adds another meter's counts into this one (used when merging
    /// per-app meters into corpus totals).
    pub fn absorb(&mut self, other: &LoadMeter) {
        self.classes_loaded += other.classes_loaded;
        self.class_bytes += other.class_bytes;
        self.methods_analyzed += other.methods_analyzed;
        self.graph_bytes += other.graph_bytes;
        self.unresolved_lookups += other.unresolved_lookups;
    }

    /// Folds this meter into a registry's monotone counters, which is
    /// how per-app meters become the fleet-wide byte totals exposed on
    /// the unified metrics snapshot. Purely additive: the per-app meter
    /// itself is unchanged, so reports stay byte-identical whether or
    /// not a registry is attached.
    pub fn record_into(&self, registry: &saint_obs::MetricsRegistry) {
        use saint_obs::Counter;
        registry.add(Counter::ClassesLoaded, self.classes_loaded as u64);
        registry.add(Counter::ClassBytes, self.class_bytes as u64);
        registry.add(Counter::MethodsAnalyzed, self.methods_analyzed as u64);
        registry.add(Counter::GraphBytes, self.graph_bytes as u64);
        registry.add(Counter::UnresolvedLookups, self.unresolved_lookups as u64);
    }
}

/// The concurrent counterpart of [`LoadMeter`]: the same counters as
/// atomics, so a shared (`&self`) [`Clvm`](crate::Clvm) can meter from
/// many exploration workers at once.
///
/// **Exactness.** Every charge is a pure function of content (class
/// bytes, artifact bytes) and every charging site is deduplicated
/// (classes load once per CLVM, methods are claimed once per
/// exploration), so the counters are order-independent sums: a parallel
/// run records exactly the totals the sequential run records, merely in
/// a different interleaving. [`snapshot`](AtomicMeter::snapshot) taken
/// after the workers join is therefore identical to the sequential
/// meter.
#[derive(Debug, Default)]
pub struct AtomicMeter {
    classes_loaded: AtomicUsize,
    class_bytes: AtomicUsize,
    methods_analyzed: AtomicUsize,
    graph_bytes: AtomicUsize,
    unresolved_lookups: AtomicUsize,
}

impl AtomicMeter {
    /// A fresh meter.
    #[must_use]
    pub fn new() -> Self {
        AtomicMeter::default()
    }

    /// Records the materialization of one class of `bytes` bytes.
    pub fn record_class(&self, bytes: usize) {
        self.classes_loaded.fetch_add(1, Ordering::Relaxed);
        self.class_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records the analysis of one method with `graph_bytes` of derived
    /// structures.
    pub fn record_method(&self, graph_bytes: usize) {
        self.methods_analyzed.fetch_add(1, Ordering::Relaxed);
        self.graph_bytes.fetch_add(graph_bytes, Ordering::Relaxed);
    }

    /// Records a failed class lookup.
    pub fn record_unresolved(&self) {
        self.unresolved_lookups.fetch_add(1, Ordering::Relaxed);
    }

    /// The current counters as a plain [`LoadMeter`] value. Exact once
    /// all recording threads have joined.
    #[must_use]
    pub fn snapshot(&self) -> LoadMeter {
        LoadMeter {
            classes_loaded: self.classes_loaded.load(Ordering::Relaxed),
            class_bytes: self.class_bytes.load(Ordering::Relaxed),
            methods_analyzed: self.methods_analyzed.load(Ordering::Relaxed),
            graph_bytes: self.graph_bytes.load(Ordering::Relaxed),
            unresolved_lookups: self.unresolved_lookups.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for LoadMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} classes / {} methods / {:.1} KiB loaded",
            self.classes_loaded,
            self.methods_analyzed,
            self.total_bytes() as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = LoadMeter::new();
        m.record_class(100);
        m.record_class(50);
        m.record_method(30);
        m.record_unresolved();
        assert_eq!(m.classes_loaded, 2);
        assert_eq!(m.class_bytes, 150);
        assert_eq!(m.methods_analyzed, 1);
        assert_eq!(m.total_bytes(), 180);
        assert_eq!(m.unresolved_lookups, 1);
    }

    #[test]
    fn absorb_merges() {
        let mut a = LoadMeter::new();
        a.record_class(10);
        let mut b = LoadMeter::new();
        b.record_class(20);
        b.record_method(5);
        a.absorb(&b);
        assert_eq!(a.classes_loaded, 2);
        assert_eq!(a.total_bytes(), 35);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!LoadMeter::new().to_string().is_empty());
    }

    #[test]
    fn atomic_meter_matches_sequential() {
        let atomic = AtomicMeter::new();
        let mut plain = LoadMeter::new();
        atomic.record_class(100);
        plain.record_class(100);
        atomic.record_method(40);
        plain.record_method(40);
        atomic.record_unresolved();
        plain.record_unresolved();
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_meter_sums_across_threads() {
        let meter = AtomicMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        meter.record_class(3);
                        meter.record_method(2);
                    }
                });
            }
        });
        let snap = meter.snapshot();
        assert_eq!(snap.classes_loaded, 400);
        assert_eq!(snap.class_bytes, 1200);
        assert_eq!(snap.methods_analyzed, 400);
        assert_eq!(snap.graph_bytes, 800);
    }
}
