//! Class providers: where the CLVM finds class definitions.
//!
//! The paper's CLVM "mimics the class-loading behavior of the Android
//! Virtual Machine runtime" (§III-A): app classes come from the
//! install-time dex, late-bound classes from secondary dex payloads,
//! and framework classes from the platform. Each source is a
//! [`ClassProvider`]; the CLVM consults them in registration order,
//! like a class-loader delegation chain.

use std::collections::HashMap;
use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_ir::{ApiLevel, Apk, ClassDef, ClassName, DexFile};

use crate::cache::ShardedClassCache;

/// A source of class definitions.
pub trait ClassProvider: Send + Sync {
    /// Looks up a class by name. Implementations may materialize
    /// lazily; returning `None` means this provider does not know the
    /// class.
    fn find_class(&self, name: &ClassName) -> Option<Arc<ClassDef>>;

    /// Enumerates every class name this provider can serve. Used by
    /// *eager* analyzers (the monolithic baselines) and by the
    /// conservative late-binding scan over bundled payloads.
    fn class_names(&self) -> Vec<ClassName>;

    /// A short label for diagnostics.
    fn label(&self) -> &str;
}

/// An indexed dex: O(1) name lookup plus the original declaration
/// order (lookup must be fast — exploration probes every provider for
/// every unresolved name — but `class_names()` order is part of the
/// deterministic analysis contract, so a plain `HashMap` alone would
/// leak iteration-order nondeterminism into eager loading).
#[derive(Debug)]
struct IndexedClasses {
    by_name: HashMap<ClassName, Arc<ClassDef>>,
    order: Vec<ClassName>,
}

impl IndexedClasses {
    fn from_iter<'a>(classes: impl Iterator<Item = &'a ClassDef>) -> Self {
        let mut by_name = HashMap::new();
        let mut order = Vec::new();
        for c in classes {
            if by_name
                .insert(c.name.clone(), Arc::new(c.clone()))
                .is_none()
            {
                order.push(c.name.clone());
            }
        }
        IndexedClasses { by_name, order }
    }

    fn find(&self, name: &ClassName) -> Option<Arc<ClassDef>> {
        self.by_name.get(name).map(Arc::clone)
    }

    fn names(&self) -> Vec<ClassName> {
        self.order.clone()
    }
}

/// Serves the primary (install-time) dex of an APK.
#[derive(Debug)]
pub struct PrimaryDexProvider {
    classes: IndexedClasses,
}

impl PrimaryDexProvider {
    /// Wraps the APK's `classes.dex`.
    #[must_use]
    pub fn new(apk: &Apk) -> Self {
        PrimaryDexProvider {
            classes: IndexedClasses::from_iter(apk.primary.classes()),
        }
    }
}

impl ClassProvider for PrimaryDexProvider {
    fn find_class(&self, name: &ClassName) -> Option<Arc<ClassDef>> {
        self.classes.find(name)
    }

    fn class_names(&self) -> Vec<ClassName> {
        self.classes.names()
    }

    fn label(&self) -> &str {
        "classes.dex"
    }
}

/// Serves one secondary (late-bound) dex payload.
#[derive(Debug)]
pub struct SecondaryDexProvider {
    name: String,
    classes: IndexedClasses,
}

impl SecondaryDexProvider {
    /// Wraps a bundled payload dex.
    #[must_use]
    pub fn new(dex: &DexFile) -> Self {
        SecondaryDexProvider {
            name: dex.name.clone(),
            classes: IndexedClasses::from_iter(dex.classes()),
        }
    }
}

impl ClassProvider for SecondaryDexProvider {
    fn find_class(&self, name: &ClassName) -> Option<Arc<ClassDef>> {
        self.classes.find(name)
    }

    fn class_names(&self) -> Vec<ClassName> {
        self.classes.names()
    }

    fn label(&self) -> &str {
        &self.name
    }
}

/// Serves framework classes materialized on demand at a fixed API
/// level (the app's target level — the platform the app was compiled
/// against).
///
/// By default materialization is cached **per provider**: each app
/// analysis stands up its own provider and pays for exactly the
/// classes *it* materializes, mirroring how every tool run in the
/// paper loads framework code for itself. A batch engine can instead
/// attach a process-wide [`ShardedClassCache`] via [`with_cache`]
/// (keyed by `(level, name)`), so identical framework classes
/// materialize once per batch rather than once per app. Either way the
/// per-app [`LoadMeter`](crate::LoadMeter) accounting is unchanged:
/// metering happens in the CLVM on first per-app *load*, not here at
/// materialization, so an eager tool still pays for the whole platform
/// per app and a lazy one for its reachable slice.
///
/// [`with_cache`]: FrameworkProvider::with_cache
pub struct FrameworkProvider {
    framework: Arc<AndroidFramework>,
    level: ApiLevel,
    local: parking_lot::Mutex<HashMap<ClassName, Option<Arc<ClassDef>>>>,
    shared: Option<Arc<ShardedClassCache>>,
    metrics: Option<Arc<saint_obs::MetricsRegistry>>,
}

impl FrameworkProvider {
    /// Wraps a framework model at `level` with provider-local caching.
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>, level: ApiLevel) -> Self {
        FrameworkProvider {
            framework,
            level,
            local: parking_lot::Mutex::new(HashMap::new()),
            shared: None,
            metrics: None,
        }
    }

    /// Wraps a framework model at `level`, serving materializations
    /// from (and into) a batch-wide shared cache.
    #[must_use]
    pub fn with_cache(
        framework: Arc<AndroidFramework>,
        level: ApiLevel,
        cache: Arc<ShardedClassCache>,
    ) -> Self {
        FrameworkProvider {
            framework,
            level,
            local: parking_lot::Mutex::new(HashMap::new()),
            shared: Some(cache),
            metrics: None,
        }
    }

    /// Attaches a metrics registry: each *actual* materialization — a
    /// shared-cache miss that has to build (or decode) the class body —
    /// is recorded as a [`Phase::ClvmLoad`](saint_obs::Phase::ClvmLoad)
    /// span. Cache hits record nothing: handing out an `Arc` clone is
    /// not class-loading work, and billing it to the phase would hide
    /// exactly the effect batch-wide caches and frozen preloads exist
    /// to produce.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<saint_obs::MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The level this provider materializes at.
    #[must_use]
    pub fn level(&self) -> ApiLevel {
        self.level
    }

    fn materialize(&self, name: &ClassName) -> Option<Arc<ClassDef>> {
        // Route through the framework accessor rather than the spec
        // directly: when a class source is installed (a frozen image),
        // it is authoritative — an engine booted from an image with an
        // empty spec must still serve every framework class. Without a
        // source this is exactly spec materialization, as before.
        let started = self.metrics.as_ref().map(|_| std::time::Instant::now());
        let made = self.framework.class_at(self.level, name);
        if let (Some(metrics), Some(started)) = (&self.metrics, started) {
            metrics.record(saint_obs::Phase::ClvmLoad, started.elapsed());
        }
        made
    }
}

impl ClassProvider for FrameworkProvider {
    fn find_class(&self, name: &ClassName) -> Option<Arc<ClassDef>> {
        if let Some(shared) = &self.shared {
            return shared.get_or_materialize(self.level, name, || self.materialize(name));
        }
        let mut local = self.local.lock();
        if let Some(hit) = local.get(name) {
            return hit.clone();
        }
        let made = self.materialize(name);
        local.insert(name.clone(), made.clone());
        made
    }

    fn class_names(&self) -> Vec<ClassName> {
        self.framework
            .spec()
            .classes()
            .filter(|c| c.life.exists_at(self.level))
            .map(|c| c.name.clone())
            .collect()
    }

    fn label(&self) -> &str {
        "framework"
    }
}

impl std::fmt::Debug for FrameworkProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameworkProvider")
            .field("level", &self.level)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApkBuilder, ClassBuilder, ClassOrigin};

    fn apk_with_classes() -> Apk {
        let a = ClassBuilder::new("p.A", ClassOrigin::App).build();
        let b = ClassBuilder::new("p.B", ClassOrigin::App).build();
        ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(a)
            .unwrap()
            .class(b)
            .unwrap()
            .build()
    }

    #[test]
    fn primary_provider_serves_apk_classes() {
        let p = PrimaryDexProvider::new(&apk_with_classes());
        assert!(p.find_class(&ClassName::new("p.A")).is_some());
        assert!(p.find_class(&ClassName::new("p.Z")).is_none());
        assert_eq!(p.class_names().len(), 2);
    }

    #[test]
    fn framework_provider_respects_level() {
        let fw = Arc::new(AndroidFramework::curated());
        let old = FrameworkProvider::new(Arc::clone(&fw), ApiLevel::new(10));
        let new = FrameworkProvider::new(fw, ApiLevel::new(28));
        let channel = ClassName::new("android.app.NotificationChannel");
        assert!(old.find_class(&channel).is_none());
        assert!(new.find_class(&channel).is_some());
        assert!(new.class_names().len() > old.class_names().len());
    }

    #[test]
    fn providers_are_object_safe() {
        let fw = Arc::new(AndroidFramework::curated());
        let providers: Vec<Box<dyn ClassProvider>> = vec![
            Box::new(PrimaryDexProvider::new(&apk_with_classes())),
            Box::new(FrameworkProvider::new(fw, ApiLevel::new(28))),
        ];
        assert_eq!(providers.len(), 2);
        assert_eq!(providers[0].label(), "classes.dex");
    }
}
