//! Control-flow graphs over method bodies.

use saint_ir::{BlockId, MethodBody};

/// Successor/predecessor edges and a reverse-post-order for one method
/// body.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of a (validated) method body.
    #[must_use]
    pub fn build(body: &MethodBody) -> Self {
        let n = body.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in body.iter() {
            for s in block.terminator.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }
        // Reverse post-order via iterative DFS from the entry block.
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
        state[BlockId::ENTRY.index()] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let next = succs[b.index()][*i];
                *i += 1;
                if state[next.index()] == 0 {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        Cfg {
            succs,
            preds,
            rpo: post,
        }
    }

    /// Successors of a block.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of a block.
    #[must_use]
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from entry, in reverse post-order (the ideal
    /// iteration order for forward data-flow).
    #[must_use]
    pub fn reverse_post_order(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether a block is reachable from entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }

    /// Number of blocks (including unreachable ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG is empty (never true for validated bodies).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Rough size of this structure in bytes, for the load meter.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let edges: usize = self.succs.iter().map(Vec::len).sum();
        self.succs.len() * 24 + edges * 8 + self.rpo.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, BodyBuilder};

    #[test]
    fn straight_line() {
        let mut b = BodyBuilder::new();
        b.ret_void();
        let cfg = Cfg::build(&b.finish().unwrap());
        assert_eq!(cfg.len(), 1);
        assert!(cfg.succs(BlockId::ENTRY).is_empty());
        assert_eq!(cfg.reverse_post_order(), &[BlockId::ENTRY]);
    }

    #[test]
    fn diamond_from_guard() {
        let mut b = BodyBuilder::new();
        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
        b.switch_to(then_blk);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let cfg = Cfg::build(&b.finish().unwrap());
        assert_eq!(cfg.succs(BlockId::ENTRY).len(), 2);
        assert_eq!(cfg.preds(join).len(), 2);
        // RPO starts at entry and contains every block once.
        assert_eq!(cfg.reverse_post_order().len(), 3);
        assert_eq!(cfg.reverse_post_order()[0], BlockId::ENTRY);
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut b = BodyBuilder::new();
        let orphan = b.new_block();
        b.ret_void();
        b.switch_to(orphan);
        b.ret_void();
        let cfg = Cfg::build(&b.finish().unwrap());
        assert!(!cfg.is_reachable(orphan));
        assert_eq!(cfg.reverse_post_order().len(), 1);
    }

    #[test]
    fn loop_terminates_dfs() {
        let mut b = BodyBuilder::new();
        let body_blk = b.new_block();
        let exit = b.new_block();
        b.goto(body_blk);
        b.switch_to(body_blk);
        let r = b.alloc_reg();
        b.const_int(r, 1);
        b.branch_if(saint_ir::Cond::Gt, r, 0i64, body_blk, exit);
        b.switch_to(exit);
        b.ret_void();
        let cfg = Cfg::build(&b.finish().unwrap());
        assert_eq!(cfg.reverse_post_order().len(), 3);
        assert!(cfg.preds(body_blk).len() == 2); // entry + self
    }
}
