//! SDK_INT guard analysis: per-block API-level ranges.
//!
//! This is the path-sensitive core of the AUM (paper §III-A): "a
//! reachability analysis is conducted over the augmented graph to
//! identify the guards that encompass the execution paths reaching the
//! annotated API calls". Each basic block is assigned the interval of
//! device API levels under which it can execute, starting from an
//! *incoming* range (the app's manifest span, or — for
//! context-sensitive interprocedural analysis — the refined range at
//! the call site) and narrowing across `SDK_INT` comparisons.

use saint_ir::{ApiLevel, BlockId, Cond, LevelRange, MethodBody, Operand, Reg, Terminator};

use crate::absint::{AbsState, AbsVal};
use crate::cfg::Cfg;

/// A constraint a branch edge imposes on the device API level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdkConstraint {
    /// `SDK_INT >= level`
    AtLeast(ApiLevel),
    /// `SDK_INT <= level`
    AtMost(ApiLevel),
    /// `SDK_INT == level`
    Exactly(ApiLevel),
    /// The edge says nothing about the level.
    Unconstrained,
}

impl SdkConstraint {
    /// Applies the constraint to a range; `None` when unsatisfiable.
    #[must_use]
    pub fn refine(self, range: LevelRange) -> Option<LevelRange> {
        match self {
            SdkConstraint::AtLeast(l) => range.checked_refine_at_least(l),
            SdkConstraint::AtMost(l) => range.checked_refine_at_most(l),
            SdkConstraint::Exactly(l) => range
                .checked_refine_at_least(l)
                .and_then(|r| r.checked_refine_at_most(l)),
            SdkConstraint::Unconstrained => Some(range),
        }
    }
}

fn level_from(v: i64) -> Option<ApiLevel> {
    (0..=255).contains(&v).then(|| ApiLevel::new(v as u8))
}

/// Saturating constraint construction: comparisons against values
/// outside the representable window collapse to trivially
/// satisfiable/unsatisfiable forms.
fn at_least(v: i64) -> SdkConstraint {
    if v <= 0 {
        SdkConstraint::Unconstrained
    } else if v > 255 {
        // never satisfiable: encode as Exactly on an impossible pairing
        SdkConstraint::AtLeast(ApiLevel::new(255))
    } else {
        SdkConstraint::AtLeast(ApiLevel::new(v as u8))
    }
}

fn at_most(v: i64) -> SdkConstraint {
    if v >= 255 {
        SdkConstraint::Unconstrained
    } else if v < 0 {
        SdkConstraint::AtMost(ApiLevel::new(0))
    } else {
        SdkConstraint::AtMost(ApiLevel::new(v as u8))
    }
}

/// Interprets an `if SDK_INT <cond> c` terminator; returns the
/// constraints on the *(then, else)* edges. Both orders of operands are
/// recognized (`SDK_INT >= 23` and `23 <= SDK_INT`).
#[must_use]
pub fn branch_constraints(
    cond: Cond,
    lhs: Reg,
    rhs: &Operand,
    env: &crate::absint::AbsEnv,
) -> (SdkConstraint, SdkConstraint) {
    let lv = env.get(lhs);
    let rv = env.operand(rhs);
    let (c, value) = match (&lv, &rv) {
        (AbsVal::SdkInt, AbsVal::Const(v)) => (cond, *v),
        (AbsVal::Const(v), AbsVal::SdkInt) => (cond.swap(), *v),
        _ => return (SdkConstraint::Unconstrained, SdkConstraint::Unconstrained),
    };
    // `SDK_INT <c> value`; then-edge takes c, else-edge takes !c.
    let then_c = constraint_for(c, value);
    let else_c = constraint_for(c.negate(), value);
    (then_c, else_c)
}

fn constraint_for(cond: Cond, v: i64) -> SdkConstraint {
    match cond {
        Cond::Ge => at_least(v),
        Cond::Gt => at_least(v.saturating_add(1)),
        Cond::Le => at_most(v),
        Cond::Lt => at_most(v.saturating_sub(1)),
        Cond::Eq => match level_from(v) {
            Some(l) => SdkConstraint::Exactly(l),
            None => SdkConstraint::Unconstrained,
        },
        // Intervals cannot express ≠; stay unconstrained (sound).
        Cond::Ne => SdkConstraint::Unconstrained,
    }
}

/// Per-block level ranges for one method under one incoming context.
///
/// `None` means the block is unreachable under the incoming range (the
/// guard structure proves the code cannot execute at any supported
/// level — e.g. the else-branch of `if (SDK_INT >= 23)` in an app whose
/// `minSdkVersion` is 23).
#[derive(Debug, Clone)]
pub struct BlockRanges {
    ranges: Vec<Option<LevelRange>>,
}

impl BlockRanges {
    /// Computes the fixpoint of range propagation over the CFG.
    #[must_use]
    pub fn analyze(body: &MethodBody, _cfg: &Cfg, abs: &AbsState, incoming: LevelRange) -> Self {
        let n = body.len();
        let mut ranges: Vec<Option<LevelRange>> = vec![None; n];
        ranges[BlockId::ENTRY.index()] = Some(incoming);
        // Interval hull only widens; iterate to fixpoint.
        let mut work: Vec<BlockId> = vec![BlockId::ENTRY];
        let mut iterations = 0usize;
        while let Some(b) = work.pop() {
            iterations += 1;
            if iterations > n * 64 {
                break; // safety valve; hull widening converges long before this
            }
            let Some(cur) = ranges[b.index()] else {
                continue;
            };
            let term = &body.block(b).terminator;
            let env = abs.at_exit(b);
            let edges: Vec<(BlockId, SdkConstraint)> = match term {
                Terminator::If {
                    cond,
                    lhs,
                    rhs,
                    then_blk,
                    else_blk,
                } => {
                    let (tc, ec) = branch_constraints(*cond, *lhs, rhs, env);
                    vec![(*then_blk, tc), (*else_blk, ec)]
                }
                other => other
                    .successors()
                    .into_iter()
                    .map(|s| (s, SdkConstraint::Unconstrained))
                    .collect(),
            };
            for (succ, constraint) in edges {
                let Some(refined) = constraint.refine(cur) else {
                    continue;
                };
                let merged = match ranges[succ.index()] {
                    None => refined,
                    Some(existing) => {
                        // interval hull
                        LevelRange::new(
                            existing.min().min(refined.min()),
                            existing.max().max(refined.max()),
                        )
                    }
                };
                if ranges[succ.index()] != Some(merged) {
                    ranges[succ.index()] = Some(merged);
                    work.push(succ);
                }
            }
        }
        BlockRanges { ranges }
    }

    /// The range under which `block` can execute, or `None` if
    /// unreachable.
    #[must_use]
    pub fn range(&self, block: BlockId) -> Option<LevelRange> {
        self.ranges[block.index()]
    }

    /// Iterates `(block, range)` for reachable blocks.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, LevelRange)> + '_ {
        self.ranges
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (BlockId(i as u32), r)))
    }

    /// Rough size in bytes, for the load meter.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.ranges.len() * 8 + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::BodyBuilder;

    fn ranges_for(b: BodyBuilder, incoming: (u8, u8)) -> (MethodBody, BlockRanges) {
        let body = b.finish().unwrap();
        let cfg = Cfg::build(&body);
        let abs = AbsState::analyze(&body, &cfg);
        let incoming = LevelRange::new(ApiLevel::new(incoming.0), ApiLevel::new(incoming.1));
        let br = BlockRanges::analyze(&body, &cfg, &abs, incoming);
        (body, br)
    }

    fn lr(a: u8, b: u8) -> LevelRange {
        LevelRange::new(ApiLevel::new(a), ApiLevel::new(b))
    }

    #[test]
    fn ge_guard_splits_range() {
        let mut b = BodyBuilder::new();
        let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
        b.switch_to(then_blk);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let (_, br) = ranges_for(b, (21, 28));
        assert_eq!(br.range(BlockId::ENTRY), Some(lr(21, 28)));
        assert_eq!(br.range(then_blk), Some(lr(23, 28)));
        // join is hull of guarded path (23..28) and fall-through (21..22)
        assert_eq!(br.range(join), Some(lr(21, 28)));
    }

    #[test]
    fn unsatisfiable_branch_is_unreachable() {
        // App supports 23..28; the legacy `SDK_INT < 23` branch is dead.
        let mut b = BodyBuilder::new();
        let (legacy, join) = b.guard_sdk_below(ApiLevel::new(23));
        b.switch_to(legacy);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let (_, br) = ranges_for(b, (23, 28));
        assert_eq!(br.range(legacy), None);
        assert_eq!(br.range(join), Some(lr(23, 28)));
    }

    #[test]
    fn swapped_operand_guard_recognized() {
        // if (23 <= SDK_INT) … — constant on the left.
        let mut b = BodyBuilder::new();
        let c = b.alloc_reg();
        b.const_int(c, 23);
        let sdk = b.sdk_int();
        let t = b.new_block();
        let e = b.new_block();
        b.branch_if(Cond::Le, c, sdk, t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let (_, br) = ranges_for(b, (19, 28));
        assert_eq!(br.range(t), Some(lr(23, 28)));
        assert_eq!(br.range(e), Some(lr(19, 22)));
    }

    #[test]
    fn eq_guard_pins_level() {
        let mut b = BodyBuilder::new();
        let sdk = b.sdk_int();
        let t = b.new_block();
        let e = b.new_block();
        b.branch_if(Cond::Eq, sdk, 26i64, t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let (_, br) = ranges_for(b, (21, 28));
        assert_eq!(br.range(t), Some(lr(26, 26)));
        // else keeps the full range (≠ not representable)
        assert_eq!(br.range(e), Some(lr(21, 28)));
    }

    #[test]
    fn guard_on_unknown_value_is_unconstrained() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        b.invoke_static(saint_ir::MethodRef::new("a.B", "v", "()I"), &[], Some(r));
        let t = b.new_block();
        let e = b.new_block();
        b.branch_if(Cond::Ge, r, 23i64, t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let (_, br) = ranges_for(b, (19, 28));
        assert_eq!(br.range(t), Some(lr(19, 28)));
        assert_eq!(br.range(e), Some(lr(19, 28)));
    }

    #[test]
    fn nested_guards_compose() {
        // if (SDK >= 21) { if (SDK >= 26) { X } }
        let mut b = BodyBuilder::new();
        let (outer, join) = b.guard_sdk_at_least(ApiLevel::new(21));
        b.switch_to(outer);
        let (inner, inner_join) = b.guard_sdk_at_least(ApiLevel::new(26));
        b.switch_to(inner);
        b.goto(inner_join);
        b.switch_to(inner_join);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let (_, br) = ranges_for(b, (19, 28));
        assert_eq!(br.range(outer), Some(lr(21, 28)));
        assert_eq!(br.range(inner), Some(lr(26, 28)));
    }

    #[test]
    fn guard_via_moved_register() {
        // int v = SDK_INT; if (v >= 23) …
        let mut b = BodyBuilder::new();
        let sdk = b.sdk_int();
        let copy = b.alloc_reg();
        b.move_reg(copy, sdk);
        let t = b.new_block();
        let e = b.new_block();
        b.branch_if(Cond::Ge, copy, 23i64, t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let (_, br) = ranges_for(b, (19, 28));
        assert_eq!(br.range(t), Some(lr(23, 28)));
        assert_eq!(br.range(e), Some(lr(19, 22)));
    }

    #[test]
    fn lt_and_gt_boundaries() {
        // if (SDK_INT > 25) t else e — then is 26.., else ..25
        let mut b = BodyBuilder::new();
        let sdk = b.sdk_int();
        let t = b.new_block();
        let e = b.new_block();
        b.branch_if(Cond::Gt, sdk, 25i64, t, e);
        b.switch_to(t);
        b.ret_void();
        b.switch_to(e);
        b.ret_void();
        let (_, br) = ranges_for(b, (19, 28));
        assert_eq!(br.range(t), Some(lr(26, 28)));
        assert_eq!(br.range(e), Some(lr(19, 25)));
    }
}
