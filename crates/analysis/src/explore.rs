//! Worklist exploration of statically analyzable classes — paper
//! Algorithm 1.
//!
//! Starting from a set of root methods (every method of the app's
//! classes — components, callbacks and helpers alike), the explorer
//! pops a method, asks the [`Clvm`] to load and resolve its declaring
//! class, builds the method's control- and data-flow artifacts, appends
//! every discovered callee to the worklist, and chases
//! `DexClassLoader.loadClass`/`Class.forName` string constants into
//! late-bound payload classes. Classes are loaded strictly on demand;
//! the exploration *is* the reachability analysis that makes
//! SAINTDroid's lazy loading sound.

use std::any::Any;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use saint_sync::{Condvar, Mutex};

use saint_ir::{Apk, ClassDef, ClassName, ClassOrigin, Instr, MethodRef};

use crate::absint::{AbsState, AbsVal};
use crate::cfg::Cfg;
use crate::clvm::{Clvm, Resolution};

/// Exploration policy knobs. SAINTDroid uses [`ExploreConfig::saintdroid`];
/// the baselines configure shallower traversals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Follow calls into framework classes and analyze their bodies
    /// (the "beyond the first level" capability, paper §III-A).
    pub follow_framework: bool,
    /// Chase `DexClassLoader.loadClass` / `Class.forName` constants
    /// into late-bound classes (paper §III-A, late binding).
    pub follow_dynamic: bool,
    /// Skip anonymous inner classes (`Foo$1`) — the acknowledged
    /// SAINTDroid limitation (paper §VI), reproduced deliberately.
    pub skip_anonymous: bool,
    /// Load *everything* every provider can serve before exploring —
    /// the monolithic strategy. Only the ablation experiments turn
    /// this on; it exists to quantify what gradual loading buys.
    pub preload_all: bool,
}

impl ExploreConfig {
    /// SAINTDroid's configuration: deep, dynamic-aware, anonymous
    /// classes skipped.
    #[must_use]
    pub fn saintdroid() -> Self {
        ExploreConfig {
            follow_framework: true,
            follow_dynamic: true,
            skip_anonymous: true,
            preload_all: false,
        }
    }

    /// A shallow configuration: stop at the app/framework boundary and
    /// ignore late binding (the CID-style view of the world).
    #[must_use]
    pub fn shallow() -> Self {
        ExploreConfig {
            follow_framework: false,
            follow_dynamic: false,
            skip_anonymous: true,
            preload_all: false,
        }
    }
}

/// Everything the explorer derived about one analyzed method.
#[derive(Debug)]
pub struct MethodArtifacts {
    /// The class declaring the method.
    pub class: Arc<ClassDef>,
    /// Resolved method reference (declaring class + signature).
    pub method: MethodRef,
    /// Where the declaring class came from.
    pub origin: ClassOrigin,
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Abstract register state.
    pub abs: AbsState,
}

/// One call-graph edge discovered during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallEdge {
    /// Resolved caller.
    pub caller: MethodRef,
    /// Static target as written at the call site.
    pub target: MethodRef,
    /// Declaring-class resolution of the target, when it stayed inside
    /// the analyzable world.
    pub resolved: Option<MethodRef>,
}

/// A late-binding discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicLoad {
    /// Method containing the `loadClass`/`forName` call.
    pub site: MethodRef,
    /// Class name recovered from the string constant.
    pub class: ClassName,
    /// Whether the class was found in a bundled payload (vs. loaded
    /// from outside the package, which static analysis cannot see —
    /// paper §III-A caveat).
    pub resolved: bool,
}

/// The exploration result: the analyzed method universe plus the call
/// graph over it.
#[derive(Debug, Default)]
pub struct Exploration {
    /// Artifacts per resolved method (only methods with bodies).
    pub methods: HashMap<MethodRef, Arc<MethodArtifacts>>,
    /// All discovered call edges, in discovery order.
    pub edges: Vec<CallEdge>,
    /// Receiver classes no provider could serve (external / native
    /// terminals).
    pub external_classes: BTreeSet<ClassName>,
    /// Late-binding discoveries.
    pub dynamic_loads: Vec<DynamicLoad>,
    /// Virtual-dispatch resolution of every static call target seen
    /// during exploration (`None` = external / not found). Detectors
    /// reuse this instead of re-resolving.
    pub resolutions: HashMap<MethodRef, Option<MethodRef>>,
    /// Indices into `edges`, grouped by resolved caller (built during
    /// exploration so per-caller edge lookups are O(out-degree)).
    edge_index: HashMap<MethodRef, Vec<u32>>,
}

impl Exploration {
    /// Artifacts of a resolved method.
    #[must_use]
    pub fn artifacts(&self, method: &MethodRef) -> Option<&Arc<MethodArtifacts>> {
        self.methods.get(method)
    }

    /// Whether any analyzed app method overrides/declares the given
    /// signature name + descriptor.
    #[must_use]
    pub fn any_app_method_named(&self, name: &str, descriptor: &str) -> bool {
        self.methods.values().any(|a| {
            !matches!(a.origin, ClassOrigin::Framework)
                && &*a.method.name == name
                && &*a.method.descriptor == descriptor
        })
    }

    /// Outgoing edges of a resolved caller.
    pub fn edges_from<'a>(&'a self, caller: &MethodRef) -> impl Iterator<Item = &'a CallEdge> {
        self.edge_index
            .get(caller)
            .into_iter()
            .flatten()
            .map(|&i| &self.edges[i as usize])
    }

    /// Records an edge, maintaining the per-caller index.
    pub(crate) fn push_edge(&mut self, edge: CallEdge) {
        let idx = self.edges.len() as u32;
        self.edge_index
            .entry(edge.caller.clone())
            .or_default()
            .push(idx);
        self.edges.push(edge);
    }
}

/// Root set helper: every concrete method of every class bundled in
/// the APK's primary dex. Component entry points, framework callbacks
/// and plain helpers are all roots — the conservative ICFG entry set.
#[must_use]
pub fn app_method_roots(apk: &Apk) -> Vec<MethodRef> {
    apk.primary
        .classes()
        .flat_map(|c| {
            c.methods
                .iter()
                .filter(|m| m.body.is_some())
                .map(move |m| m.reference(&c.name))
        })
        .collect()
}

/// Everything one processed method contributed to the exploration, in
/// body order — the unit both the sequential loop and the parallel
/// task pool produce, so the per-method work is identical by
/// construction.
struct MethodVisit {
    resolved: MethodRef,
    art: Arc<MethodArtifacts>,
    edges: Vec<CallEdge>,
    resolutions: Vec<(MethodRef, Option<MethodRef>)>,
    dynamic_loads: Vec<DynamicLoad>,
    externals: Vec<ClassName>,
}

/// What resolving and scanning one worklist target produced.
enum TargetOutcome {
    /// The target resolved to a fresh analyzable method; `Vec` holds
    /// the discovered follow-up targets in body order.
    Visited(Box<MethodVisit>, Vec<MethodRef>),
    /// Resolution left the analyzable world at this class.
    External(ClassName),
    /// Already claimed, unresolvable, or gated out by the config.
    Skipped,
}

/// Resolves one worklist target and, if `claim` accepts the resolved
/// method (first visit), analyzes its body. Shared verbatim between the
/// sequential and the parallel explorer.
fn visit_target<F>(
    clvm: &Clvm,
    config: &ExploreConfig,
    artifact_cache: Option<(&crate::cache::ArtifactCache, saint_ir::ApiLevel)>,
    target: &MethodRef,
    claim: F,
) -> TargetOutcome
where
    F: FnOnce(&MethodRef) -> bool,
{
    let (declaring, resolved) = match clvm.resolve_virtual(target) {
        Resolution::Found { declaring, method } => (declaring, method),
        Resolution::External(class) => return TargetOutcome::External(class),
        Resolution::NotFound => return TargetOutcome::Skipped,
    };
    if !claim(&resolved) {
        return TargetOutcome::Skipped;
    }
    if config.skip_anonymous
        && declaring.name.is_anonymous_inner()
        && !matches!(declaring.origin, ClassOrigin::Framework)
    {
        return TargetOutcome::Skipped;
    }
    if !config.follow_framework && matches!(declaring.origin, ClassOrigin::Framework) {
        // Terminal: the shallow view stops at the framework boundary.
        return TargetOutcome::Skipped;
    }
    let Some(def) = declaring.method(&resolved.signature()) else {
        return TargetOutcome::Skipped;
    };
    let Some(body) = &def.body else {
        return TargetOutcome::Skipped; // abstract / native terminal
    };

    let build = || {
        let cfg = Cfg::build(body);
        let abs = AbsState::analyze(body, &cfg);
        Arc::new(MethodArtifacts {
            class: Arc::clone(&declaring),
            method: resolved.clone(),
            origin: declaring.origin,
            cfg,
            abs,
        })
    };
    let art = match artifact_cache {
        Some((cache, level)) if matches!(declaring.origin, ClassOrigin::Framework) => {
            cache.get_or_build(level, &resolved, build)
        }
        _ => build(),
    };
    // Metered from the artifact's content — the same value whether
    // it was just built or served from the batch cache.
    clvm.meter_ref()
        .record_method(art.cfg.size_bytes() + art.abs.size_bytes());

    let mut visit = MethodVisit {
        resolved: resolved.clone(),
        art: Arc::clone(&art),
        edges: Vec::new(),
        resolutions: Vec::new(),
        dynamic_loads: Vec::new(),
        externals: Vec::new(),
    };
    let mut followups = Vec::new();

    // Scan the body for callees and late-binding sites.
    for (block, bb) in body.iter() {
        for instr in &bb.instrs {
            let Instr::Invoke { method, args, .. } = instr else {
                continue;
            };
            let edge_resolved = match clvm.resolve_virtual(method) {
                Resolution::Found { method: m, .. } => Some(m),
                Resolution::External(class) => {
                    visit.externals.push(class);
                    None
                }
                Resolution::NotFound => None,
            };
            visit
                .resolutions
                .push((method.clone(), edge_resolved.clone()));
            visit.edges.push(CallEdge {
                caller: resolved.clone(),
                target: method.clone(),
                resolved: edge_resolved,
            });
            followups.push(method.clone());

            if config.follow_dynamic && is_dynamic_load(method) {
                let env = art.abs.at_entry(block);
                // Recover the first string-constant argument: the
                // class name handed to the loader.
                //
                // NOTE: entry-env is an approximation; constants
                // defined earlier in the same block are found via
                // a forward scan below.
                let mut local = env.clone();
                for earlier in &bb.instrs {
                    if std::ptr::eq(earlier, instr) {
                        break;
                    }
                    local.apply(earlier);
                }
                let name = args.iter().find_map(|r| match local.get(*r) {
                    AbsVal::Str(s) => Some(ClassName::new(s)),
                    _ => None,
                });
                if let Some(class) = name {
                    let loaded = clvm.load_class(&class);
                    let hit = loaded.is_some();
                    if let Some(c) = loaded {
                        for m in c.methods.iter().filter(|m| m.body.is_some()) {
                            followups.push(m.reference(&c.name));
                        }
                    }
                    visit.dynamic_loads.push(DynamicLoad {
                        site: resolved.clone(),
                        class,
                        resolved: hit,
                    });
                }
            }
        }
    }

    TargetOutcome::Visited(Box::new(visit), followups)
}

/// Folds one method's contributions into the exploration result.
fn apply_visit(out: &mut Exploration, visit: MethodVisit) {
    for (target, resolved) in visit.resolutions {
        out.resolutions.insert(target, resolved);
    }
    for edge in visit.edges {
        out.push_edge(edge);
    }
    for class in visit.externals {
        out.external_classes.insert(class);
    }
    out.dynamic_loads.extend(visit.dynamic_loads);
    out.methods.insert(visit.resolved, visit.art);
}

/// Runs Algorithm 1: explores from `roots` through the [`Clvm`].
pub fn explore(
    clvm: &Clvm,
    roots: impl IntoIterator<Item = MethodRef>,
    config: &ExploreConfig,
) -> Exploration {
    explore_cached(clvm, roots, config, None)
}

/// Runs Algorithm 1, optionally serving framework-method artifacts
/// (CFG + abstract state) from a batch-wide [`ArtifactCache`] keyed at
/// `level` — the snapshot level the CLVM's framework provider
/// materializes from. The exploration result (and the per-app meter)
/// is identical either way.
pub fn explore_cached(
    clvm: &Clvm,
    roots: impl IntoIterator<Item = MethodRef>,
    config: &ExploreConfig,
    artifact_cache: Option<(&crate::cache::ArtifactCache, saint_ir::ApiLevel)>,
) -> Exploration {
    saint_faults::trip(saint_faults::FaultPoint::Explore);
    let started = clvm.metrics().map(|_| std::time::Instant::now());
    if config.preload_all {
        clvm.load_everything();
    }
    let mut out = Exploration::default();
    let mut worklist: VecDeque<MethodRef> = roots.into_iter().collect();
    let mut visited_static: HashSet<MethodRef> = HashSet::new();
    let mut claimed: HashSet<MethodRef> = HashSet::new();

    while let Some(target) = worklist.pop_front() {
        if !visited_static.insert(target.clone()) {
            continue;
        }
        match visit_target(clvm, config, artifact_cache, &target, |r| {
            claimed.insert(r.clone())
        }) {
            TargetOutcome::External(class) => {
                out.external_classes.insert(class);
            }
            TargetOutcome::Skipped => {}
            TargetOutcome::Visited(visit, followups) => {
                apply_visit(&mut out, *visit);
                worklist.extend(followups);
            }
        }
    }
    if let (Some(metrics), Some(started)) = (clvm.metrics(), started) {
        metrics.record(saint_obs::Phase::Explore, started.elapsed());
    }
    out
}

/// Shared state of the work-stealing exploration pool.
struct PoolState {
    queue: VecDeque<MethodRef>,
    /// Workers currently processing a target (termination: queue empty
    /// *and* no worker active — an active worker may still enqueue).
    active: usize,
    /// Targets ever enqueued (the sequential loop's `visited_static`).
    visited: HashSet<MethodRef>,
    /// Resolved methods claimed for analysis (exactly-once processing —
    /// what keeps the meter and the artifact set identical to the
    /// sequential run).
    claimed: HashSet<MethodRef>,
    /// Set when a worker's task panicked: peers drain out instead of
    /// exploring a frontier whose result will be discarded anyway.
    failed: bool,
    /// First panic payload observed; re-raised on the calling thread
    /// after every worker has returned, so the pool never leaks a
    /// wedged peer or a half-merged exploration.
    panic_payload: Option<Box<dyn Any + Send>>,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// Runs Algorithm 1 with `jobs` worker threads sharing one worklist.
///
/// Each task resolves one target method, analyzes its body, and
/// enqueues the discovered callees — the same unit of work the
/// sequential loop performs ([`visit_target`] is shared verbatim).
/// Worker completion order is nondeterministic, so results are merged
/// into the [`Exploration`] sorted by resolved method reference, not by
/// completion: the parallel exploration is deterministic run-to-run,
/// and the derived report is byte-identical to the sequential one (the
/// method universe, the per-caller edge lists, the resolution map and
/// the meter are all order-independent; only the global edge vector's
/// internal arrangement differs, which nothing downstream observes).
///
/// `jobs <= 1` falls back to [`explore_cached`].
pub fn explore_parallel(
    clvm: &Clvm,
    roots: impl IntoIterator<Item = MethodRef>,
    config: &ExploreConfig,
    artifact_cache: Option<(&crate::cache::ArtifactCache, saint_ir::ApiLevel)>,
    jobs: usize,
) -> Exploration {
    if jobs <= 1 {
        return explore_cached(clvm, roots, config, artifact_cache);
    }
    // The `jobs <= 1` fallback trips the injection point and records
    // its own Explore span inside `explore_cached`; this path covers
    // the parallel body only, so every exploration trips and is
    // recorded exactly once.
    saint_faults::trip(saint_faults::FaultPoint::Explore);
    let started = clvm.metrics().map(|_| std::time::Instant::now());
    if config.preload_all {
        clvm.load_everything();
    }

    let mut visited = HashSet::new();
    let mut queue = VecDeque::new();
    for root in roots {
        if visited.insert(root.clone()) {
            queue.push_back(root);
        }
    }
    let pool = Pool {
        state: Mutex::new(PoolState {
            queue,
            active: 0,
            visited,
            claimed: HashSet::new(),
            failed: false,
            panic_payload: None,
        }),
        cv: Condvar::new(),
    };

    let worker = || {
        let mut visits: Vec<MethodVisit> = Vec::new();
        let mut externals: Vec<ClassName> = Vec::new();
        loop {
            let target = {
                let mut st = pool.state.lock();
                loop {
                    if st.failed {
                        break None;
                    }
                    if let Some(t) = st.queue.pop_front() {
                        st.active += 1;
                        break Some(t);
                    }
                    if st.active == 0 {
                        break None;
                    }
                    st = pool.cv.wait(st);
                }
            };
            let Some(target) = target else {
                // Drained (or failed): wake any peer still parked in
                // the wait loop.
                pool.cv.notify_all();
                return (visits, externals);
            };
            // Panic containment: a task that unwinds (a detector-grade
            // bug in one method's analysis, or an injected fault) must
            // not strand its `active` claim — peers parked on the
            // condvar would deadlock waiting for a worker that no
            // longer exists. Catch the unwind, mark the pool failed,
            // and re-raise on the calling thread after the scope joins.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                saint_faults::trip(saint_faults::FaultPoint::ExploreTask);
                visit_target(clvm, config, artifact_cache, &target, |r| {
                    pool.state.lock().claimed.insert(r.clone())
                })
            }));
            let outcome = match caught {
                Ok(outcome) => outcome,
                Err(payload) => {
                    let mut st = pool.state.lock();
                    st.active -= 1;
                    st.failed = true;
                    if st.panic_payload.is_none() {
                        st.panic_payload = Some(payload);
                    }
                    drop(st);
                    pool.cv.notify_all();
                    return (visits, externals);
                }
            };
            let mut followups = Vec::new();
            match outcome {
                TargetOutcome::External(class) => externals.push(class),
                TargetOutcome::Skipped => {}
                TargetOutcome::Visited(visit, f) => {
                    visits.push(*visit);
                    followups = f;
                }
            }
            let mut st = pool.state.lock();
            for t in followups {
                if st.visited.insert(t.clone()) {
                    st.queue.push_back(t);
                }
            }
            st.active -= 1;
            // Targeted wakeups: parked peers are only woken for *surplus*
            // work (two or more pending targets — this worker is about to
            // pop one itself) or for termination. A narrow exploration
            // frontier therefore degrades to one busy worker and silent
            // peers instead of a futex storm per visited method; a missed
            // wakeup only defers parallelism, never progress, because a
            // worker re-checks the queue under the lock before parking
            // and never parks while work is pending.
            let done = st.queue.is_empty() && st.active == 0;
            let surplus = st.queue.len() >= 2;
            drop(st);
            if done {
                pool.cv.notify_all();
            } else if surplus {
                pool.cv.notify_one();
            }
        }
    };

    let results: Vec<(Vec<MethodVisit>, Vec<ClassName>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs).map(|_| s.spawn(worker)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("explore worker panicked"))
            .collect()
    });

    // All workers returned normally (task panics are caught above), so
    // the scope joined cleanly; if one of them recorded a payload, the
    // exploration as a whole failed — re-raise it here, on the calling
    // thread, where the scan engine's isolation boundary can turn it
    // into a typed report entry.
    if let Some(payload) = pool.state.lock().panic_payload.take() {
        resume_unwind(payload);
    }

    // Deterministic merge: sort by resolved method reference (each
    // method was claimed exactly once, so keys are unique), never by
    // completion order.
    let mut visits: Vec<MethodVisit> = Vec::new();
    let mut out = Exploration::default();
    for (vs, externals) in results {
        visits.extend(vs);
        out.external_classes.extend(externals);
    }
    visits.sort_by(|a, b| a.resolved.cmp(&b.resolved));
    for visit in visits {
        apply_visit(&mut out, visit);
    }
    if let (Some(metrics), Some(started)) = (clvm.metrics(), started) {
        metrics.record(saint_obs::Phase::Explore, started.elapsed());
    }
    out
}

/// Whether a call target is a late-binding entry point.
#[must_use]
pub fn is_dynamic_load(method: &MethodRef) -> bool {
    (&*method.name == "loadClass" && method.class.as_str() == "dalvik.system.DexClassLoader")
        || (&*method.name == "forName" && method.class.as_str() == "java.lang.Class")
}

/// Convenience wrapper: returns all concrete methods of a loaded class
/// as references (used when a dynamically loaded class joins the
/// analysis).
#[must_use]
pub fn concrete_methods(class: &ClassDef) -> Vec<MethodRef> {
    class
        .methods
        .iter()
        .filter(|m| m.body.is_some())
        .map(|m| m.reference(&class.name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{FrameworkProvider, PrimaryDexProvider, SecondaryDexProvider};
    use saint_adf::{well_known, AndroidFramework};
    use saint_ir::{ApiLevel, ApkBuilder, BodyBuilder, ClassBuilder, DexFile, InvokeKind};

    fn clvm_for(apk: &Apk) -> Clvm {
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(apk)));
        for dex in &apk.secondary {
            clvm.add_provider(Box::new(SecondaryDexProvider::new(dex)));
        }
        clvm.add_provider(Box::new(FrameworkProvider::new(
            Arc::new(AndroidFramework::curated()),
            ApiLevel::new(28),
        )));
        clvm
    }

    fn simple_apk() -> Apk {
        let helper = ClassBuilder::new("p.Helper", ClassOrigin::App)
            .static_method("work", "()V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method(
                "onCreate",
                "(Landroid/os/Bundle;)V",
                |b: &mut BodyBuilder| {
                    b.invoke_static(MethodRef::new("p.Helper", "work", "()V"), &[], None);
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .class(helper)
            .unwrap()
            .build()
    }

    #[test]
    fn explores_transitively_through_app_methods() {
        let apk = simple_apk();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert!(ex
            .artifacts(&MethodRef::new(
                "p.Main",
                "onCreate",
                "(Landroid/os/Bundle;)V"
            ))
            .is_some());
        assert!(ex
            .artifacts(&MethodRef::new("p.Helper", "work", "()V"))
            .is_some());
        // Deep: the framework method body got analyzed too.
        assert!(ex
            .methods
            .keys()
            .any(|m| m.class.as_str() == "android.content.Context"));
    }

    #[test]
    fn shallow_config_stops_at_framework() {
        let apk = simple_apk();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::shallow());
        assert!(ex
            .artifacts(&MethodRef::new("p.Helper", "work", "()V"))
            .is_some());
        assert!(!ex
            .methods
            .keys()
            .any(|m| m.class.as_str().starts_with("android.")));
    }

    #[test]
    fn lazy_loading_touches_only_reachable_classes() {
        let apk = simple_apk();
        let clvm = clvm_for(&apk);
        let _ = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        let loaded = clvm.loaded_count();
        let available = clvm.available_class_names().len();
        assert!(
            loaded * 3 < available,
            "lazy exploration loaded {loaded} of {available} classes"
        );
    }

    #[test]
    fn call_edges_record_resolution() {
        let apk = simple_apk();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        let on_create = MethodRef::new("p.Main", "onCreate", "(Landroid/os/Bundle;)V");
        let edges: Vec<_> = ex.edges_from(&on_create).collect();
        assert_eq!(edges.len(), 1);
        assert_eq!(
            edges[0].resolved.as_ref().map(|m| m.class.as_str()),
            Some("p.Helper")
        );
    }

    #[test]
    fn external_receiver_recorded_as_terminal() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .method("go", "()V", |b| {
                b.invoke_virtual(MethodRef::new("com.vendor.Sdk", "init", "()V"), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .build();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert!(ex
            .external_classes
            .contains(&ClassName::new("com.vendor.Sdk")));
    }

    #[test]
    fn dynamic_payload_classes_fully_analyzed() {
        let mut payload = DexFile::new("assets/plugin.dex");
        payload
            .add_class(
                ClassBuilder::new("plug.Plugin", ClassOrigin::DynamicPayload)
                    .method("run", "()V", |b| {
                        b.invoke_virtual(well_known::context_get_drawable(), &[], None);
                        b.ret_void();
                    })
                    .unwrap()
                    .method("idle", "()V", |b| {
                        b.ret_void();
                    })
                    .unwrap()
                    .build(),
            )
            .unwrap();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .method("boot", "()V", |b| {
                let loader = b.alloc_reg();
                let name = b.alloc_reg();
                b.new_instance(loader, "dalvik.system.DexClassLoader");
                b.const_str(name, "plug.Plugin");
                b.invoke(
                    InvokeKind::Virtual,
                    well_known::dex_class_loader_load_class(),
                    &[loader, name],
                    None,
                );
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .secondary_dex(payload)
            .build();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert_eq!(ex.dynamic_loads.len(), 1);
        assert!(ex.dynamic_loads[0].resolved);
        // Every method of the payload class was analyzed.
        assert!(ex
            .artifacts(&MethodRef::new("plug.Plugin", "run", "()V"))
            .is_some());
        assert!(ex
            .artifacts(&MethodRef::new("plug.Plugin", "idle", "()V"))
            .is_some());
    }

    #[test]
    fn unresolvable_dynamic_load_recorded() {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .method("boot", "()V", |b| {
                let name = b.alloc_reg();
                b.const_str(name, "remote.Downloaded");
                b.invoke_static(
                    MethodRef::new(
                        "java.lang.Class",
                        "forName",
                        "(Ljava/lang/String;)Ljava/lang/Class;",
                    ),
                    &[name],
                    None,
                );
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .build();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert_eq!(ex.dynamic_loads.len(), 1);
        assert!(!ex.dynamic_loads[0].resolved);
    }

    #[test]
    fn anonymous_inner_classes_skipped() {
        let anon = ClassBuilder::new("p.Main$1", ClassOrigin::App)
            .extends("android.webkit.WebViewClient")
            .method(
                "onPageCommitVisible",
                "(Landroid/webkit/WebView;Ljava/lang/String;)V",
                |b| {
                    b.ret_void();
                },
            )
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(28))
            .class(anon)
            .unwrap()
            .build();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert!(
            ex.methods.is_empty(),
            "anonymous inner class must be invisible"
        );
    }

    #[test]
    fn recursive_calls_terminate() {
        let rec = ClassBuilder::new("p.R", ClassOrigin::App)
            .static_method("f", "()V", |b| {
                b.invoke_static(MethodRef::new("p.R", "g", "()V"), &[], None);
                b.ret_void();
            })
            .unwrap()
            .static_method("g", "()V", |b| {
                b.invoke_static(MethodRef::new("p.R", "f", "()V"), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(rec)
            .unwrap()
            .build();
        let clvm = clvm_for(&apk);
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert_eq!(ex.methods.len(), 2);
    }

    /// Asserts the observable exploration state (method universe,
    /// per-caller edges, resolution map, dynamic loads, externals) and
    /// the meter are identical between two runs.
    fn assert_exploration_parity(apk: &Apk, jobs: usize) {
        let seq_clvm = clvm_for(apk);
        let seq = explore(
            &seq_clvm,
            app_method_roots(apk),
            &ExploreConfig::saintdroid(),
        );
        let par_clvm = clvm_for(apk);
        let par = explore_parallel(
            &par_clvm,
            app_method_roots(apk),
            &ExploreConfig::saintdroid(),
            None,
            jobs,
        );
        let keys = |ex: &Exploration| {
            let mut v: Vec<_> = ex.methods.keys().cloned().collect();
            v.sort();
            v
        };
        assert_eq!(
            keys(&seq),
            keys(&par),
            "method universe differs at jobs={jobs}"
        );
        for m in seq.methods.keys() {
            let se: Vec<_> = seq.edges_from(m).cloned().collect();
            let pe: Vec<_> = par.edges_from(m).cloned().collect();
            assert_eq!(se, pe, "edges from {m} differ at jobs={jobs}");
        }
        assert_eq!(seq.resolutions, par.resolutions);
        assert_eq!(seq.external_classes, par.external_classes);
        let loads = |ex: &Exploration| {
            let mut v = ex.dynamic_loads.clone();
            v.sort_by(|a, b| (&a.site, &a.class).cmp(&(&b.site, &b.class)));
            v
        };
        assert_eq!(
            loads(&seq),
            loads(&par),
            "dynamic loads differ at jobs={jobs}"
        );
        assert_eq!(
            seq_clvm.meter(),
            par_clvm.meter(),
            "meter differs at jobs={jobs}"
        );
    }

    #[test]
    fn parallel_exploration_matches_sequential() {
        for jobs in [2, 4, 8] {
            assert_exploration_parity(&simple_apk(), jobs);
        }
    }

    #[test]
    fn parallel_exploration_matches_on_dynamic_loads() {
        let mut payload = DexFile::new("assets/plugin.dex");
        payload
            .add_class(
                ClassBuilder::new("plug.Plugin", ClassOrigin::DynamicPayload)
                    .method("run", "()V", |b| {
                        b.invoke_virtual(well_known::context_get_drawable(), &[], None);
                        b.ret_void();
                    })
                    .unwrap()
                    .build(),
            )
            .unwrap();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .method("boot", "()V", |b| {
                let loader = b.alloc_reg();
                let name = b.alloc_reg();
                b.new_instance(loader, "dalvik.system.DexClassLoader");
                b.const_str(name, "plug.Plugin");
                b.invoke(
                    InvokeKind::Virtual,
                    well_known::dex_class_loader_load_class(),
                    &[loader, name],
                    None,
                );
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .secondary_dex(payload)
            .build();
        assert_exploration_parity(&apk, 4);
    }

    #[test]
    fn parallel_with_one_job_is_sequential() {
        let apk = simple_apk();
        let clvm = clvm_for(&apk);
        let ex = explore_parallel(
            &clvm,
            app_method_roots(&apk),
            &ExploreConfig::saintdroid(),
            None,
            1,
        );
        let clvm2 = clvm_for(&apk);
        let seq = explore(&clvm2, app_method_roots(&apk), &ExploreConfig::saintdroid());
        assert_eq!(ex.methods.len(), seq.methods.len());
    }
}
