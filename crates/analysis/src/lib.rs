//! # saint-analysis — static-analysis infrastructure
//!
//! The machinery under SAINTDroid's AUM component (paper §III-A):
//!
//! * [`Clvm`] — the Class Loader Virtual Machine that loads app,
//!   payload and framework classes lazily through [`ClassProvider`]s,
//!   metering every byte it materializes ([`LoadMeter`]);
//! * [`Cfg`] / [`AbsState`] — per-method control-flow and abstract
//!   register state (SDK_INT taint, integer and string constants);
//! * [`BlockRanges`] — the path-sensitive SDK_INT guard analysis that
//!   assigns each basic block the interval of device API levels under
//!   which it can execute;
//! * [`explore`] — paper Algorithm 1: worklist exploration that builds
//!   the method universe and call graph on demand, chasing late-bound
//!   (`DexClassLoader`) classes conservatively.
//!
//! ```
//! use std::sync::Arc;
//! use saint_adf::AndroidFramework;
//! use saint_analysis::{app_method_roots, explore, Clvm, ExploreConfig,
//!                      FrameworkProvider, PrimaryDexProvider};
//! use saint_ir::{ApkBuilder, ApiLevel, ClassBuilder, ClassOrigin};
//!
//! let main = ClassBuilder::new("com.x.Main", ClassOrigin::App)
//!     .extends("android.app.Activity")
//!     .method("onCreate", "(Landroid/os/Bundle;)V", |b| { b.ret_void(); })?
//!     .build();
//! let apk = ApkBuilder::new("com.x", ApiLevel::new(21), ApiLevel::new(28))
//!     .class(main)?
//!     .build();
//!
//! let mut clvm = Clvm::new();
//! clvm.add_provider(Box::new(PrimaryDexProvider::new(&apk)));
//! clvm.add_provider(Box::new(FrameworkProvider::new(
//!     Arc::new(AndroidFramework::curated()),
//!     ApiLevel::new(28),
//! )));
//! let exploration = explore(&mut clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
//! assert_eq!(exploration.methods.len(), 1);
//! # Ok::<(), saint_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod absint;
pub mod cache;
mod callgraph;
mod cfg;
mod clvm;
mod explore;
mod guards;
mod meter;
mod provider;

pub use absint::{AbsEnv, AbsState, AbsVal};
pub use cache::{ArtifactCache, CacheStats, ShardedClassCache};
pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use clvm::{Clvm, Resolution};
pub use explore::{
    app_method_roots, concrete_methods, explore, explore_cached, explore_parallel, is_dynamic_load,
    CallEdge, DynamicLoad, Exploration, ExploreConfig, MethodArtifacts,
};
pub use guards::{branch_constraints, BlockRanges, SdkConstraint};
pub use meter::{AtomicMeter, LoadMeter};
pub use provider::{ClassProvider, FrameworkProvider, PrimaryDexProvider, SecondaryDexProvider};
