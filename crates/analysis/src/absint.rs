//! Register-level abstract interpretation.
//!
//! A small forward data-flow analysis tracking, per block, which
//! registers hold (a) the `Build.VERSION.SDK_INT` value — feeding the
//! guard analysis — (b) integer constants — the comparison operands of
//! guards — and (c) string constants — the class-name arguments of
//! late-binding calls like `DexClassLoader.loadClass`.

use std::collections::HashMap;
use std::sync::Arc;

use saint_ir::{BlockId, Instr, MethodBody, Operand, Reg};

use crate::cfg::Cfg;

/// An abstract register value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown / any value.
    Top,
    /// The device API level read from `Build.VERSION.SDK_INT`.
    SdkInt,
    /// A known integer constant.
    Const(i64),
    /// A known string constant.
    Str(Arc<str>),
}

impl AbsVal {
    fn merge(a: &AbsVal, b: &AbsVal) -> AbsVal {
        if a == b {
            a.clone()
        } else {
            AbsVal::Top
        }
    }
}

/// Abstract register environment: registers absent from the map have
/// never been written on any path (⊥) and read as unknown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsEnv {
    regs: HashMap<Reg, AbsVal>,
}

impl AbsEnv {
    /// The empty environment.
    #[must_use]
    pub fn new() -> Self {
        AbsEnv::default()
    }

    /// The abstract value of a register (Top when never written).
    #[must_use]
    pub fn get(&self, r: Reg) -> AbsVal {
        self.regs.get(&r).cloned().unwrap_or(AbsVal::Top)
    }

    /// The abstract value of an operand.
    #[must_use]
    pub fn operand(&self, o: &Operand) -> AbsVal {
        match o {
            Operand::Reg(r) => self.get(*r),
            Operand::Imm(v) => AbsVal::Const(*v),
        }
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        self.regs.insert(r, v);
    }

    /// Join with another environment; returns whether this changed.
    fn join(&mut self, other: &AbsEnv) -> bool {
        let mut changed = false;
        for (r, v) in &other.regs {
            match self.regs.get(r) {
                None => {
                    // First definition seen on some path: a register
                    // defined on only one incoming path must conservatively
                    // degrade unless both paths agree, but we cannot know
                    // here whether `self` path defines it. Taking the
                    // other path's value is sound for guard detection
                    // because undefined-on-a-path registers cannot be
                    // read in valid bytecode before a dominating def.
                    self.regs.insert(*r, v.clone());
                    changed = true;
                }
                Some(mine) => {
                    let merged = AbsVal::merge(mine, v);
                    if merged != *mine {
                        self.regs.insert(*r, merged);
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    /// Applies one instruction's transfer function.
    pub fn apply(&mut self, instr: &Instr) {
        match instr {
            Instr::Const { dst, value } => self.set(*dst, AbsVal::Const(*value)),
            Instr::ConstString { dst, value } => {
                self.set(*dst, AbsVal::Str(Arc::from(value.as_str())));
            }
            Instr::Move { dst, src } => {
                let v = self.get(*src);
                self.set(*dst, v);
            }
            Instr::FieldGet { dst, field, .. } => {
                if field.is_sdk_int() {
                    self.set(*dst, AbsVal::SdkInt);
                } else {
                    self.set(*dst, AbsVal::Top);
                }
            }
            Instr::BinOp { dst, .. } | Instr::NewInstance { dst, .. } => {
                self.set(*dst, AbsVal::Top)
            }
            Instr::Invoke { dst, .. } => {
                if let Some(d) = dst {
                    self.set(*d, AbsVal::Top);
                }
            }
            Instr::FieldPut { .. } | Instr::Nop => {}
        }
    }

    /// Rough size in bytes, for the load meter.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.regs.len() * 24
    }
}

/// Per-block abstract environments for a whole method: the environment
/// *entering* each block and the environment at its terminator.
#[derive(Debug, Clone)]
pub struct AbsState {
    entry: Vec<AbsEnv>,
    exit: Vec<AbsEnv>,
}

impl AbsState {
    /// Runs the forward fixpoint over the body.
    #[must_use]
    pub fn analyze(body: &MethodBody, cfg: &Cfg) -> Self {
        let n = body.len();
        let mut entry = vec![AbsEnv::new(); n];
        let mut exit = vec![AbsEnv::new(); n];
        // Iterate in RPO until stable; the lattice is finite-height per
        // register (⊥ → value → Top), so this terminates quickly.
        let mut changed = true;
        let mut iterations = 0usize;
        while changed && iterations < 64 {
            changed = false;
            iterations += 1;
            for &b in cfg.reverse_post_order() {
                let mut env = AbsEnv::new();
                let preds = cfg.preds(b);
                if preds.is_empty() {
                    // entry block: empty env
                } else {
                    // join of predecessor exits
                    let mut first = true;
                    for &p in preds {
                        if first {
                            env = exit[p.index()].clone();
                            first = false;
                        } else {
                            env.join(&exit[p.index()]);
                        }
                    }
                }
                if env != entry[b.index()] {
                    entry[b.index()] = env.clone();
                    changed = true;
                }
                for i in &body.block(b).instrs {
                    env.apply(i);
                }
                if env != exit[b.index()] {
                    exit[b.index()] = env;
                    changed = true;
                }
            }
        }
        AbsState { entry, exit }
    }

    /// Environment at block entry.
    #[must_use]
    pub fn at_entry(&self, b: BlockId) -> &AbsEnv {
        &self.entry[b.index()]
    }

    /// Environment at the block's terminator (after all instructions).
    #[must_use]
    pub fn at_exit(&self, b: BlockId) -> &AbsEnv {
        &self.exit[b.index()]
    }

    /// Rough size in bytes, for the load meter.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.entry
            .iter()
            .chain(&self.exit)
            .map(AbsEnv::size_bytes)
            .sum::<usize>()
            + 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{BodyBuilder, Cond, FieldRef};

    fn analyze(b: BodyBuilder) -> (MethodBody, AbsState) {
        let body = b.finish().unwrap();
        let cfg = Cfg::build(&body);
        let st = AbsState::analyze(&body, &cfg);
        (body, st)
    }

    #[test]
    fn constants_and_strings_tracked() {
        let mut b = BodyBuilder::new();
        let r0 = b.alloc_reg();
        let r1 = b.alloc_reg();
        let r2 = b.alloc_reg();
        b.const_int(r0, 23);
        b.const_str(r1, "com.x.Plugin");
        b.move_reg(r2, r0);
        b.ret_void();
        let (_, st) = analyze(b);
        let env = st.at_exit(BlockId::ENTRY);
        assert_eq!(env.get(r0), AbsVal::Const(23));
        assert_eq!(env.get(r1), AbsVal::Str(Arc::from("com.x.Plugin")));
        assert_eq!(env.get(r2), AbsVal::Const(23));
    }

    #[test]
    fn sdk_int_tainted_through_moves() {
        let mut b = BodyBuilder::new();
        let sdk = b.sdk_int();
        let copy = b.alloc_reg();
        b.move_reg(copy, sdk);
        b.ret_void();
        let (_, st) = analyze(b);
        let env = st.at_exit(BlockId::ENTRY);
        assert_eq!(env.get(sdk), AbsVal::SdkInt);
        assert_eq!(env.get(copy), AbsVal::SdkInt);
    }

    #[test]
    fn other_field_reads_are_top() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        b.field_get(r, FieldRef::new("a.B", "x"), None);
        b.ret_void();
        let (_, st) = analyze(b);
        assert_eq!(st.at_exit(BlockId::ENTRY).get(r), AbsVal::Top);
    }

    #[test]
    fn conflicting_paths_merge_to_top() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        let sdk = b.sdk_int();
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        b.branch_if(Cond::Ge, sdk, 23i64, t, e);
        b.switch_to(t);
        b.const_int(r, 1);
        b.goto(join);
        b.switch_to(e);
        b.const_int(r, 2);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let (_, st) = analyze(b);
        assert_eq!(st.at_entry(join).get(r), AbsVal::Top);
    }

    #[test]
    fn agreeing_paths_keep_value() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        let sdk = b.sdk_int();
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        b.branch_if(Cond::Ge, sdk, 23i64, t, e);
        b.switch_to(t);
        b.const_int(r, 7);
        b.goto(join);
        b.switch_to(e);
        b.const_int(r, 7);
        b.goto(join);
        b.switch_to(join);
        b.ret_void();
        let (_, st) = analyze(b);
        assert_eq!(st.at_entry(join).get(r), AbsVal::Const(7));
    }

    #[test]
    fn invoke_clobbers_destination() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        b.const_int(r, 23);
        b.invoke_static(saint_ir::MethodRef::new("a.B", "rand", "()I"), &[], Some(r));
        b.ret_void();
        let (_, st) = analyze(b);
        assert_eq!(st.at_exit(BlockId::ENTRY).get(r), AbsVal::Top);
    }

    #[test]
    fn loop_converges() {
        let mut b = BodyBuilder::new();
        let r = b.alloc_reg();
        b.const_int(r, 0);
        let head = b.new_block();
        let body_blk = b.new_block();
        let exit = b.new_block();
        b.goto(head);
        b.switch_to(head);
        b.branch_if(Cond::Lt, r, 10i64, body_blk, exit);
        b.switch_to(body_blk);
        b.binop(saint_ir::BinOp::Add, r, r, 1i64);
        b.goto(head);
        b.switch_to(exit);
        b.ret_void();
        let (_, st) = analyze(b);
        // After the loop r could be 0 or a sum: Top.
        assert_eq!(st.at_entry(exit).get(r), AbsVal::Top);
    }
}
