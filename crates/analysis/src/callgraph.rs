//! A queryable view over the exploration's call graph.
//!
//! The exploration (Algorithm 1) produces raw edges; this wraps them in
//! the graph interface tooling wants — callers/callees, reachability,
//! and Graphviz export for inspection. The paper's ICFG is this graph
//! plus the per-method CFGs the exploration already built.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt::Write as _;

use saint_ir::{ClassOrigin, MethodRef};

use crate::explore::Exploration;

/// An adjacency view over resolved call edges.
#[derive(Debug, Default)]
pub struct CallGraph {
    callees: HashMap<MethodRef, Vec<MethodRef>>,
    callers: HashMap<MethodRef, Vec<MethodRef>>,
    origins: HashMap<MethodRef, ClassOrigin>,
}

impl CallGraph {
    /// Builds the graph from an exploration result (resolved edges
    /// only; external terminals are not nodes).
    #[must_use]
    pub fn from_exploration(ex: &Exploration) -> Self {
        let mut g = CallGraph::default();
        for (m, art) in &ex.methods {
            g.origins.insert(m.clone(), art.origin);
            g.callees.entry(m.clone()).or_default();
        }
        for e in &ex.edges {
            let Some(resolved) = &e.resolved else {
                continue;
            };
            g.callees
                .entry(e.caller.clone())
                .or_default()
                .push(resolved.clone());
            g.callers
                .entry(resolved.clone())
                .or_default()
                .push(e.caller.clone());
        }
        for v in g.callees.values_mut() {
            v.sort();
            v.dedup();
        }
        for v in g.callers.values_mut() {
            v.sort();
            v.dedup();
        }
        g
    }

    /// Methods `m` calls (resolved).
    #[must_use]
    pub fn callees(&self, m: &MethodRef) -> &[MethodRef] {
        self.callees.get(m).map_or(&[], Vec::as_slice)
    }

    /// Methods calling `m`.
    #[must_use]
    pub fn callers(&self, m: &MethodRef) -> &[MethodRef] {
        self.callers.get(m).map_or(&[], Vec::as_slice)
    }

    /// Number of nodes (analyzed methods).
    #[must_use]
    pub fn len(&self) -> usize {
        self.callees.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.callees.is_empty()
    }

    /// Every method transitively reachable from `roots` (inclusive).
    #[must_use]
    pub fn reachable_from<'a>(
        &self,
        roots: impl IntoIterator<Item = &'a MethodRef>,
    ) -> BTreeSet<MethodRef> {
        let mut seen: BTreeSet<MethodRef> = BTreeSet::new();
        let mut work: VecDeque<MethodRef> = roots.into_iter().cloned().collect();
        while let Some(m) = work.pop_front() {
            if !seen.insert(m.clone()) {
                continue;
            }
            for c in self.callees(&m) {
                if !seen.contains(c) {
                    work.push_back(c.clone());
                }
            }
        }
        seen
    }

    /// Graphviz dot rendering; framework nodes are drawn dashed so the
    /// app/platform boundary — the thing gradual loading blurs — is
    /// visible.
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n");
        let mut nodes: Vec<&MethodRef> = self.callees.keys().collect();
        nodes.sort();
        for m in &nodes {
            let style = match self.origins.get(*m) {
                Some(ClassOrigin::Framework) => ", style=dashed",
                Some(ClassOrigin::Library) => ", shape=box",
                _ => "",
            };
            let _ = writeln!(out, "  \"{m}\" [label=\"{m}\"{style}];");
        }
        for m in &nodes {
            for c in self.callees(m) {
                let _ = writeln!(out, "  \"{m}\" -> \"{c}\";");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{app_method_roots, explore, ExploreConfig};
    use crate::provider::{FrameworkProvider, PrimaryDexProvider};
    use crate::Clvm;
    use saint_adf::{well_known, AndroidFramework};
    use saint_ir::{ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin};
    use std::sync::Arc;

    fn graph() -> (CallGraph, MethodRef, MethodRef) {
        let helper_ref = MethodRef::new("p.Helper", "work", "()V");
        let helper = ClassBuilder::new("p.Helper", ClassOrigin::App)
            .static_method("work", "()V", |b| {
                b.invoke_virtual(well_known::context_get_drawable(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.invoke_static(MethodRef::new("p.Helper", "work", "()V"), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(main)
            .unwrap()
            .class(helper)
            .unwrap()
            .build();
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(&apk)));
        clvm.add_provider(Box::new(FrameworkProvider::new(
            Arc::new(AndroidFramework::curated()),
            ApiLevel::new(28),
        )));
        let ex = explore(&clvm, app_method_roots(&apk), &ExploreConfig::saintdroid());
        let on_create = MethodRef::new("p.Main", "onCreate", "(Landroid/os/Bundle;)V");
        (CallGraph::from_exploration(&ex), on_create, helper_ref)
    }

    #[test]
    fn callees_and_callers_are_inverse() {
        let (g, on_create, helper) = graph();
        assert_eq!(g.callees(&on_create), std::slice::from_ref(&helper));
        assert_eq!(g.callers(&helper), &[on_create]);
    }

    #[test]
    fn reachability_crosses_into_framework() {
        let (g, on_create, _) = graph();
        let reach = g.reachable_from([&on_create]);
        assert!(reach.len() >= 3);
        assert!(reach
            .iter()
            .any(|m| m.class.as_str() == "android.content.Context"));
    }

    #[test]
    fn dot_output_marks_framework_nodes() {
        let (g, _, _) = graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph callgraph"));
        assert!(dot.contains("style=dashed"), "framework nodes dashed");
        assert!(dot.contains("p.Main.onCreate"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn unknown_method_has_no_edges() {
        let (g, _, _) = graph();
        let ghost = MethodRef::new("no.Such", "m", "()V");
        assert!(g.callees(&ghost).is_empty());
        assert!(g.callers(&ghost).is_empty());
    }
}
