//! # saint-faults — deterministic fault injection for the scan pipeline
//!
//! Fault tolerance that is only exercised by real bugs is untested
//! fault tolerance. This crate plants named *injection points* at the
//! pipeline's isolation boundaries — SAPK decode, Algorithm-1
//! exploration (entry and per-task), each AMD detector, and the
//! daemon's queue hand-off — and lets tests and the CI smoke job arm
//! them with a **countdown**: the first `n` executions of an armed
//! point panic deterministically, every later one is a no-op. That
//! yields reproducible sequences like "the first decode and the second
//! scan's exploration panic, everything afterwards is clean", which is
//! exactly what the fault-injection e2e asserts byte-identical reports
//! against.
//!
//! Two ways to arm:
//!
//! * programmatically — [`arm`]`(point, n)` from a test;
//! * environment — `SAINT_FAULTS="decode:1,explore:2"` ([`ENV_VAR`]),
//!   parsed once on first use, which is how the CI smoke job injects
//!   panics into a stock `saintdroid serve` process.
//!
//! When nothing is armed (every production run), [`trip`] is a single
//! relaxed atomic load — cheap enough to sit on the decode and
//! exploration hot paths.
//!
//! The injected panic payload is a `String` of the form
//! `"saint-faults: injected panic at <point>"`, so the `ScanError`
//! surfaced to clients names the tripped point.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Environment variable holding the arming spec, e.g.
/// `SAINT_FAULTS="decode:1,detect_invocation:2"`.
pub const ENV_VAR: &str = "SAINT_FAULTS";

/// The named injection points, one per isolation boundary of the scan
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultPoint {
    /// Entry of `codec::decode_apk` (exercises the handler-side decode
    /// isolation in the daemon).
    Decode = 0,
    /// Entry of an Algorithm-1 exploration (one trip per scan).
    Explore = 1,
    /// One task of the *parallel* exploration pool (per visited
    /// target — exercises the pool's panic containment).
    ExploreTask = 2,
    /// Entry of the API-invocation detector.
    DetectInvocation = 3,
    /// Entry of the callback detector.
    DetectCallback = 4,
    /// Entry of the permission detector.
    DetectPermission = 5,
    /// The daemon scan worker, after dequeue and *outside* the per-job
    /// isolation — kills the worker thread (exercises respawn).
    QueueHandoff = 6,
    /// The campaign driver's dispatch loop, before a work-unit chunk is
    /// put on the wire — crashes the whole campaign process mid-run
    /// (exercises `campaign resume` from the journal).
    CampaignDispatch = 7,
}

impl FaultPoint {
    /// Every injection point, in wire order.
    pub const ALL: [FaultPoint; 8] = [
        FaultPoint::Decode,
        FaultPoint::Explore,
        FaultPoint::ExploreTask,
        FaultPoint::DetectInvocation,
        FaultPoint::DetectCallback,
        FaultPoint::DetectPermission,
        FaultPoint::QueueHandoff,
        FaultPoint::CampaignDispatch,
    ];

    /// Stable snake_case name, used in the [`ENV_VAR`] spec and the
    /// injected panic payload.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultPoint::Decode => "decode",
            FaultPoint::Explore => "explore",
            FaultPoint::ExploreTask => "explore_task",
            FaultPoint::DetectInvocation => "detect_invocation",
            FaultPoint::DetectCallback => "detect_callback",
            FaultPoint::DetectPermission => "detect_permission",
            FaultPoint::QueueHandoff => "queue_handoff",
            FaultPoint::CampaignDispatch => "campaign_dispatch",
        }
    }

    /// Parses a stable name back to its point.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Remaining trip counts, one per point. `ANY_ARMED` is the disarmed
/// fast path: production runs never touch the per-point slots.
static REMAINING: [AtomicU64; FaultPoint::ALL.len()] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn ensure_env_loaded() {
    ENV_INIT.call_once(|| {
        let Ok(spec) = std::env::var(ENV_VAR) else {
            return;
        };
        match parse_spec(&spec) {
            Ok(points) => {
                for (point, n) in points {
                    REMAINING[point as usize].store(n, Ordering::SeqCst);
                    if n > 0 {
                        ANY_ARMED.store(true, Ordering::SeqCst);
                    }
                }
            }
            Err(e) => eprintln!("saint-faults: ignoring malformed {ENV_VAR}: {e}"),
        }
    });
}

/// Parses an arming spec: comma-separated `point:count` pairs
/// (whitespace around entries ignored, empty entries skipped).
///
/// # Errors
/// A human-readable message naming the malformed entry.
pub fn parse_spec(spec: &str) -> Result<Vec<(FaultPoint, u64)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, count) = entry
            .split_once(':')
            .ok_or_else(|| format!("entry {entry:?} is not point:count"))?;
        let point = FaultPoint::from_name(name.trim())
            .ok_or_else(|| format!("unknown fault point {name:?}"))?;
        let n: u64 = count
            .trim()
            .parse()
            .map_err(|_| format!("count {count:?} is not a number"))?;
        out.push((point, n));
    }
    Ok(out)
}

/// Arms a point: the next `n` [`trip`]s of it panic. Overwrites any
/// previous (or environment-derived) count for the point.
pub fn arm(point: FaultPoint, n: u64) {
    ensure_env_loaded();
    REMAINING[point as usize].store(n, Ordering::SeqCst);
    if n > 0 {
        ANY_ARMED.store(true, Ordering::SeqCst);
    }
}

/// Disarms every point (environment arming included).
pub fn reset() {
    ensure_env_loaded();
    for slot in &REMAINING {
        slot.store(0, Ordering::SeqCst);
    }
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// Remaining injected panics for a point.
#[must_use]
pub fn remaining(point: FaultPoint) -> u64 {
    ensure_env_loaded();
    REMAINING[point as usize].load(Ordering::SeqCst)
}

/// An injection point. Disarmed (the only production state): one
/// relaxed load, no panic. Armed with a positive countdown: consumes
/// one count and panics with a payload naming the point.
///
/// # Panics
/// Deliberately — that is the injected fault.
pub fn trip(point: FaultPoint) {
    // The env load must precede the disarmed fast path: a process armed
    // *only* through `SAINT_FAULTS` (the CI smoke's stock daemon) calls
    // nothing but `trip`, so this is its one chance to parse the spec.
    // `Once` keeps the post-init cost at a single atomic load.
    ensure_env_loaded();
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let slot = &REMAINING[point as usize];
    let mut remaining = slot.load(Ordering::SeqCst);
    while remaining > 0 {
        match slot.compare_exchange(remaining, remaining - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => panic!("saint-faults: injected panic at {}", point.name()),
            Err(actual) => remaining = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    // The armed state is process-global, so the tests in this file
    // serialize themselves on one lock (cargo's test harness runs them
    // on parallel threads otherwise).
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn names_roundtrip() {
        for point in FaultPoint::ALL {
            assert_eq!(FaultPoint::from_name(point.name()), Some(point));
        }
        assert_eq!(FaultPoint::from_name("nope"), None);
    }

    #[test]
    fn parse_spec_accepts_lists_and_rejects_garbage() {
        let parsed = parse_spec("decode:1, explore : 2 ,,queue_handoff:0").expect("valid spec");
        assert_eq!(
            parsed,
            vec![
                (FaultPoint::Decode, 1),
                (FaultPoint::Explore, 2),
                (FaultPoint::QueueHandoff, 0),
            ]
        );
        assert!(parse_spec("decode").is_err());
        assert!(parse_spec("warp_core:1").is_err());
        assert!(parse_spec("decode:lots").is_err());
        assert_eq!(parse_spec("").expect("empty is fine"), vec![]);
    }

    #[test]
    fn countdown_trips_exactly_n_times() {
        let _guard = serial();
        reset();
        arm(FaultPoint::Decode, 2);
        assert_eq!(remaining(FaultPoint::Decode), 2);
        for expected_remaining in [1, 0] {
            let caught = catch_unwind(|| trip(FaultPoint::Decode));
            let payload = caught.expect_err("armed trip panics");
            let msg = payload.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("injected panic at decode"), "{msg}");
            assert_eq!(remaining(FaultPoint::Decode), expected_remaining);
        }
        // Spent: the point is a no-op again.
        trip(FaultPoint::Decode);
        // Other points were never armed.
        trip(FaultPoint::Explore);
        reset();
    }

    #[test]
    fn disarmed_trip_is_a_no_op() {
        let _guard = serial();
        reset();
        for point in FaultPoint::ALL {
            trip(point);
        }
    }

    #[test]
    fn concurrent_trips_never_overshoot() {
        let _guard = serial();
        reset();
        arm(FaultPoint::ExploreTask, 5);
        let panics: usize = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        (0..100)
                            .filter(|_| catch_unwind(|| trip(FaultPoint::ExploreTask)).is_err())
                            .count()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("counter thread"))
                .sum()
        });
        assert_eq!(panics, 5, "exactly the armed count fires");
        assert_eq!(remaining(FaultPoint::ExploreTask), 0);
        reset();
    }
}
