//! Regression test for environment-only arming: a process that sets
//! `SAINT_FAULTS` and then calls nothing but `trip` (exactly what a
//! stock `saintdroid serve` under the CI fault smoke does) must still
//! fire the armed countdown. This is its own integration-test binary —
//! a separate process — so no other test can initialize the spec
//! before the env var is in place.

use std::panic::catch_unwind;

use saint_faults::FaultPoint;

#[test]
fn env_spec_arms_without_any_programmatic_call() {
    // Set before the crate's `Once` has a chance to run: `trip` below
    // is the first saint-faults call this process makes.
    std::env::set_var(saint_faults::ENV_VAR, "decode:2, explore:1");

    for _ in 0..2 {
        let payload =
            catch_unwind(|| saint_faults::trip(FaultPoint::Decode)).expect_err("armed from env");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected panic at decode"), "{msg}");
    }
    // Countdown spent: decode is a no-op again, explore still armed.
    saint_faults::trip(FaultPoint::Decode);
    assert_eq!(saint_faults::remaining(FaultPoint::Explore), 1);
    catch_unwind(|| saint_faults::trip(FaultPoint::Explore)).expect_err("explore armed from env");
    // Never-armed points are untouched.
    saint_faults::trip(FaultPoint::QueueHandoff);
    saint_faults::reset();
}
