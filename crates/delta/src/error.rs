//! Typed failures of the on-disk artifact store.

use std::fmt;

/// Everything that can be wrong with a persisted delta artifact. Every
/// variant degrades to a cache miss — the scanner re-analyzes the
/// affected slice and the report stays correct.
#[derive(Debug)]
pub enum DeltaError {
    /// The underlying filesystem operation failed (includes the common
    /// "no artifact yet" `NotFound`).
    Io(std::io::Error),
    /// The file is too short to hold even the header.
    Truncated {
        /// Bytes present.
        len: usize,
    },
    /// The leading magic is not `SDLT` — not a delta artifact at all.
    BadMagic,
    /// The artifact was written by a different store format version.
    VersionSkew {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The artifact was written under a different report schema — its
    /// verdict would be missing (or carrying) whole mismatch families.
    SchemaSkew {
        /// Report schema version found in the header.
        found: u32,
        /// Report schema version this build's reports carry.
        expected: u32,
    },
    /// The payload does not hash to the checksum in the header
    /// (bit rot, torn write, truncation past the header).
    ChecksumMismatch,
    /// The checksum held but the payload does not decode to the
    /// expected artifact shape.
    Malformed(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Io(e) => write!(f, "delta artifact io error: {e}"),
            DeltaError::Truncated { len } => {
                write!(
                    f,
                    "delta artifact truncated: {len} bytes is shorter than the header"
                )
            }
            DeltaError::BadMagic => write!(f, "delta artifact has bad magic (not an SDLT file)"),
            DeltaError::VersionSkew { found, expected } => write!(
                f,
                "delta artifact format version skew: found v{found}, expected v{expected}"
            ),
            DeltaError::SchemaSkew { found, expected } => write!(
                f,
                "delta artifact report schema skew: found schema {found}, expected {expected}"
            ),
            DeltaError::ChecksumMismatch => {
                write!(f, "delta artifact payload fails its checksum")
            }
            DeltaError::Malformed(why) => write!(f, "delta artifact malformed: {why}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DeltaError {
    fn from(e: std::io::Error) -> Self {
        DeltaError::Io(e)
    }
}
