//! The incremental scan engine.
//!
//! A scan proceeds in three tiers, cheapest first:
//!
//! 1. **App fast path** — if the whole-app key matches a stored
//!    artifact, the cached merged report is replayed verbatim (only
//!    `duration` is re-measured).
//! 2. **Group reuse** — otherwise the app's classes are partitioned
//!    into analysis groups ([`bundled_groups`]); groups whose key
//!    matches a stored artifact are spliced from cache, and only the
//!    changed groups are projected into sub-APKs and pushed through the
//!    full pipeline ([`SaintDroid::run_parts`]).
//! 3. **Full fallback** — any structural inconsistency (a class the
//!    partition named but the APK no longer holds, which cannot happen
//!    short of a racing mutation) degrades to a plain full rescan.
//!
//! The merge is byte-identical to a full rescan by construction:
//! invocation buckets re-interleave in global sorted-root order,
//! callback buckets replay in APK class order, permission gates are
//! recomputed from the manifest over the union of raw usage sites,
//! declared-SDK verdicts are re-assembled from the manifest over the
//! canonical union of raw per-method SDK usages (when that family is
//! enabled), and
//! the meter is rebuilt from the deduplicated union of per-group load
//! and method charges. Corrupt or stale store entries surface as typed
//! [`DeltaError`](crate::DeltaError)s internally and count as misses —
//! they can never change a report.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use saint_adf::is_dangerous;
use saint_analysis::LoadMeter;
use saint_ir::{Apk, ClassDef, ClassName, DexFile, MethodRef};
use saint_obs::{Counter, Phase};
use saintdroid::amd::declared_sdk::{self, SdkFacts, SdkUsage};
use saintdroid::amd::permission::{assemble, DangerousUsage, PermissionGates};
use saintdroid::{DetectorSet, Mismatch, MismatchKind, Report, SaintDroid};

use crate::graph::bundled_groups;
use crate::hash;
use crate::store::{AppArtifact, DeltaStore, GroupArtifact};

/// What one incremental scan reused and recomputed, in classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Bundled classes the scanner considered (`hits + misses`).
    pub classes_seen: u64,
    /// Classes whose cached artifacts were reused verbatim.
    pub hits: u64,
    /// Classes with no usable cached artifact.
    pub misses: u64,
    /// Classes pushed through a fresh analysis (`== misses`, except a
    /// full fallback re-analyzes everything).
    pub reanalyzed: u64,
    /// Analysis groups the app partitioned into (0 on the app-key fast
    /// path).
    pub groups: usize,
    /// Whether the whole-app fast path served this scan.
    pub app_hit: bool,
}

/// Upper bound on in-process app replay-memo entries. At a few KB per
/// merged report this caps the memo in the tens of MB; on overflow the
/// memo is dropped wholesale (the disk store still has everything, so
/// eviction is a pure latency trade).
const MEMO_CAP: usize = 4096;

/// Upper bound on in-process group-artifact memo entries (groups are
/// smaller but far more numerous than apps).
const GROUP_MEMO_CAP: usize = 16384;

/// Incremental scanner over a [`DeltaStore`].
///
/// Scanners also keep bounded **in-process memos** over both artifact
/// kinds: the merged report of every app this process has scanned (or
/// replayed from disk), and every group slice it has produced or
/// loaded — keyed by the same content keys as the on-disk artifacts.
/// A long-lived scanner — the daemon, a history walk, a rescan wave —
/// serves unchanged apps straight from memory and splices changed apps
/// from in-memory group slices, skipping the artifact reads and
/// decodes entirely. Clones share the memos. Both memos are
/// write-through (every entry also lands in the store), so they can
/// only ever replay what a fresh process would reconstruct from disk.
#[derive(Debug, Clone)]
pub struct DeltaScanner {
    store: DeltaStore,
    memo: Arc<Mutex<HashMap<u64, Report>>>,
    group_memo: Arc<Mutex<HashMap<u64, GroupArtifact>>>,
}

impl DeltaScanner {
    /// Creates a scanner over the store rooted at `root`
    /// (conventionally `.saint/delta/`).
    #[must_use]
    pub fn new(root: impl AsRef<Path>) -> Self {
        DeltaScanner {
            store: DeltaStore::new(root.as_ref()),
            memo: Arc::new(Mutex::new(HashMap::new())),
            group_memo: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The underlying artifact store.
    #[must_use]
    pub fn store(&self) -> &DeltaStore {
        &self.store
    }

    /// Scans `apk`, reusing stored artifacts where their keys match and
    /// re-analyzing only the changed groups. The report is
    /// byte-identical to `tool.run_with_jobs(apk, app_jobs)` except for
    /// the wall-clock `duration` field.
    #[must_use]
    pub fn scan(&self, tool: &SaintDroid, apk: &Apk, app_jobs: usize) -> (Report, DeltaStats) {
        let start = Instant::now();
        let ctx = hash::context_fingerprint(tool);
        let akey = hash::app_key(ctx, apk);
        self.scan_keyed(tool, apk, app_jobs, start, ctx, akey)
    }

    /// Scans an app presented alongside its encoded `SAPK` container
    /// bytes (`sapk` must be the canonical encoding of `apk` — the
    /// daemon's wire payload, a `.sapk` file's contents). The whole-app
    /// fast path is keyed by **one sequential FNV pass over the
    /// container bytes** instead of the structural per-class walk,
    /// which is the dominant cost of an unchanged-app rescan. The
    /// canonical encoding makes the key sound: byte-identical
    /// containers decode to identical apps. A byte-level miss (even a
    /// re-encoding of the same app) degrades to the structural
    /// group-splice tier — never to a wrong report.
    #[must_use]
    pub fn scan_encoded(
        &self,
        tool: &SaintDroid,
        sapk: &[u8],
        apk: &Apk,
        app_jobs: usize,
    ) -> (Report, DeltaStats) {
        let start = Instant::now();
        let ctx = hash::context_fingerprint(tool);
        let akey = hash::encoded_app_key(ctx, sapk);
        self.scan_keyed(tool, apk, app_jobs, start, ctx, akey)
    }

    /// The shared scan body behind both whole-app keyspaces.
    fn scan_keyed(
        &self,
        tool: &SaintDroid,
        apk: &Apk,
        app_jobs: usize,
        start: Instant,
        ctx: u64,
        akey: u64,
    ) -> (Report, DeltaStats) {
        let total = apk.class_count() as u64;

        // Tier 1: whole-app fast path — the in-process memo first, the
        // on-disk artifact second.
        if let Some(mut report) = self.replay(akey, &apk.manifest.package) {
            report.duration = start.elapsed();
            let stats = DeltaStats {
                classes_seen: total,
                hits: total,
                app_hit: true,
                ..DeltaStats::default()
            };
            self.record_merged(tool, &report, stats);
            return (report, stats);
        }

        // Tier 2: per-group reuse.
        let man = hash::manifest_fingerprint(&apk.manifest);
        let groups = bundled_groups(apk);
        let mut stats = DeltaStats {
            classes_seen: total,
            groups: groups.len(),
            ..DeltaStats::default()
        };
        let mut artifacts: Vec<GroupArtifact> = Vec::with_capacity(groups.len());
        for group in &groups {
            let mut members: Vec<(u32, &ClassDef)> = Vec::with_capacity(group.len());
            for (slot, name) in group {
                match class_at(apk, *slot, name) {
                    Some(def) => members.push((*slot, def)),
                    // Unreachable short of the APK mutating under us;
                    // degrade to a plain full rescan rather than guess.
                    None => return self.full_fallback(tool, apk, app_jobs, start, total),
                }
            }
            let key = hash::group_key(ctx, man, &members);
            let names: Vec<ClassName> = group.iter().map(|(_, n)| n.clone()).collect();
            match self.cached_group(key, &names) {
                Some(art) => {
                    stats.hits += group.len() as u64;
                    artifacts.push(art);
                }
                None => {
                    let sub = project(apk, group);
                    let parts = tool.run_parts(&sub, app_jobs);
                    let art = GroupArtifact {
                        members: names,
                        invocation: parts.invocation,
                        callback: parts.callback,
                        usages: parts.usages,
                        sdk_usages: parts.sdk_usages,
                        declares_handler: parts.declares_handler,
                        loaded: parts.loaded,
                        methods: parts.methods,
                    };
                    // Persisting is best-effort: a read-only or full
                    // disk slows future scans down, never breaks this
                    // one.
                    let _ = self.store.save_group(key, &art);
                    self.memoize_group(key, art.clone());
                    stats.misses += group.len() as u64;
                    stats.reanalyzed += group.len() as u64;
                    artifacts.push(art);
                }
            }
        }

        let mut report = merge(tool, apk, artifacts);
        report.duration = start.elapsed();
        self.record_merged(tool, &report, stats);

        let mut stored = report.clone();
        stored.duration = std::time::Duration::ZERO;
        let _ = self.store.save_app(
            akey,
            &AppArtifact {
                report: stored.clone(),
            },
        );
        self.memoize(akey, stored);
        (report, stats)
    }

    /// Looks the whole-app key up in the replay memo, falling back to
    /// the on-disk artifact (and memoizing a disk hit). The package
    /// sanity check guards against the astronomically-unlikely key
    /// collision across apps.
    fn replay(&self, akey: u64, package: &str) -> Option<Report> {
        if let Some(report) = self.memo.lock().get(&akey) {
            if report.package == package {
                return Some(report.clone());
            }
        }
        let art = self.store.load_app(akey).ok()?;
        if art.report.package != package {
            return None;
        }
        self.memoize(akey, art.report.clone());
        Some(art.report)
    }

    /// Inserts into the replay memo, dropping it wholesale at the cap.
    fn memoize(&self, akey: u64, report: Report) {
        let mut memo = self.memo.lock();
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        memo.insert(akey, report);
    }

    /// Looks a group key up in the group memo, falling back to the
    /// on-disk artifact (and memoizing a disk hit). The member-list
    /// check guards both sources the same way.
    fn cached_group(&self, key: u64, names: &[ClassName]) -> Option<GroupArtifact> {
        if let Some(art) = self.group_memo.lock().get(&key) {
            if art.members == names {
                return Some(art.clone());
            }
        }
        let art = self
            .store
            .load_group(key)
            .ok()
            .filter(|a| a.members == names)?;
        self.memoize_group(key, art.clone());
        Some(art)
    }

    /// Inserts into the group memo, dropping it wholesale at the cap.
    fn memoize_group(&self, key: u64, art: GroupArtifact) {
        let mut memo = self.group_memo.lock();
        if memo.len() >= GROUP_MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, art);
    }

    /// Plain full rescan, used when the incremental path cannot even
    /// partition the app. Counted as all-miss, all-reanalyzed.
    fn full_fallback(
        &self,
        tool: &SaintDroid,
        apk: &Apk,
        app_jobs: usize,
        start: Instant,
        total: u64,
    ) -> (Report, DeltaStats) {
        // `run_with_jobs` records the per-app aggregates itself.
        let mut report = tool.run_with_jobs(apk, app_jobs);
        report.duration = start.elapsed();
        let stats = DeltaStats {
            classes_seen: total,
            misses: total,
            reanalyzed: total,
            ..DeltaStats::default()
        };
        if let Some(m) = tool.metrics() {
            m.add(Counter::DeltaHits, stats.hits);
            m.add(Counter::DeltaMisses, stats.misses);
            m.add(Counter::ClassesReanalyzed, stats.reanalyzed);
        }
        (report, stats)
    }

    /// Records the per-app aggregates for a merged (or replayed) report
    /// — the counters [`SaintDroid::run_parts`] deliberately leaves to
    /// the merge so a multi-slice app still counts once.
    fn record_merged(&self, tool: &SaintDroid, report: &Report, stats: DeltaStats) {
        if let Some(m) = tool.metrics() {
            m.record(Phase::ScanTotal, report.duration);
            m.add(Counter::AppsScanned, 1);
            m.add(Counter::MismatchesFound, report.mismatches.len() as u64);
            if tool.detectors().contains(DetectorSet::DECLARED_SDK) {
                m.add(Counter::AppsVetted, 1);
                m.add(
                    Counter::DsdOveruseFound,
                    report.count(MismatchKind::DsdOveruse) as u64,
                );
                m.add(
                    Counter::DsdUnderuseFound,
                    report.count(MismatchKind::DsdUnderuse) as u64,
                );
            }
            report.meter.record_into(m);
            m.add(Counter::DeltaHits, stats.hits);
            m.add(Counter::DeltaMisses, stats.misses);
            m.add(Counter::ClassesReanalyzed, stats.reanalyzed);
        }
    }
}

/// Looks a group member up in its recorded dex slot.
fn class_at<'a>(apk: &'a Apk, slot: u32, name: &ClassName) -> Option<&'a ClassDef> {
    if slot == 0 {
        apk.primary.class(name)
    } else {
        apk.secondary.get(slot as usize - 1)?.class(name)
    }
}

/// Projects one group into a standalone sub-APK: the group's classes in
/// their original dex slots (empty dexes dropped, relative order kept),
/// under the full manifest. Projecting the payload dexes per group —
/// rather than handing every group all payloads — is what keeps the
/// reconstructed meter exact: an out-of-group payload class would
/// charge its superclass lookups to the wrong slice.
fn project(apk: &Apk, group: &[(u32, ClassName)]) -> Apk {
    let mut sub = Apk::new(apk.manifest.clone());
    sub.has_source = apk.has_source;
    sub.primary = DexFile::new(apk.primary.name.clone());
    let mut secondaries: Vec<Option<DexFile>> = vec![None; apk.secondary.len()];
    for (slot, name) in group {
        if *slot == 0 {
            if let Some(c) = apk.primary.class(name) {
                let _ = sub.primary.add_class(c.clone());
            }
        } else if let Some(dex) = apk.secondary.get(*slot as usize - 1) {
            if let Some(c) = dex.class(name) {
                let entry = secondaries[*slot as usize - 1]
                    .get_or_insert_with(|| DexFile::new(dex.name.clone()));
                let _ = entry.add_class(c.clone());
            }
        }
    }
    sub.secondary = secondaries.into_iter().flatten().collect();
    sub
}

/// Splices per-group artifacts into the exact report a full rescan
/// produces (see the module docs for why each step is order-exact).
fn merge(tool: &SaintDroid, apk: &Apk, artifacts: Vec<GroupArtifact>) -> Report {
    let mut rooted: Vec<(MethodRef, Vec<Mismatch>)> = Vec::new();
    let mut callback_buckets: HashMap<ClassName, Vec<Mismatch>> = HashMap::new();
    let mut usages: Vec<DangerousUsage> = Vec::new();
    let mut sdk_usages: Vec<SdkUsage> = Vec::new();
    let mut declares_handler = false;
    let mut loaded: BTreeMap<ClassName, Option<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<MethodRef, usize> = BTreeMap::new();

    for art in artifacts {
        rooted.extend(art.invocation);
        for m in art.callback {
            callback_buckets
                .entry(m.site.class.clone())
                .or_default()
                .push(m);
        }
        usages.extend(art.usages);
        sdk_usages.extend(art.sdk_usages);
        declares_handler |= art.declares_handler;
        loaded.extend(art.loaded);
        methods.extend(art.methods);
    }

    // Invocation: context roots are disjoint across groups and the full
    // scan visits them in one global sorted pass.
    rooted.sort_by(|a, b| a.0.cmp(&b.0));
    let inv = rooted.into_iter().flat_map(|(_, bucket)| bucket);

    // Callback: the full scan iterates `app_classes` in APK order; a
    // callback finding's site class *is* the iterated class.
    let mut cb: Vec<Mismatch> = Vec::new();
    for class in apk.all_classes() {
        if let Some(bucket) = callback_buckets.remove(&class.name) {
            cb.extend(bucket);
        }
    }

    // Permission: usages are emitted grouped by (sorted) site method;
    // sites are group-exclusive, so a stable per-site sort of the
    // concatenation reproduces the global emission order. The three
    // whole-app gates are recomputed from the manifest + OR-ed handler
    // flags, then Algorithm 4's decision half runs unchanged.
    usages.sort_by(|a, b| a.site.cmp(&b.site));
    let gates = PermissionGates {
        requests_dangerous: apk.manifest.uses_permissions.iter().any(is_dangerous),
        targets_runtime: apk.manifest.targets_runtime_permissions(),
        implements_handler: declares_handler,
    };
    let prm = assemble(gates, apk.manifest.supported_levels(), usages);

    // Declared-SDK: usages are collected per app method independently,
    // and methods are group-exclusive, so the canonical sort of the
    // union reproduces the full scan's usage order; Algorithm DSD's
    // decision half (`assemble`) then runs over manifest-level facts
    // recomputed from the whole-app manifest. Gated on the tool's
    // detector set so a DSD-disabled tool merges exactly what its full
    // scan would produce.
    let dsd = if tool.detectors().contains(DetectorSet::DECLARED_SDK) {
        declared_sdk::sort_usages(&mut sdk_usages);
        declared_sdk::assemble(
            SdkFacts::of(&apk.manifest),
            apk.manifest.supported_levels(),
            sdk_usages,
        )
    } else {
        Vec::new()
    };

    let mut report = Report::new(apk.manifest.package.clone(), "SAINTDroid");
    report.extend_deduped(inv);
    report.extend_deduped(cb);
    report.extend_deduped(prm);
    report.extend_deduped(dsd);

    // Meter: each load-table / explored-method entry corresponds to
    // exactly one meter event; shared framework entries carry identical
    // charges in every group, so the deduplicated union reconstructs
    // the full scan's meter.
    let mut meter = LoadMeter::new();
    for charge in loaded.values() {
        match charge {
            Some(bytes) => meter.record_class(*bytes),
            None => meter.record_unresolved(),
        }
    }
    for bytes in methods.values() {
        meter.record_method(*bytes);
    }
    report.meter = meter;
    report
}
