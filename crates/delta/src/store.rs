//! The on-disk artifact store (`.saint/delta/`).
//!
//! One file per artifact, named by its content key:
//!
//! ```text
//! group-<key:016x>.sdlt     per-group analysis slice
//! app-<key:016x>.sdlt       whole-app merged report (fast path)
//! ```
//!
//! Layout (everything little-endian):
//!
//! ```text
//! offset  size  field       encoding
//! 0       4     magic       b"SDLT"
//! 4       4     version     u32 — store format
//! 8       4     schema      u32 — report schema the artifact carries
//! 12      8     checksum    u64 — FNV-1a over bytes[20..]
//! 20      …     payload     serde_json of the artifact
//! ```
//!
//! Writes are atomic (unique temp file + rename), so a crashed writer
//! leaves either the old artifact or none — never a torn one. Reads
//! validate magic, version, and checksum before touching the payload;
//! every failure is a typed [`DeltaError`] the scanner degrades to a
//! cache miss.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use saint_frozen::{fnv1a, FNV_OFFSET};
use saint_ir::{ClassName, MethodRef};
use saintdroid::amd::declared_sdk::SdkUsage;
use saintdroid::amd::permission::DangerousUsage;
use saintdroid::{Mismatch, Report, REPORT_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};

use crate::error::DeltaError;

/// Store format version; bumped on any layout or artifact-shape
/// change. Folded into content keys *and* checked in the header, so a
/// version bump invalidates every existing artifact.
///
/// History: 1 = initial layout (16-byte header, three AMD families);
/// 2 = report-schema field added to the header, `sdk_usages` added to
/// group artifacts (DSD family).
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"SDLT";
const HEADER_LEN: usize = 20;

/// The persisted analysis slice of one class group — exactly the
/// [`saintdroid::ScanParts`] of the group's projected sub-APK, plus
/// the member list for accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupArtifact {
    /// Member classes, sorted (for counters and sanity checks).
    pub members: Vec<ClassName>,
    /// Invocation findings bucketed per context root, sorted by root.
    pub invocation: Vec<(MethodRef, Vec<Mismatch>)>,
    /// Callback findings, in the group's class-iteration order.
    pub callback: Vec<Mismatch>,
    /// Raw dangerous-permission usages of the group's methods.
    pub usages: Vec<DangerousUsage>,
    /// Whether the group declares `onRequestPermissionsResult`.
    pub declares_handler: bool,
    /// Raw declared-SDK usage sites of the group's methods (empty when
    /// the scanning tool's detector set excludes the DSD family).
    pub sdk_usages: Vec<SdkUsage>,
    /// CLVM load-table entries with byte charges (`None` = failed
    /// lookup) — the class half of the reconstructed meter.
    pub loaded: Vec<(ClassName, Option<usize>)>,
    /// Explored methods with artifact byte charges — the method half.
    pub methods: Vec<(MethodRef, usize)>,
}

/// The persisted whole-app fast path: the fully merged report of a
/// byte-identical prior scan (with `duration` zeroed — wall time is
/// re-measured on replay).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppArtifact {
    /// The merged report.
    pub report: Report,
}

/// A directory of content-addressed artifacts.
#[derive(Debug, Clone)]
pub struct DeltaStore {
    root: PathBuf,
}

/// Distinguishes the two artifact kinds in file names.
#[derive(Clone, Copy)]
enum Kind {
    Group,
    App,
}

impl Kind {
    fn prefix(self) -> &'static str {
        match self {
            Kind::Group => "group",
            Kind::App => "app",
        }
    }
}

fn encode<T: serde::Serialize>(artifact: &T) -> Result<String, DeltaError> {
    serde_json::to_string(artifact).map_err(|e| DeltaError::Malformed(e.to_string()))
}

fn decode<T: serde::Deserialize>(payload: &[u8]) -> Result<T, DeltaError> {
    let text = std::str::from_utf8(payload).map_err(|e| DeltaError::Malformed(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| DeltaError::Malformed(e.to_string()))
}

impl DeltaStore {
    /// Opens (without touching the filesystem) a store rooted at `root`
    /// — conventionally `.saint/delta/`.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DeltaStore { root: root.into() }
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the artifact for `key`.
    fn path(&self, kind: Kind, key: u64) -> PathBuf {
        self.root.join(format!("{}-{key:016x}.sdlt", kind.prefix()))
    }

    /// Loads and validates the group artifact for `key`.
    pub fn load_group(&self, key: u64) -> Result<GroupArtifact, DeltaError> {
        let data = self.read_validated(Kind::Group, key)?;
        decode(&data[HEADER_LEN..])
    }

    /// Persists the group artifact for `key` atomically.
    pub fn save_group(&self, key: u64, artifact: &GroupArtifact) -> Result<(), DeltaError> {
        self.write_atomic(Kind::Group, key, encode(artifact)?.as_bytes())
    }

    /// Loads and validates the whole-app artifact for `key`.
    pub fn load_app(&self, key: u64) -> Result<AppArtifact, DeltaError> {
        let data = self.read_validated(Kind::App, key)?;
        decode(&data[HEADER_LEN..])
    }

    /// Persists the whole-app artifact for `key` atomically.
    pub fn save_app(&self, key: u64, artifact: &AppArtifact) -> Result<(), DeltaError> {
        self.write_atomic(Kind::App, key, encode(artifact)?.as_bytes())
    }

    /// Reads the artifact file and validates its header; returns the
    /// whole file so callers decode the payload slice without a copy.
    fn read_validated(&self, kind: Kind, key: u64) -> Result<Vec<u8>, DeltaError> {
        let data = fs::read(self.path(kind, key))?;
        if data.len() < HEADER_LEN {
            return Err(DeltaError::Truncated { len: data.len() });
        }
        if data[0..4] != MAGIC {
            return Err(DeltaError::BadMagic);
        }
        let mut v4 = [0u8; 4];
        v4.copy_from_slice(&data[4..8]);
        let version = u32::from_le_bytes(v4);
        if version != FORMAT_VERSION {
            return Err(DeltaError::VersionSkew {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        v4.copy_from_slice(&data[8..12]);
        let schema = u32::from_le_bytes(v4);
        if schema != REPORT_SCHEMA_VERSION {
            return Err(DeltaError::SchemaSkew {
                found: schema,
                expected: REPORT_SCHEMA_VERSION,
            });
        }
        let mut v8 = [0u8; 8];
        v8.copy_from_slice(&data[12..20]);
        let checksum = u64::from_le_bytes(v8);
        if fnv1a(&data[HEADER_LEN..], FNV_OFFSET) != checksum {
            return Err(DeltaError::ChecksumMismatch);
        }
        Ok(data)
    }

    fn write_atomic(&self, kind: Kind, key: u64, payload: &[u8]) -> Result<(), DeltaError> {
        fs::create_dir_all(&self.root)?;
        let mut data = Vec::with_capacity(HEADER_LEN + payload.len());
        data.extend_from_slice(&MAGIC);
        data.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        data.extend_from_slice(&REPORT_SCHEMA_VERSION.to_le_bytes());
        data.extend_from_slice(&fnv1a(payload, FNV_OFFSET).to_le_bytes());
        data.extend_from_slice(payload);
        // Unique temp name: pid + a process-wide counter, so concurrent
        // writers (daemon workers) never clobber each other's temp.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .root
            .join(format!(".tmp-{}-{seq}-{key:016x}", std::process::id()));
        fs::write(&tmp, &data)?;
        match fs::rename(&tmp, self.path(kind, key)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupArtifact {
        GroupArtifact {
            members: vec![ClassName::new("p.A")],
            invocation: Vec::new(),
            callback: Vec::new(),
            usages: Vec::new(),
            declares_handler: false,
            sdk_usages: Vec::new(),
            loaded: vec![
                (ClassName::new("p.A"), Some(42)),
                (ClassName::new("p.Gone"), None),
            ],
            methods: vec![(MethodRef::new("p.A", "go", "()V"), 7)],
        }
    }

    #[test]
    fn round_trips_group_artifacts() {
        let dir = std::env::temp_dir().join(format!("sdlt-store-{}", std::process::id()));
        let store = DeltaStore::new(&dir);
        store.save_group(0xabcd, &sample()).unwrap();
        let back = store.load_group(0xabcd).unwrap();
        assert_eq!(back.members, sample().members);
        assert_eq!(back.loaded, sample().loaded);
        assert_eq!(back.methods, sample().methods);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifact_is_io_not_found() {
        let store = DeltaStore::new(std::env::temp_dir().join("sdlt-none"));
        match store.load_group(1) {
            Err(DeltaError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }

    #[test]
    fn corruption_is_typed() {
        let dir = std::env::temp_dir().join(format!("sdlt-corrupt-{}", std::process::id()));
        let store = DeltaStore::new(&dir);
        store.save_group(7, &sample()).unwrap();
        let path = store.path(Kind::Group, 7);
        let mut data = std::fs::read(&path).unwrap();

        // Bit flip in the payload → checksum mismatch.
        let last = data.len() - 1;
        data[last] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            store.load_group(7),
            Err(DeltaError::ChecksumMismatch)
        ));

        // Version skew.
        data[last] ^= 0x40;
        data[4] = 99;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            store.load_group(7),
            Err(DeltaError::VersionSkew { found: 99, .. })
        ));

        // Report-schema skew (version restored, schema patched).
        data[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        data[8] = 99;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            store.load_group(7),
            Err(DeltaError::SchemaSkew { found: 99, .. })
        ));

        // Truncation below the header.
        std::fs::write(&path, &data[..10]).unwrap();
        assert!(matches!(
            store.load_group(7),
            Err(DeltaError::Truncated { len: 10 })
        ));

        // Wrong magic.
        std::fs::write(&path, b"NOPE000000000000000000000000").unwrap();
        assert!(matches!(store.load_group(7), Err(DeltaError::BadMagic)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_dsd_store_artifact_is_a_typed_miss() {
        // Regression for the delta-key bugfix: an artifact written by
        // the v1 store (16-byte header, pre-DSD report schema) must
        // surface as a typed version skew — never decode into a report
        // silently missing the DSD family.
        let dir = std::env::temp_dir().join(format!("sdlt-v1-{}", std::process::id()));
        let store = DeltaStore::new(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let payload = br#"{"report":{}}"#;
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&fnv1a(payload, FNV_OFFSET).to_le_bytes());
        v1.extend_from_slice(payload);
        std::fs::write(store.path(Kind::App, 5), &v1).unwrap();
        assert!(matches!(
            store.load_app(5),
            Err(DeltaError::VersionSkew {
                found: 1,
                expected: FORMAT_VERSION
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_format_tracks_report_schema() {
        // Coupling lint: whenever the report schema changes (a detector
        // family added, a kind's meaning changed), the store format
        // version must bump with it so pre-change artifacts invalidate
        // wholesale. If this assertion fails you changed one without
        // the other — bump FORMAT_VERSION and update this pin.
        assert_eq!(
            (FORMAT_VERSION, REPORT_SCHEMA_VERSION),
            (2, 2),
            "store format and report schema must move together"
        );
    }
}
