//! Analysis-group partitioning.
//!
//! A *group* is a weakly-connected component of the bundled-class
//! reference graph. From a class `C` the pipeline can only ever reach
//! another bundled class through one of these reference kinds:
//!
//! * `C`'s superclass and implemented interfaces (ancestor walks);
//! * `Invoke` targets' declaring classes (call resolution);
//! * `NewInstance` classes (allocation-site typing);
//! * `FieldGet`/`FieldPut` declaring classes;
//! * `ConstString` payloads that name a bundled class (the
//!   `DexClassLoader.loadClass` / `Class.forName` late-binding chase —
//!   the abstract interpreter is intra-procedural, so the string
//!   constant always sits in the same body as the load site).
//!
//! That edge set is a superset of every CLVM lookup the analysis can
//! make from `C` (descriptor types are never loaded), so a group's scan
//! results are independent of every other group — the invariant the
//! incremental merge rests on. Edges to *framework* (non-bundled)
//! classes don't connect groups: framework state is app-invariant and
//! parity-tested shareable.

use std::collections::HashMap;

use saint_ir::{Apk, ClassDef, ClassName, Instr};

/// Partitions the app's bundled classes into analysis groups. Each
/// group lists `(dex_slot, name)` members sorted by name (slot 0 =
/// primary, `i + 1` = secondary dex `i`); groups come back sorted by
/// their first member's name, so the partition is deterministic.
#[must_use]
pub fn bundled_groups(apk: &Apk) -> Vec<Vec<(u32, ClassName)>> {
    // Index every bundled class; duplicates across dexes keep their
    // first (primary-first) slot, matching `Apk::any_class` resolution.
    let mut index: HashMap<&str, usize> = HashMap::new();
    let mut nodes: Vec<(u32, &ClassDef)> = Vec::new();
    // A name bundled twice (primary + payload dex) is one analysis
    // entity — `load_class` always resolves it primary-first — so
    // duplicate placements are unioned up front.
    let mut duplicates: Vec<(usize, usize)> = Vec::new();
    for class in apk.primary.classes() {
        index.entry(class.name.as_str()).or_insert(nodes.len());
        nodes.push((0, class));
    }
    for (i, dex) in apk.secondary.iter().enumerate() {
        for class in dex.classes() {
            let me = nodes.len();
            let first = *index.entry(class.name.as_str()).or_insert(me);
            if first != me {
                duplicates.push((first, me));
            }
            nodes.push((i as u32 + 1, class));
        }
    }

    let mut uf = UnionFind::new(nodes.len());
    for (a, b) in duplicates {
        uf.union(a, b);
    }
    for (i, (_, class)) in nodes.iter().enumerate() {
        for name in referenced_names(class) {
            if let Some(&j) = index.get(name) {
                uf.union(i, j);
            }
        }
    }

    let mut by_root: HashMap<usize, Vec<(u32, ClassName)>> = HashMap::new();
    for (i, (slot, class)) in nodes.iter().enumerate() {
        by_root
            .entry(uf.find(i))
            .or_default()
            .push((*slot, class.name.clone()));
    }
    let mut groups: Vec<Vec<(u32, ClassName)>> = by_root.into_values().collect();
    for g in &mut groups {
        g.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    }
    groups.sort_unstable_by(|a, b| a[0].1.cmp(&b[0].1));
    groups
}

/// Every class name `class` can steer the analysis toward — see the
/// module docs for why this list is exhaustive.
fn referenced_names(class: &ClassDef) -> Vec<&str> {
    let mut out: Vec<&str> = Vec::new();
    if let Some(sup) = &class.super_class {
        out.push(sup.as_str());
    }
    for itf in &class.interfaces {
        out.push(itf.as_str());
    }
    for method in &class.methods {
        let Some(body) = &method.body else { continue };
        for (_, bb) in body.iter() {
            for instr in &bb.instrs {
                match instr {
                    Instr::Invoke { method, .. } => out.push(method.class.as_str()),
                    Instr::NewInstance { class, .. } => out.push(class.as_str()),
                    Instr::FieldGet { field, .. } | Instr::FieldPut { field, .. } => {
                        out.push(field.class.as_str());
                    }
                    Instr::ConstString { value, .. } => out.push(value.as_str()),
                    _ => {}
                }
            }
        }
    }
    out
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder, BodyBuilder, ClassBuilder, ClassOrigin, MethodRef};

    fn caller(name: &str, callee: &str) -> ClassDef {
        let target = MethodRef::new(callee, "run", "()V");
        ClassBuilder::new(name, ClassOrigin::App)
            .method("go", "()V", move |b: &mut BodyBuilder| {
                b.invoke_virtual(target.clone(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build()
    }

    fn leaf(name: &str) -> ClassDef {
        ClassBuilder::new(name, ClassOrigin::App)
            .method("run", "()V", |b: &mut BodyBuilder| {
                b.ret_void();
            })
            .unwrap()
            .build()
    }

    #[test]
    fn call_edges_connect_and_islands_stay_apart() {
        let apk = ApkBuilder::new("p.app", ApiLevel::new(21), ApiLevel::new(28))
            .class(caller("p.A", "p.B"))
            .unwrap()
            .class(leaf("p.B"))
            .unwrap()
            .class(leaf("p.Island"))
            .unwrap()
            .build();
        let groups = bundled_groups(&apk);
        assert_eq!(groups.len(), 2);
        let names: Vec<Vec<&str>> = groups
            .iter()
            .map(|g| g.iter().map(|(_, n)| n.as_str()).collect())
            .collect();
        assert_eq!(names[0], vec!["p.A", "p.B"]);
        assert_eq!(names[1], vec!["p.Island"]);
    }

    #[test]
    fn framework_references_do_not_merge_groups() {
        // Both classes extend the same framework class; that must not
        // union them (framework classes are not bundled nodes).
        let a = ClassBuilder::new("p.A", ClassOrigin::App)
            .extends("android.app.Activity")
            .build();
        let b = ClassBuilder::new("p.B", ClassOrigin::App)
            .extends("android.app.Activity")
            .build();
        let apk = ApkBuilder::new("p.app", ApiLevel::new(21), ApiLevel::new(28))
            .class(a)
            .unwrap()
            .class(b)
            .unwrap()
            .build();
        assert_eq!(bundled_groups(&apk).len(), 2);
    }

    #[test]
    fn const_string_late_binding_connects() {
        let loader = ClassBuilder::new("p.Loader", ClassOrigin::App)
            .method("load", "()V", |b: &mut BodyBuilder| {
                b.const_str(saint_ir::Reg(0), "p.Payload");
                b.ret_void();
            })
            .unwrap()
            .build();
        let mut apk = ApkBuilder::new("p.app", ApiLevel::new(21), ApiLevel::new(28))
            .class(loader)
            .unwrap()
            .build();
        let mut dex = saint_ir::DexFile::new("assets/payload.dex");
        dex.add_class(leaf("p.Payload")).unwrap();
        apk.secondary.push(dex);
        let groups = bundled_groups(&apk);
        assert_eq!(
            groups.len(),
            1,
            "loadClass constant links loader and payload"
        );
        assert_eq!(groups[0][1], (1, ClassName::new("p.Payload")));
    }
}
