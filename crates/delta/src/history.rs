//! Version-lineage scanning and evolution reports.
//!
//! The related work's evolution-aware angle: given an app's version
//! history, scan oldest-first (each version's scan warms the artifact
//! store for the next — consecutive versions share most classes) and
//! report *when* each mismatch was introduced and, if ever, fixed.

use saint_ir::Apk;
use saintdroid::{Report, SaintDroid};

use crate::scanner::{DeltaScanner, DeltaStats};

/// One scanned version of the lineage.
#[derive(Debug, Clone)]
pub struct VersionScan {
    /// Caller-supplied version label (e.g. the file name).
    pub label: String,
    /// The version's full scan report.
    pub report: Report,
    /// What the scan reused from earlier versions.
    pub stats: DeltaStats,
}

/// The life of one distinct mismatch across the lineage. Identity is
/// the detector's dedup key (kind + site + api + permission); a
/// mismatch that disappears and later returns gets a fresh entry.
#[derive(Debug, Clone)]
pub struct EvolutionEntry {
    /// Human-readable identity: `kind site -> api [permission]`.
    pub key: String,
    /// Label of the first version exhibiting the mismatch.
    pub introduced: String,
    /// Label of the first later version *not* exhibiting it, if any.
    pub fixed: Option<String>,
}

/// Everything a lineage scan produced.
#[derive(Debug, Clone)]
pub struct EvolutionReport {
    /// Per-version scans, oldest first.
    pub versions: Vec<VersionScan>,
    /// Mismatch lifetimes, in order of first introduction (ties in
    /// report order).
    pub entries: Vec<EvolutionEntry>,
}

impl EvolutionReport {
    /// Total mismatches across the newest version (the lineage's
    /// current exposure).
    #[must_use]
    pub fn current_mismatches(&self) -> usize {
        self.versions
            .last()
            .map_or(0, |v| v.report.mismatches.len())
    }
}

/// Scans `versions` oldest-first through `scanner`, reusing artifacts
/// across versions, and derives the evolution entries.
#[must_use]
pub fn scan_history(
    scanner: &DeltaScanner,
    tool: &SaintDroid,
    versions: &[(String, Apk)],
    app_jobs: usize,
) -> EvolutionReport {
    let mut scans = Vec::with_capacity(versions.len());
    let mut entries: Vec<EvolutionEntry> = Vec::new();
    // Open entry per live identity: index into `entries`.
    let mut open: std::collections::HashMap<String, usize> = std::collections::HashMap::new();

    for (label, apk) in versions {
        let (report, stats) = scanner.scan(tool, apk, app_jobs);

        let mut present: std::collections::HashSet<String> = std::collections::HashSet::new();
        for m in &report.mismatches {
            let key = identity(m);
            present.insert(key.clone());
            if !open.contains_key(&key) {
                open.insert(key.clone(), entries.len());
                entries.push(EvolutionEntry {
                    key,
                    introduced: label.clone(),
                    fixed: None,
                });
            }
        }
        // Anything open but absent from this version was fixed here.
        let fixed_now: Vec<String> = open
            .keys()
            .filter(|k| !present.contains(*k))
            .cloned()
            .collect();
        for key in fixed_now {
            if let Some(i) = open.remove(&key) {
                entries[i].fixed = Some(label.clone());
            }
        }

        scans.push(VersionScan {
            label: label.clone(),
            report,
            stats,
        });
    }

    EvolutionReport {
        versions: scans,
        entries,
    }
}

/// Stable, human-readable mismatch identity across versions — the same
/// fields as [`Mismatch::dedup_key`](saintdroid::Mismatch::dedup_key).
fn identity(m: &saintdroid::Mismatch) -> String {
    let perm = m
        .permission
        .as_ref()
        .map(|p| format!(" [{p}]"))
        .unwrap_or_default();
    format!("{:?} {} -> {}{}", m.kind, m.site, m.api, perm)
}
