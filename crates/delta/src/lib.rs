//! Incremental & differential scanning (`saint-delta`).
//!
//! Real store traffic is overwhelmingly *updates* of already-scanned
//! apps. This crate makes a rescan pay only for what changed:
//!
//! * [`hash`] content-addresses classes with the repo's FNV fingerprint
//!   scheme (over the canonical `codec` encoding) and folds in the
//!   framework fingerprint, the exploration policy, and the manifest —
//!   any of those changing invalidates every cached slice;
//! * [`graph`] partitions an app's bundled classes into *analysis
//!   groups*: weakly-connected components of the class-reference graph.
//!   A group is the smallest unit whose analysis results are provably
//!   independent of the rest of the app (every CLVM lookup the pipeline
//!   can make from a class follows one of the graph's edge kinds);
//! * [`store`] persists one artifact per group (plus a whole-app
//!   fast-path artifact) in a versioned, checksummed on-disk store
//!   under `.saint/delta/`, with typed [`DeltaError`]s for every way a
//!   file can be wrong;
//! * [`scanner`] is the engine: on rescan it re-runs the pipeline only
//!   over groups whose key changed (projecting each into a sub-APK) and
//!   splices cached per-group findings back together so the merged
//!   report is **byte-identical** to a full rescan (modulo wall-clock
//!   `duration`) — the tier-1 differential-correctness gate. Long-lived
//!   scanners additionally keep bounded write-through in-process memos
//!   of both artifact kinds, and apps presented as encoded `SAPK`
//!   containers ([`DeltaScanner::scan_encoded`]) take a byte-keyed fast
//!   path that skips the structural hash walk entirely;
//! * [`history`] scans a version lineage oldest-first, reusing
//!   artifacts across versions, and reports the version at which each
//!   mismatch was introduced or fixed (the evolution-aware angle of the
//!   related work).
//!
//! Corrupt, truncated, or version-skewed store entries are detected,
//! reported as typed errors internally, and silently degrade to a fresh
//! rescan of the affected slice — the store can never make a report
//! wrong, only slower.

pub mod error;
pub mod graph;
pub mod hash;
pub mod history;
pub mod scanner;
pub mod store;

pub use error::DeltaError;
pub use graph::bundled_groups;
pub use history::{scan_history, EvolutionEntry, EvolutionReport, VersionScan};
pub use scanner::{DeltaScanner, DeltaStats};
pub use store::{AppArtifact, DeltaStore, GroupArtifact, FORMAT_VERSION};
