//! Content addressing for the incremental layer.
//!
//! Everything is the repo's standard FNV-1a 64-bit scheme
//! ([`saint_frozen::fnv1a`]). A cached artifact is valid iff its key
//! matches, and the key folds in every input the analysis of a slice
//! can observe:
//!
//! * the store format version (layout changes invalidate wholesale);
//! * the report schema version and the tool's enabled detector set —
//!   an artifact scanned by three families must never be replayed as
//!   the verdict of four (it would splice reports silently missing the
//!   new family's findings);
//! * the framework model fingerprint ([`saint_frozen::spec_fingerprint`]);
//! * the exploration policy (`ExploreConfig` — e.g. an ablation build
//!   must not reuse a default-policy artifact);
//! * the app manifest (supported level range, permissions, target —
//!   all of it, via the canonical serde encoding);
//! * the member classes: per-dex placement and canonical class bytes.
//!
//! Deliberately *excluded*: `app_jobs` and cache attachments — reports
//! are parity-tested to be identical across those, so artifacts are
//! shared across them.

use saint_frozen::{fnv1a, spec_fingerprint, FNV_OFFSET};
use saint_ir::{codec, Apk, ClassDef, Manifest};
use saintdroid::SaintDroid;

use crate::store::FORMAT_VERSION;

/// Fingerprint of one class: FNV-1a over its canonical binary encoding
/// (the same bytes the frozen corpus format stores).
#[must_use]
pub fn class_fingerprint(class: &ClassDef) -> u64 {
    fnv1a(&codec::encode_class(class), FNV_OFFSET)
}

/// Fingerprint of everything scan-relevant *outside* the app payload:
/// store format, report schema, enabled detector set, framework model,
/// exploration policy.
#[must_use]
pub fn context_fingerprint(tool: &SaintDroid) -> u64 {
    let mut h = fnv1a(&FORMAT_VERSION.to_le_bytes(), FNV_OFFSET);
    // An artifact's verdict is only complete relative to the mismatch
    // taxonomy it was scanned under (schema) and the families the tool
    // actually ran (detector set); folding both makes enabling,
    // disabling, or adding a detector a typed cache miss instead of a
    // wrong-report splice.
    h = fnv1a(&saintdroid::REPORT_SCHEMA_VERSION.to_le_bytes(), h);
    h = fnv1a(&[tool.detectors().bits()], h);
    h = fnv1a(
        &spec_fingerprint(tool.arm().framework().spec()).to_le_bytes(),
        h,
    );
    let c = tool.config();
    h = fnv1a(
        &[
            u8::from(c.follow_framework),
            u8::from(c.follow_dynamic),
            u8::from(c.skip_anonymous),
            u8::from(c.preload_all),
        ],
        h,
    );
    h
}

/// Fingerprint of the manifest via its canonical serde encoding.
#[must_use]
pub fn manifest_fingerprint(manifest: &Manifest) -> u64 {
    let text = serde_json::to_string(manifest).unwrap_or_default();
    fnv1a(text.as_bytes(), FNV_OFFSET)
}

/// One class's contribution to a group/app key: which dex slot it lives
/// in (0 = primary, i+1 = secondary `i` — placement changes analysis:
/// only primary methods are exploration roots), its name, and its
/// content fingerprint.
fn fold_member(mut h: u64, dex_slot: u32, class: &ClassDef) -> u64 {
    h = fnv1a(&dex_slot.to_le_bytes(), h);
    h = fnv1a(class.name.as_str().as_bytes(), h);
    fnv1a(&class_fingerprint(class).to_le_bytes(), h)
}

/// Key of one analysis group. `members` must come in a deterministic
/// order (the group builder emits them sorted by name); each entry is
/// `(dex_slot, class)`.
#[must_use]
pub fn group_key(context: u64, manifest: u64, members: &[(u32, &ClassDef)]) -> u64 {
    let mut h = fnv1a(&context.to_le_bytes(), FNV_OFFSET);
    h = fnv1a(&manifest.to_le_bytes(), h);
    for (slot, class) in members {
        h = fold_member(h, *slot, class);
    }
    h
}

/// Whole-app key: the group key over *every* bundled class, in
/// APK iteration order (primary then secondary dexes). An app whose
/// key matches needs no analysis at all — the cached merged report is
/// replayed verbatim.
/// Whole-app key of an app presented as its encoded `SAPK` container
/// bytes: one sequential FNV pass over the container instead of the
/// structural per-class walk of [`app_key`]. The container encoding is
/// canonical, so byte-identical containers decode to identical apps —
/// the key gates the same fast path at a fraction of the hashing cost.
/// The keyspace is domain-separated from [`app_key`]'s; the same app
/// scanned through both entry points simply populates both artifacts.
#[must_use]
pub fn encoded_app_key(context: u64, sapk: &[u8]) -> u64 {
    let mut h = fnv1a(&context.to_le_bytes(), FNV_OFFSET);
    h = fnv1a(b"sapk-container", h);
    fnv1a(sapk, h)
}

#[must_use]
pub fn app_key(context: u64, apk: &Apk) -> u64 {
    let mut h = fnv1a(&context.to_le_bytes(), FNV_OFFSET);
    h = fnv1a(&manifest_fingerprint(&apk.manifest).to_le_bytes(), h);
    for class in apk.primary.classes() {
        h = fold_member(h, 0, class);
    }
    for (i, dex) in apk.secondary.iter().enumerate() {
        for class in dex.classes() {
            h = fold_member(h, i as u32 + 1, class);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin};

    fn apk() -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        ApkBuilder::new("p.app", ApiLevel::new(21), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn class_fingerprint_tracks_content() {
        let a = apk();
        let class = a.primary.classes().next().unwrap();
        let fp = class_fingerprint(class);
        assert_eq!(fp, class_fingerprint(class), "deterministic");
        let mut changed = class.clone();
        changed.interfaces.push("p.Marker".into());
        assert_ne!(fp, class_fingerprint(&changed));
    }

    #[test]
    fn context_fingerprint_folds_detector_set() {
        use saint_adf::{AndroidFramework, SynthConfig};
        use saintdroid::DetectorSet;
        use std::sync::Arc;

        let framework = Arc::new(AndroidFramework::with_scale(&SynthConfig::small()));
        let amd = SaintDroid::new(Arc::clone(&framework));
        let all = SaintDroid::new(framework).with_detectors(DetectorSet::all());
        assert_eq!(
            context_fingerprint(&amd),
            context_fingerprint(&amd),
            "deterministic"
        );
        assert_ne!(
            context_fingerprint(&amd),
            context_fingerprint(&all),
            "enabling a detector family must invalidate every cached artifact"
        );
    }

    #[test]
    fn app_key_tracks_manifest_and_payload() {
        let a = apk();
        let ctx = 7;
        let base = app_key(ctx, &a);
        assert_eq!(base, app_key(ctx, &a), "deterministic");

        let mut remanifested = a.clone();
        remanifested.manifest.package = "p.other".into();
        assert_ne!(base, app_key(ctx, &remanifested));

        let mut repacked = a.clone();
        let class = a.primary.classes().next().unwrap().clone();
        repacked.primary = saint_ir::DexFile::new("classes.dex");
        let mut dex = saint_ir::DexFile::new("assets/p.dex");
        dex.add_class(class).unwrap();
        repacked.secondary.push(dex);
        assert_ne!(
            base,
            app_key(ctx, &repacked),
            "dex placement is key-relevant"
        );
    }
}
