//! Read-only memory mapping — the one `unsafe` boundary of the crate.
//!
//! The workspace vendors no libc/memmap crate, so the two syscalls we
//! need are declared directly against the C runtime std already links.
//! Everything outside this module sees only a safe `&[u8]`: the map is
//! private, read-only, page-backed, and unmapped on drop. When `mmap`
//! is unavailable (or fails — empty files, exotic filesystems), the
//! wrapper silently falls back to reading the file into an owned
//! buffer, so callers never have to care which mode they got beyond
//! the [`MappedBytes::is_mapped`] provenance bit.

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// A read-only view of a file: an `mmap` when the platform grants one,
/// an owned heap buffer otherwise.
pub struct MappedBytes {
    backing: Backing,
}

enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE over a file we own a
// read handle to; the pointer is never written through and the region
// stays valid until `munmap` in Drop. Sharing immutable bytes across
// threads is sound.
unsafe impl Send for MappedBytes {}
unsafe impl Sync for MappedBytes {}

#[cfg(unix)]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

impl MappedBytes {
    /// Maps `path` read-only, falling back to an owned read on any
    /// mapping failure.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened
    /// or (in fallback mode) read.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file larger than usize")
        })?;
        #[cfg(unix)]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open descriptor for the whole call;
            // len is the current file size; a MAP_FAILED return is
            // checked before the pointer is ever used.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if !std::ptr::eq(ptr, usize::MAX as *mut core::ffi::c_void) && !ptr.is_null() {
                return Ok(MappedBytes {
                    backing: Backing::Mapped {
                        ptr: ptr.cast_const().cast(),
                        len,
                    },
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedBytes {
            backing: Backing::Owned(buf),
        })
    }

    /// Wraps an already-owned buffer (tests, fuzzing, in-memory
    /// compile-then-attach flows).
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        MappedBytes {
            backing: Backing::Owned(bytes),
        }
    }

    /// Whether the view is an actual page mapping (`true`) or the
    /// owned-buffer fallback (`false`).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// The mapped bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives
            // until Drop; the region is never mutated.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(v) => v.as_slice(),
        }
    }
}

impl std::ops::Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly one munmap for the one successful mmap.
            unsafe {
                sys::munmap(ptr.cast_mut().cast(), len);
            }
        }
    }
}

impl std::fmt::Debug for MappedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBytes")
            .field("len", &self.as_slice().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("saint-frozen-mmap-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_file("contents", b"frozen artifact bytes");
        let map = MappedBytes::open(&path).unwrap();
        assert_eq!(&*map, b"frozen artifact bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_file("empty", b"");
        let map = MappedBytes::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn owned_wrapper_round_trips() {
        let map = MappedBytes::from_vec(vec![1, 2, 3]);
        assert_eq!(&*map, &[1, 2, 3]);
        assert!(!map.is_mapped());
    }

    #[test]
    fn mapped_bytes_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MappedBytes>();
    }
}
