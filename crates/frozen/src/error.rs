//! Typed failures for frozen-artifact compilation and attachment.

use saint_ir::CodecError;

/// Everything that can go wrong opening, verifying, or querying a
/// frozen image. Offset-carrying variants point at the first bad byte
/// of the *image*, mirroring [`CodecError`]'s contract for SAPK
/// containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrozenError {
    /// The image does not start with the `SFRZ` magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The image was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Version this reader understands.
        expected: u16,
    },
    /// The image is a frozen artifact, but not of the requested kind
    /// (framework vs corpus).
    WrongKind {
        /// Kind tag found in the header.
        found: u16,
        /// Kind tag the caller asked for.
        expected: u16,
    },
    /// The payload checksum does not match the header.
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The image ended before a read completed.
    UnexpectedEof {
        /// Image offset at which the read began.
        offset: usize,
        /// What was being read.
        context: &'static str,
    },
    /// An offset-table entry points outside the image (or outside its
    /// section), so following it would read out of bounds.
    InvalidOffset {
        /// Image offset of the offending table entry.
        offset: usize,
        /// What the entry was supposed to locate.
        context: &'static str,
    },
    /// A required section is missing from the section table.
    MissingSection {
        /// Section kind tag.
        kind: u32,
    },
    /// A varint in a section payload overflowed.
    VarintOverflow {
        /// Image offset at which the varint began.
        offset: usize,
    },
    /// A string in a section payload is not valid UTF-8.
    InvalidUtf8 {
        /// Image offset at which the string began.
        offset: usize,
    },
    /// The image was compiled from a different framework spec than the
    /// one now live (fingerprint mismatch) — the caller should fall
    /// back to parse-and-freeze.
    SpecMismatch {
        /// Fingerprint recorded in the image.
        image: u64,
        /// Fingerprint of the live spec.
        live: u64,
    },
    /// An embedded SAPK blob failed to decode.
    Codec(CodecError),
    /// The underlying file could not be opened, read, mapped, or
    /// written.
    Io(String),
}

impl FrozenError {
    /// The image byte offset this error points at, when it names one.
    #[must_use]
    pub fn offset(&self) -> Option<usize> {
        match self {
            FrozenError::UnexpectedEof { offset, .. }
            | FrozenError::InvalidOffset { offset, .. }
            | FrozenError::VarintOverflow { offset }
            | FrozenError::InvalidUtf8 { offset } => Some(*offset),
            FrozenError::Codec(e) => e.offset(),
            _ => None,
        }
    }
}

impl std::fmt::Display for FrozenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrozenError::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected \"SFRZ\"")
            }
            FrozenError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported format version {found} (expected {expected})")
            }
            FrozenError::WrongKind { found, expected } => {
                write!(f, "wrong artifact kind {found} (expected {expected})")
            }
            FrozenError::BadChecksum { expected, found } => {
                write!(f, "checksum mismatch: header {expected:#x}, payload {found:#x}")
            }
            FrozenError::UnexpectedEof { offset, context } => {
                write!(f, "unexpected end of image at offset {offset} while reading {context}")
            }
            FrozenError::InvalidOffset { offset, context } => {
                write!(f, "offset-table entry at {offset} points out of bounds ({context})")
            }
            FrozenError::MissingSection { kind } => {
                write!(f, "required section {kind} missing from image")
            }
            FrozenError::VarintOverflow { offset } => {
                write!(f, "varint overflow at offset {offset}")
            }
            FrozenError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 at offset {offset}")
            }
            FrozenError::SpecMismatch { image, live } => write!(
                f,
                "image was compiled from a different spec (image fingerprint {image:#x}, live {live:#x})"
            ),
            FrozenError::Codec(e) => write!(f, "embedded SAPK blob: {e}"),
            FrozenError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for FrozenError {}

impl From<CodecError> for FrozenError {
    fn from(e: CodecError) -> Self {
        FrozenError::Codec(e)
    }
}

impl From<std::io::Error> for FrozenError {
    fn from(e: std::io::Error) -> Self {
        FrozenError::Io(e.to_string())
    }
}
