//! The `SFRZ` on-disk layout: header, section table, bounds-checked
//! cursor, and the image assembler.
//!
//! ```text
//! offset  size  field
//! 0       4     magic            b"SFRZ"
//! 4       2     format version   u16 LE   (FORMAT_VERSION)
//! 6       2     artifact kind    u16 LE   (1 framework, 2 corpus)
//! 8       8     checksum         u64 LE   FNV-1a over bytes[32..]
//! 16      8     source fingerprint u64 LE (framework: spec hash; corpus: 0)
//! 24      4     section count    u32 LE
//! 28      4     reserved         zero
//! 32      …     section table    count × 24 B (kind u32, reserved u32,
//!                                 offset u64, len u64 — all LE)
//! …       …     section payloads, each 8-byte aligned
//! ```
//!
//! All integers are little-endian and fixed-width except inside
//! varint-coded section payloads (LEB128, shared with the SAPK codec's
//! convention). Offsets are absolute image offsets. Every read path
//! goes through [`Cursor`] or [`Image::slice`], both of which bounds-
//! check before touching bytes — a corrupted table yields a typed
//! [`FrozenError`], never an out-of-bounds access.

use crate::error::FrozenError;
use crate::mmap::MappedBytes;

/// Image magic.
pub const MAGIC: [u8; 4] = *b"SFRZ";

/// Bump this whenever the byte layout changes — the golden-file test
/// in `tests/frozen_golden.rs` pins layout-per-version.
pub const FORMAT_VERSION: u16 = 1;

/// Artifact kind tag: frozen framework model.
pub const KIND_FRAMEWORK: u16 = 1;
/// Artifact kind tag: frozen SAPK corpus.
pub const KIND_CORPUS: u16 = 2;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Bytes per section-table entry.
pub const SECTION_ENTRY_LEN: usize = 24;

/// Section kind tags.
pub mod section {
    /// API method lifetimes (varint-coded).
    pub const API_METHODS: u32 = 1;
    /// API class lifetimes (varint-coded).
    pub const API_CLASSES: u32 = 2;
    /// Framework superclass edges (varint-coded).
    pub const API_SUPERS: u32 = 3;
    /// Method → permissions map (varint-coded).
    pub const PERMISSIONS: u32 = 4;
    /// Raw name bytes referenced by index entries.
    pub const STR_BYTES: u32 = 5;
    /// Fixed-width `(level, class) → blob` offset table.
    pub const CLASS_INDEX: u32 = 6;
    /// Concatenated per-class SAPK blobs.
    pub const CLASS_BLOBS: u32 = 7;
    /// Fixed-width `package → container` offset table.
    pub const CORPUS_INDEX: u32 = 8;
    /// Concatenated SAPK containers.
    pub const CORPUS_BLOBS: u32 = 9;
}

/// The multiplicative FNV-1a 64-bit hash the repo standardizes on for
/// fingerprints and checksums.
#[must_use]
pub fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

// ---------------------------------------------------------------------
// Bounds-checked cursor over a byte slice
// ---------------------------------------------------------------------

/// A bounds-checked sequential reader. `base` is the absolute image
/// offset of the slice so error offsets point into the image, not the
/// section.
pub struct Cursor<'a> {
    input: &'a [u8],
    base: usize,
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor over `input`, reporting offsets relative to `base`.
    #[must_use]
    pub fn new(input: &'a [u8], base: usize) -> Self {
        Cursor {
            input,
            base,
            pos: 0,
        }
    }

    /// Absolute image offset of the next read.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.input.len()
    }

    fn eof(&self, context: &'static str) -> FrozenError {
        FrozenError::UnexpectedEof {
            offset: self.offset(),
            context,
        }
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], FrozenError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.eof(context))?;
        let s = self
            .input
            .get(self.pos..end)
            .ok_or_else(|| self.eof(context))?;
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, FrozenError> {
        Ok(self.bytes(1, context)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16_le(&mut self, context: &'static str) -> Result<u16, FrozenError> {
        let b = self.bytes(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32_le(&mut self, context: &'static str) -> Result<u32, FrozenError> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64_le(&mut self, context: &'static str) -> Result<u64, FrozenError> {
        let b = self.bytes(8, context)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads a LEB128 varint with overflow detection.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, FrozenError> {
        let start = self.offset();
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(context)?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(FrozenError::VarintOverflow { offset: start });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint as a usize length.
    pub fn len(&mut self, context: &'static str) -> Result<usize, FrozenError> {
        let v = self.varint(context)?;
        usize::try_from(v).map_err(|_| FrozenError::VarintOverflow {
            offset: self.offset(),
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, FrozenError> {
        let n = self.len(context)?;
        let start = self.offset();
        let raw = self.bytes(n, context)?;
        std::str::from_utf8(raw).map_err(|_| FrozenError::InvalidUtf8 { offset: start })
    }
}

// ---------------------------------------------------------------------
// Varint/str writers (mirror the cursor)
// ---------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a length-prefixed string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Parsed image
// ---------------------------------------------------------------------

struct Section {
    kind: u32,
    start: usize,
    len: usize,
}

/// A verified frozen image: header parsed, checksum checked, every
/// section confirmed in-bounds. All queries borrow from the underlying
/// map — nothing is copied out until a caller decodes a blob.
pub struct Image {
    bytes: MappedBytes,
    sections: Vec<Section>,
    fingerprint: u64,
}

impl Image {
    /// Parses and verifies an image of the expected artifact kind.
    ///
    /// # Errors
    ///
    /// Any header, checksum, or section-bounds violation yields the
    /// corresponding [`FrozenError`]; no byte beyond the slice is ever
    /// touched.
    pub fn parse(bytes: MappedBytes, expected_kind: u16) -> Result<Self, FrozenError> {
        Self::parse_inner(bytes, expected_kind, true)
    }

    /// Parses an image the caller already verified once (a warm daemon
    /// re-attaching its own compiled artifact): header and section
    /// bounds are still checked, but the full-image checksum pass —
    /// which touches every mapped page and is the only O(image) cost at
    /// attach — is skipped. Every later read remains bounds-checked, so
    /// a corrupted trusted image yields typed errors or wrong lookups,
    /// never an out-of-bounds access.
    ///
    /// # Errors
    ///
    /// Any header or section-bounds violation yields the corresponding
    /// [`FrozenError`].
    pub fn parse_trusted(bytes: MappedBytes, expected_kind: u16) -> Result<Self, FrozenError> {
        Self::parse_inner(bytes, expected_kind, false)
    }

    fn parse_inner(
        bytes: MappedBytes,
        expected_kind: u16,
        verify_checksum: bool,
    ) -> Result<Self, FrozenError> {
        let data: &[u8] = &bytes;
        let mut c = Cursor::new(data, 0);
        let magic = c.bytes(4, "magic")?;
        if magic != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(magic);
            return Err(FrozenError::BadMagic { found });
        }
        let version = c.u16_le("format version")?;
        if version != FORMAT_VERSION {
            return Err(FrozenError::UnsupportedVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let kind = c.u16_le("artifact kind")?;
        if kind != expected_kind {
            return Err(FrozenError::WrongKind {
                found: kind,
                expected: expected_kind,
            });
        }
        let checksum = c.u64_le("checksum")?;
        let fingerprint = c.u64_le("source fingerprint")?;
        let count = c.u32_le("section count")? as usize;
        let _reserved = c.u32_le("reserved")?;
        // The section table must fit before any payload can.
        let table_len = count
            .checked_mul(SECTION_ENTRY_LEN)
            .ok_or(FrozenError::InvalidOffset {
                offset: HEADER_LEN,
                context: "section table size",
            })?;
        let payload_start =
            HEADER_LEN
                .checked_add(table_len)
                .ok_or(FrozenError::InvalidOffset {
                    offset: HEADER_LEN,
                    context: "section table size",
                })?;
        if payload_start > data.len() {
            return Err(FrozenError::UnexpectedEof {
                offset: HEADER_LEN,
                context: "section table",
            });
        }
        if verify_checksum {
            let found = fnv1a(&data[HEADER_LEN..], FNV_OFFSET);
            if found != checksum {
                return Err(FrozenError::BadChecksum {
                    expected: checksum,
                    found,
                });
            }
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let entry_at = c.offset();
            let kind = c.u32_le("section kind")?;
            let _reserved = c.u32_le("section reserved")?;
            let start = c.u64_le("section offset")?;
            let len = c.u64_le("section length")?;
            let start = usize::try_from(start).map_err(|_| FrozenError::InvalidOffset {
                offset: entry_at,
                context: "section offset",
            })?;
            let len = usize::try_from(len).map_err(|_| FrozenError::InvalidOffset {
                offset: entry_at,
                context: "section length",
            })?;
            let end = start.checked_add(len).ok_or(FrozenError::InvalidOffset {
                offset: entry_at,
                context: "section extent",
            })?;
            if start < payload_start || end > data.len() {
                return Err(FrozenError::InvalidOffset {
                    offset: entry_at,
                    context: "section extent",
                });
            }
            sections.push(Section { kind, start, len });
        }
        Ok(Image {
            bytes,
            sections,
            fingerprint,
        })
    }

    /// The source fingerprint recorded at compile time.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total image size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty (it never is after `parse`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether the image is served by an actual page mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    fn find(&self, kind: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    /// A whole section's payload.
    ///
    /// # Errors
    ///
    /// [`FrozenError::MissingSection`] when the image has no such
    /// section.
    pub fn section(&self, kind: u32) -> Result<(&[u8], usize), FrozenError> {
        let s = self
            .find(kind)
            .ok_or(FrozenError::MissingSection { kind })?;
        // In-bounds by parse-time validation.
        Ok((&self.bytes[s.start..s.start + s.len], s.start))
    }

    /// A slice at `(offset, len)` that must lie entirely inside the
    /// `kind` section — the bounds check for every offset-table follow.
    ///
    /// # Errors
    ///
    /// [`FrozenError::InvalidOffset`] when the range escapes the
    /// section, [`FrozenError::MissingSection`] when the section is
    /// absent.
    pub fn slice(
        &self,
        kind: u32,
        offset: u64,
        len: u64,
        context: &'static str,
    ) -> Result<&[u8], FrozenError> {
        let s = self
            .find(kind)
            .ok_or(FrozenError::MissingSection { kind })?;
        let offset = usize::try_from(offset).map_err(|_| FrozenError::InvalidOffset {
            offset: s.start,
            context,
        })?;
        let len = usize::try_from(len).map_err(|_| FrozenError::InvalidOffset {
            offset: s.start,
            context,
        })?;
        let end = offset
            .checked_add(len)
            .ok_or(FrozenError::InvalidOffset { offset, context })?;
        if offset < s.start || end > s.start + s.len {
            return Err(FrozenError::InvalidOffset { offset, context });
        }
        Ok(&self.bytes[offset..end])
    }
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Image")
            .field("len", &self.len())
            .field("sections", &self.sections.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Image assembly
// ---------------------------------------------------------------------

/// Computes the absolute payload offset of each section given the
/// ordered list of payload sizes: header, then table, then payloads in
/// order, each 8-byte aligned. Writers use this to fix up offset-table
/// entries *before* assembly.
#[must_use]
pub fn layout_offsets(sizes: &[usize]) -> Vec<usize> {
    let mut at = HEADER_LEN + sizes.len() * SECTION_ENTRY_LEN;
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        at = align8(at);
        out.push(at);
        at += size;
    }
    out
}

/// Assembles a complete image from ordered `(kind, payload)` sections,
/// writing the header checksum last. Deterministic: identical sections
/// yield identical bytes (the golden-file stability guarantee).
#[must_use]
pub fn assemble(kind: u16, fingerprint: u64, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let sizes: Vec<usize> = sections.iter().map(|(_, p)| p.len()).collect();
    let offsets = layout_offsets(&sizes);
    let total = offsets
        .last()
        .map_or(HEADER_LEN + sections.len() * SECTION_ENTRY_LEN, |&o| {
            o + sizes[sizes.len() - 1]
        });
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&[0u8; 8]); // checksum, patched below
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // reserved
    for (i, (kind, payload)) in sections.iter().enumerate() {
        out.extend_from_slice(&kind.to_le_bytes());
        out.extend_from_slice(&[0u8; 4]);
        out.extend_from_slice(&(offsets[i] as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    }
    for (i, (_, payload)) in sections.iter().enumerate() {
        while out.len() < offsets[i] {
            out.push(0);
        }
        out.extend_from_slice(payload);
    }
    let checksum = fnv1a(&out[HEADER_LEN..], FNV_OFFSET);
    out[8..16].copy_from_slice(&checksum.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_image() -> Vec<u8> {
        assemble(
            KIND_FRAMEWORK,
            0xfeed,
            &[
                (section::STR_BYTES, b"hello".to_vec()),
                (section::CLASS_BLOBS, vec![1, 2, 3]),
            ],
        )
    }

    #[test]
    fn assemble_then_parse_round_trips() {
        let bytes = demo_image();
        let img = Image::parse(MappedBytes::from_vec(bytes), KIND_FRAMEWORK).unwrap();
        assert_eq!(img.fingerprint(), 0xfeed);
        let (strs, off) = img.section(section::STR_BYTES).unwrap();
        assert_eq!(strs, b"hello");
        assert_eq!(off % 8, 0, "sections are 8-byte aligned");
        let blob = img
            .slice(section::CLASS_BLOBS, (off + 8) as u64, 3, "blob")
            .map(<[u8]>::to_vec);
        // the second section starts 8-aligned after "hello"
        assert_eq!(blob.unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = demo_image();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let err = Image::parse(MappedBytes::from_vec(bytes), KIND_FRAMEWORK).unwrap_err();
        assert!(matches!(err, FrozenError::BadChecksum { .. }));
    }

    #[test]
    fn wrong_kind_rejected() {
        let bytes = demo_image();
        let err = Image::parse(MappedBytes::from_vec(bytes), KIND_CORPUS).unwrap_err();
        assert!(matches!(err, FrozenError::WrongKind { .. }));
    }

    #[test]
    fn version_bump_rejected() {
        let mut bytes = demo_image();
        bytes[4] = 0xff;
        bytes[5] = 0xff;
        let err = Image::parse(MappedBytes::from_vec(bytes), KIND_FRAMEWORK).unwrap_err();
        assert!(matches!(err, FrozenError::UnsupportedVersion { .. }));
    }

    #[test]
    fn out_of_section_slice_rejected() {
        let bytes = demo_image();
        let img = Image::parse(MappedBytes::from_vec(bytes), KIND_FRAMEWORK).unwrap();
        let (_, off) = img.section(section::STR_BYTES).unwrap();
        // Reading past the section end is refused even though the image
        // itself is longer.
        let err = img
            .slice(section::STR_BYTES, off as u64, 6, "oob")
            .unwrap_err();
        assert!(matches!(err, FrozenError::InvalidOffset { .. }));
    }

    #[test]
    fn truncation_yields_typed_error_at_every_prefix() {
        let bytes = demo_image();
        for cut in 0..bytes.len() {
            assert!(
                Image::parse(MappedBytes::from_vec(bytes[..cut].to_vec()), KIND_FRAMEWORK).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn cursor_varint_overflow_detected() {
        let mut c = Cursor::new(&[0xff; 11], 0);
        assert!(matches!(
            c.varint("test"),
            Err(FrozenError::VarintOverflow { .. })
        ));
    }
}
