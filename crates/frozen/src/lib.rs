//! # saint-frozen — zero-copy frozen artifacts
//!
//! Every daemon start and every cold scan used to re-mine the ARM API
//! database, rebuild the permission map, and re-materialize framework
//! class bodies from the spec. This crate lowers all three — plus whole
//! SAPK corpora — into versioned, checksummed, offset-table binary
//! images (`SFRZ`) that readers `mmap` and query **in place**:
//!
//! - [`freeze_framework`] / [`FrozenFramework`]: the offline compiler
//!   and the attach path for the framework model. Attach is a header
//!   verify plus one linear table decode; class bodies stay on disk
//!   behind a binary-searched offset table and surface as zero-copy
//!   `&[u8]` SAPK blobs.
//! - [`freeze_corpus`] / [`FrozenCorpus`]: one image per corpus,
//!   per-package offsets, zero-copy container slices for scan workers.
//! - [`load_or_freeze`]: the boot policy — attach an existing image if
//!   its version, checksum, and spec fingerprint all match, otherwise
//!   parse-and-freeze so the *next* start is instant.
//!
//! `unsafe` lives only in [`mmap`] (two syscalls behind a safe `&[u8]`
//! view with an owned-buffer fallback); every other byte access is
//! bounds-checked and fails as a typed [`FrozenError`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod corpus;
mod error;
mod format;
mod framework;
#[allow(unsafe_code)]
mod mmap;

pub use corpus::{freeze_apks, freeze_corpus, FrozenCorpus};
pub use error::FrozenError;
pub use format::{
    fnv1a, Cursor, Image, FNV_OFFSET, FORMAT_VERSION, KIND_CORPUS, KIND_FRAMEWORK, MAGIC,
};
pub use framework::{freeze_framework, spec_fingerprint, FrozenClassSource, FrozenFramework};
pub use mmap::MappedBytes;

use std::path::Path;
use std::sync::Arc;

use saint_adf::AndroidFramework;

/// How [`load_or_freeze`] obtained its image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootSource {
    /// A valid image existed and was attached directly — the warm path.
    Attached,
    /// No usable image existed; the framework was parsed (mined) and a
    /// fresh image was written for next time.
    Compiled,
}

/// Attaches the frozen framework image at `path`, or — when the file is
/// missing, stale (spec fingerprint mismatch), version-skewed, or
/// corrupt — compiles one from `framework`, writes it, and attaches
/// that. The parse-and-freeze fallback means the first run pays the
/// mining cost exactly once per spec.
///
/// # Errors
///
/// Only filesystem failures surface; any *content* problem with an
/// existing image is handled by recompiling.
pub fn load_or_freeze(
    path: &Path,
    framework: &AndroidFramework,
) -> Result<(Arc<FrozenFramework>, BootSource), FrozenError> {
    if path.exists() {
        if let Ok(frozen) = FrozenFramework::open(path) {
            if frozen.verify_spec(framework.spec()).is_ok() {
                return Ok((Arc::new(frozen), BootSource::Attached));
            }
        }
    }
    let bytes = freeze_framework(framework);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    // Write-then-rename so a concurrent reader never sees a torn image.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    let frozen = FrozenFramework::open(path)?;
    Ok((Arc::new(frozen), BootSource::Compiled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_boot_compiles_second_boot_attaches() {
        let dir = std::env::temp_dir().join(format!("saint-frozen-boot-{}", std::process::id()));
        let path = dir.join("framework.sfrz");
        let fw = AndroidFramework::curated();
        let (a, src_a) = load_or_freeze(&path, &fw).unwrap();
        assert_eq!(src_a, BootSource::Compiled);
        let (b, src_b) = load_or_freeze(&path, &fw).unwrap();
        assert_eq!(src_b, BootSource::Attached);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_image_is_recompiled() {
        let dir = std::env::temp_dir().join(format!("saint-frozen-stale-{}", std::process::id()));
        let path = dir.join("framework.sfrz");
        let other = AndroidFramework::with_scale(&saint_adf::SynthConfig::small());
        let (_, first) = load_or_freeze(&path, &other).unwrap();
        assert_eq!(first, BootSource::Compiled);
        // Same path, different spec: the old image must be refused and
        // replaced, not served.
        let fw = AndroidFramework::curated();
        let (frozen, second) = load_or_freeze(&path, &fw).unwrap();
        assert_eq!(second, BootSource::Compiled);
        assert!(frozen.verify_spec(fw.spec()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_image_is_recompiled() {
        let dir = std::env::temp_dir().join(format!("saint-frozen-corrupt-{}", std::process::id()));
        let path = dir.join("framework.sfrz");
        let fw = AndroidFramework::curated();
        let _ = load_or_freeze(&path, &fw).unwrap();
        // Flip a payload byte: checksum now fails.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (frozen, source) = load_or_freeze(&path, &fw).unwrap();
        assert_eq!(source, BootSource::Compiled);
        assert!(frozen.verify_spec(fw.spec()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
