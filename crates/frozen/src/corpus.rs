//! Freezing and attaching SAPK corpora.
//!
//! A corpus image concatenates whole SAPK containers behind a
//! fixed-width per-package offset table, so a scan fleet maps **one**
//! file and hands each worker a zero-copy `&[u8]` slice of its
//! package — no per-app file opens, no owned container buffers, pages
//! shared across every worker and process attached to the image.

use std::path::Path;

use saint_ir::{codec, Apk};

use crate::error::FrozenError;
use crate::format::{assemble, layout_offsets, section, Cursor, Image, KIND_CORPUS};
use crate::mmap::MappedBytes;

/// Bytes per `CORPUS_INDEX` entry: `name_off u64, name_len u32,
/// reserved u32, blob_off u64, blob_len u64`.
const INDEX_ENTRY_LEN: usize = 32;

/// Compiles `(package, sapk container)` pairs into a corpus image,
/// preserving order — scan order over the image matches the order the
/// corpus was compiled in.
#[must_use]
pub fn freeze_corpus<'a>(packages: impl IntoIterator<Item = (&'a str, &'a [u8])>) -> Vec<u8> {
    let mut str_bytes = Vec::new();
    let mut blob_bytes = Vec::new();
    let mut entries: Vec<(u64, u32, u64, u64)> = Vec::new();
    for (package, container) in packages {
        let name_off = str_bytes.len() as u64;
        str_bytes.extend_from_slice(package.as_bytes());
        let blob_off = blob_bytes.len() as u64;
        blob_bytes.extend_from_slice(container);
        entries.push((
            name_off,
            package.len() as u32,
            blob_off,
            container.len() as u64,
        ));
    }
    let index_len = 4 + entries.len() * INDEX_ENTRY_LEN;
    let sizes = [str_bytes.len(), index_len, blob_bytes.len()];
    let offsets = layout_offsets(&sizes);
    let str_base = offsets[0] as u64;
    let blob_base = offsets[2] as u64;
    let mut index = Vec::with_capacity(index_len);
    index.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name_off, name_len, blob_off, blob_len) in entries {
        index.extend_from_slice(&(str_base + name_off).to_le_bytes());
        index.extend_from_slice(&name_len.to_le_bytes());
        index.extend_from_slice(&[0u8; 4]);
        index.extend_from_slice(&(blob_base + blob_off).to_le_bytes());
        index.extend_from_slice(&blob_len.to_le_bytes());
    }
    assemble(
        KIND_CORPUS,
        0,
        &[
            (section::STR_BYTES, str_bytes),
            (section::CORPUS_INDEX, index),
            (section::CORPUS_BLOBS, blob_bytes),
        ],
    )
}

/// Convenience: encodes [`Apk`] values and freezes them.
#[must_use]
pub fn freeze_apks<'a>(apks: impl IntoIterator<Item = &'a Apk>) -> Vec<u8> {
    let encoded: Vec<(String, Vec<u8>)> = apks
        .into_iter()
        .map(|a| (a.manifest.package.clone(), codec::encode_apk(a)))
        .collect();
    freeze_corpus(encoded.iter().map(|(p, b)| (p.as_str(), b.as_slice())))
}

/// An attached corpus image.
pub struct FrozenCorpus {
    image: Image,
    entries: usize,
}

impl FrozenCorpus {
    /// Attaches an image held in memory.
    ///
    /// # Errors
    ///
    /// Any malformed header, checksum, section table, or index yields
    /// a typed [`FrozenError`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, FrozenError> {
        Self::attach(MappedBytes::from_vec(bytes))
    }

    /// Maps and attaches an image file.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed content yield typed [`FrozenError`]s.
    pub fn open(path: &Path) -> Result<Self, FrozenError> {
        Self::attach(MappedBytes::open(path)?)
    }

    fn attach(bytes: MappedBytes) -> Result<Self, FrozenError> {
        let image = Image::parse(bytes, KIND_CORPUS)?;
        let (index, base) = image.section(section::CORPUS_INDEX)?;
        let mut c = Cursor::new(index, base);
        let entries = c.u32_le("corpus index count")? as usize;
        if index.len() != 4 + entries * INDEX_ENTRY_LEN {
            return Err(FrozenError::InvalidOffset {
                offset: base,
                context: "corpus index size",
            });
        }
        let corpus = FrozenCorpus { image, entries };
        for i in 0..entries {
            // Bounds + UTF-8 validated once at attach.
            let _ = corpus.entry(i)?;
        }
        Ok(corpus)
    }

    fn entry(&self, i: usize) -> Result<(&str, &[u8]), FrozenError> {
        let (index, base) = self.image.section(section::CORPUS_INDEX)?;
        let oob = FrozenError::UnexpectedEof {
            offset: base,
            context: "corpus index entry",
        };
        let at = i
            .checked_mul(INDEX_ENTRY_LEN)
            .and_then(|v| v.checked_add(4))
            .ok_or(oob.clone())?;
        let end = at.checked_add(INDEX_ENTRY_LEN).ok_or(oob.clone())?;
        let mut c = Cursor::new(index.get(at..end).ok_or(oob)?, base + at);
        let name_off = c.u64_le("package offset")?;
        let name_len = c.u32_le("package length")?;
        let _reserved = c.u32_le("entry reserved")?;
        let blob_off = c.u64_le("container offset")?;
        let blob_len = c.u64_le("container length")?;
        let raw = self.image.slice(
            section::STR_BYTES,
            name_off,
            u64::from(name_len),
            "package name",
        )?;
        let name =
            std::str::from_utf8(raw).map_err(|_| FrozenError::InvalidUtf8 { offset: base + at })?;
        let blob = self
            .image
            .slice(section::CORPUS_BLOBS, blob_off, blob_len, "sapk container")?;
        Ok((name, blob))
    }

    /// Number of packages in the image.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the corpus holds no packages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Total image size in bytes.
    #[must_use]
    pub fn bytes_len(&self) -> u64 {
        self.image.len() as u64
    }

    /// Whether the image is served by an actual page mapping.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.image.is_mapped()
    }

    /// The package name at index `i`.
    ///
    /// # Errors
    ///
    /// [`FrozenError::UnexpectedEof`] for an out-of-range index.
    pub fn package(&self, i: usize) -> Result<&str, FrozenError> {
        Ok(self.entry(i)?.0)
    }

    /// The zero-copy SAPK container slice at index `i`.
    ///
    /// # Errors
    ///
    /// [`FrozenError::UnexpectedEof`] for an out-of-range index.
    pub fn container(&self, i: usize) -> Result<&[u8], FrozenError> {
        Ok(self.entry(i)?.1)
    }

    /// Decodes the package at index `i`.
    ///
    /// # Errors
    ///
    /// Out-of-range indices and container decode failures yield typed
    /// [`FrozenError`]s.
    pub fn decode(&self, i: usize) -> Result<Apk, FrozenError> {
        Ok(codec::decode_apk(self.entry(i)?.1)?)
    }

    /// Index of the package named `package`, if present.
    ///
    /// # Errors
    ///
    /// Only on index corruption that slipped past attach validation.
    pub fn find(&self, package: &str) -> Result<Option<usize>, FrozenError> {
        for i in 0..self.entries {
            if self.entry(i)?.0 == package {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }
}

impl std::fmt::Debug for FrozenCorpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenCorpus")
            .field("packages", &self.entries)
            .field("bytes", &self.bytes_len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder};

    fn apks(n: usize) -> Vec<Apk> {
        (0..n)
            .map(|i| {
                ApkBuilder::new(
                    format!("com.frozen.app{i}"),
                    ApiLevel::new(19),
                    ApiLevel::new(28),
                )
                .build()
            })
            .collect()
    }

    #[test]
    fn corpus_round_trips_in_order() {
        let apps = apks(5);
        let image = freeze_apks(&apps);
        let corpus = FrozenCorpus::from_bytes(image).unwrap();
        assert_eq!(corpus.len(), 5);
        for (i, apk) in apps.iter().enumerate() {
            assert_eq!(corpus.package(i).unwrap(), apk.manifest.package);
            assert_eq!(&corpus.decode(i).unwrap(), apk);
        }
    }

    #[test]
    fn container_slices_are_exact_sapk_bytes() {
        let apps = apks(3);
        let image = freeze_apks(&apps);
        let corpus = FrozenCorpus::from_bytes(image).unwrap();
        for (i, apk) in apps.iter().enumerate() {
            assert_eq!(corpus.container(i).unwrap(), codec::encode_apk(apk));
        }
    }

    #[test]
    fn find_locates_packages() {
        let apps = apks(4);
        let image = freeze_apks(&apps);
        let corpus = FrozenCorpus::from_bytes(image).unwrap();
        assert_eq!(corpus.find("com.frozen.app2").unwrap(), Some(2));
        assert_eq!(corpus.find("com.other").unwrap(), None);
    }

    #[test]
    fn out_of_range_index_is_typed_error() {
        let image = freeze_apks(&apks(1));
        let corpus = FrozenCorpus::from_bytes(image).unwrap();
        assert!(corpus.package(1).is_err());
        assert!(corpus.decode(1).is_err());
    }

    #[test]
    fn empty_corpus_is_valid() {
        let image = freeze_corpus(std::iter::empty());
        let corpus = FrozenCorpus::from_bytes(image).unwrap();
        assert!(corpus.is_empty());
    }

    #[test]
    fn truncated_image_never_attaches() {
        let image = freeze_apks(&apks(2));
        for cut in 0..image.len() {
            assert!(FrozenCorpus::from_bytes(image[..cut].to_vec()).is_err());
        }
    }
}
