//! Freezing and attaching the framework model.
//!
//! The compiler lowers a mined [`AndroidFramework`] — API database,
//! permission map, and every `(api level, class)` materialization — to
//! one `SFRZ` image. The attach path maps that image back and serves:
//!
//! - the database and permission map, reconstructed in one linear pass
//!   over compact varint tables (no per-level surface diffing, which is
//!   what makes frozen startup cheap);
//! - class bodies **in place**: a sorted fixed-width offset table is
//!   binary-searched against the mapped bytes and each hit hands back a
//!   zero-copy `&[u8]` SAPK class blob, decoded only on demand.
//!
//! Identical per-level blobs are deduplicated at compile time (most
//! classes do not change at most level transitions), which keeps both
//! the image and the bulk-preload working set small.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use saint_adf::{
    AndroidFramework, ApiDatabase, ClassSource, FrameworkSpec, LifeSpan, PermissionMap,
};
use saint_ir::{codec, ApiLevel, ClassDef, ClassName, MethodRef, Permission};

use crate::error::FrozenError;
use crate::format::{
    assemble, fnv1a, layout_offsets, put_str, put_varint, section, Cursor, Image, FNV_OFFSET,
    KIND_FRAMEWORK,
};
use crate::mmap::MappedBytes;

/// Bytes per `CLASS_INDEX` entry: `name_off u64, name_len u32,
/// level u32, blob_off u64, blob_len u64`.
const INDEX_ENTRY_LEN: usize = 32;

fn mix(hash: &mut u64, bytes: &[u8]) {
    *hash = fnv1a(bytes, *hash);
    // Separator byte so ("ab","c") and ("a","bc") hash differently.
    *hash = fnv1a(&[0xff], *hash);
}

fn mix_life(hash: &mut u64, life: LifeSpan) {
    mix(hash, &[life.since.get()]);
    match life.removed {
        Some(l) => mix(hash, &[1, l.get()]),
        None => mix(hash, &[0]),
    }
}

/// A stable content fingerprint of a framework spec: any change to a
/// class, method, lifetime, permission annotation, call edge, or body
/// weight changes the fingerprint. Recorded in the image header so an
/// attach against a *different* live spec is refused (and the caller
/// falls back to parse-and-freeze).
#[must_use]
pub fn spec_fingerprint(spec: &FrameworkSpec) -> u64 {
    let mut hash = FNV_OFFSET;
    for class in spec.classes() {
        mix(&mut hash, class.name.as_str().as_bytes());
        match &class.super_class {
            Some(s) => mix(&mut hash, s.as_str().as_bytes()),
            None => mix(&mut hash, &[]),
        }
        for i in &class.interfaces {
            mix(&mut hash, i.as_str().as_bytes());
        }
        mix_life(&mut hash, class.life);
        for m in &class.methods {
            mix(&mut hash, m.name.as_bytes());
            mix(&mut hash, m.descriptor.as_bytes());
            mix_life(&mut hash, m.life);
            for p in &m.permissions {
                mix(&mut hash, p.as_str().as_bytes());
            }
            for c in &m.calls {
                mix(&mut hash, c.target.class.as_str().as_bytes());
                mix(&mut hash, c.target.name.as_bytes());
                mix(&mut hash, c.target.descriptor.as_bytes());
                mix(&mut hash, &[c.guard.map_or(0, ApiLevel::get)]);
            }
            mix(&mut hash, &(m.weight as u64).to_le_bytes());
            mix(&mut hash, &[u8::from(m.is_abstract)]);
        }
    }
    hash
}

fn put_life(buf: &mut Vec<u8>, life: LifeSpan) {
    buf.push(life.since.get());
    match life.removed {
        Some(l) => {
            buf.push(1);
            buf.push(l.get());
        }
        None => buf.push(0),
    }
}

fn put_method_ref(buf: &mut Vec<u8>, m: &MethodRef) {
    put_str(buf, m.class.as_str());
    put_str(buf, &m.name);
    put_str(buf, &m.descriptor);
}

/// Compiles a framework into a frozen image. Mines the database and
/// permission map if they have not been built yet; materializes every
/// `(level, class)` body. Deterministic: the same framework always
/// produces byte-identical output.
#[must_use]
pub fn freeze_framework(framework: &AndroidFramework) -> Vec<u8> {
    let spec = framework.spec();
    let db = framework.database();
    let perms = framework.permission_map();

    // API method lifetimes, sorted for determinism.
    let mut methods: Vec<(&MethodRef, LifeSpan)> = db.methods().collect();
    methods.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut api_methods = Vec::new();
    put_varint(&mut api_methods, methods.len() as u64);
    for (m, life) in methods {
        put_method_ref(&mut api_methods, m);
        put_life(&mut api_methods, life);
    }

    // API class lifetimes.
    let mut classes: Vec<(&ClassName, LifeSpan)> = db.classes().collect();
    classes.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut api_classes = Vec::new();
    put_varint(&mut api_classes, classes.len() as u64);
    for (c, life) in classes {
        put_str(&mut api_classes, c.as_str());
        put_life(&mut api_classes, life);
    }

    // Superclass edges.
    let mut supers: Vec<(&ClassName, Option<&ClassName>)> = db.supers().collect();
    supers.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let mut api_supers = Vec::new();
    put_varint(&mut api_supers, supers.len() as u64);
    for (c, s) in supers {
        put_str(&mut api_supers, c.as_str());
        match s {
            Some(s) => {
                api_supers.push(1);
                put_str(&mut api_supers, s.as_str());
            }
            None => api_supers.push(0),
        }
    }

    // Permission map (BTreeMap iteration is already sorted).
    let entries: Vec<(&MethodRef, &[Permission])> = perms.iter().collect();
    let mut perm_bytes = Vec::new();
    put_varint(&mut perm_bytes, entries.len() as u64);
    for (m, ps) in entries {
        put_method_ref(&mut perm_bytes, m);
        put_varint(&mut perm_bytes, ps.len() as u64);
        for p in ps {
            put_str(&mut perm_bytes, p.as_str());
        }
    }

    // Class bodies: one SAPK class blob per (class, level), identical
    // blobs deduplicated. Entries are (name, level)-sorted because the
    // spec iterates classes in name order and levels ascend.
    let mut str_bytes = Vec::new();
    let mut blob_bytes = Vec::new();
    let mut dedup: HashMap<Vec<u8>, (u64, u64)> = HashMap::new();
    // (name_off, name_len, level, blob_off, blob_len) — offsets
    // relative to their sections until layout is known.
    let mut entries: Vec<(u64, u32, u32, u64, u64)> = Vec::new();
    for class in spec.classes() {
        let name_off = str_bytes.len() as u64;
        let name_len = class.name.as_str().len() as u32;
        str_bytes.extend_from_slice(class.name.as_str().as_bytes());
        for level in ApiLevel::all_modeled() {
            let Some(def) = spec.materialize_class(&class.name, level) else {
                continue;
            };
            let enc = codec::encode_class(&def);
            let (blob_off, blob_len) = *dedup.entry(enc).or_insert_with_key(|enc| {
                let off = blob_bytes.len() as u64;
                blob_bytes.extend_from_slice(enc);
                (off, enc.len() as u64)
            });
            entries.push((
                name_off,
                name_len,
                u32::from(level.get()),
                blob_off,
                blob_len,
            ));
        }
    }

    let index_len = 4 + entries.len() * INDEX_ENTRY_LEN;
    let sizes = [
        api_methods.len(),
        api_classes.len(),
        api_supers.len(),
        perm_bytes.len(),
        str_bytes.len(),
        index_len,
        blob_bytes.len(),
    ];
    let offsets = layout_offsets(&sizes);
    let str_base = offsets[4] as u64;
    let blob_base = offsets[6] as u64;

    let mut index = Vec::with_capacity(index_len);
    index.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name_off, name_len, level, blob_off, blob_len) in entries {
        index.extend_from_slice(&(str_base + name_off).to_le_bytes());
        index.extend_from_slice(&name_len.to_le_bytes());
        index.extend_from_slice(&level.to_le_bytes());
        index.extend_from_slice(&(blob_base + blob_off).to_le_bytes());
        index.extend_from_slice(&blob_len.to_le_bytes());
    }

    assemble(
        KIND_FRAMEWORK,
        spec_fingerprint(spec),
        &[
            (section::API_METHODS, api_methods),
            (section::API_CLASSES, api_classes),
            (section::API_SUPERS, api_supers),
            (section::PERMISSIONS, perm_bytes),
            (section::STR_BYTES, str_bytes),
            (section::CLASS_INDEX, index),
            (section::CLASS_BLOBS, blob_bytes),
        ],
    )
}

struct IndexEntry<'a> {
    name: &'a str,
    level: u32,
    blob_off: u64,
    blob_len: u64,
}

/// An attached frozen framework image.
pub struct FrozenFramework {
    image: Image,
    entries: usize,
}

impl FrozenFramework {
    /// Attaches an image held in memory (tests, fuzzing, freeze-then-
    /// attach without touching disk).
    ///
    /// # Errors
    ///
    /// Any malformed header, checksum, section table, or class index
    /// yields a typed [`FrozenError`].
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, FrozenError> {
        Self::attach(MappedBytes::from_vec(bytes), true)
    }

    /// [`from_bytes`](Self::from_bytes) on the trusted warm-boot path:
    /// skips the full-image checksum and the eager per-entry validation
    /// walk. See [`open_trusted`](Self::open_trusted) for the trust
    /// model.
    ///
    /// # Errors
    ///
    /// Any malformed header, section table, or index header yields a
    /// typed [`FrozenError`].
    pub fn from_bytes_trusted(bytes: Vec<u8>) -> Result<Self, FrozenError> {
        Self::attach(MappedBytes::from_vec(bytes), false)
    }

    /// Maps and attaches an image file.
    ///
    /// # Errors
    ///
    /// I/O failures and any malformed image content yield a typed
    /// [`FrozenError`].
    pub fn open(path: &Path) -> Result<Self, FrozenError> {
        Self::attach(MappedBytes::open(path)?, true)
    }

    /// Maps and attaches an image this process (or its compile step)
    /// already verified once — the warm daemon boot path. Header,
    /// section-table bounds, and the index size are still checked, but
    /// the two O(image) attach costs are skipped: the full-image
    /// checksum pass and the eager per-entry validation walk. This is
    /// safe because [`entry`](Self::entry) re-validates every read
    /// (bounds-checked name and blob slices, UTF-8 check), so a
    /// corrupted trusted image degrades to typed errors or failed
    /// lookups, never an out-of-bounds access or panic.
    ///
    /// # Errors
    ///
    /// I/O failures and any malformed header, section table, or index
    /// header yield a typed [`FrozenError`].
    pub fn open_trusted(path: &Path) -> Result<Self, FrozenError> {
        Self::attach(MappedBytes::open(path)?, false)
    }

    fn attach(bytes: MappedBytes, verify: bool) -> Result<Self, FrozenError> {
        let image = if verify {
            Image::parse(bytes, KIND_FRAMEWORK)?
        } else {
            Image::parse_trusted(bytes, KIND_FRAMEWORK)?
        };
        let (index, base) = image.section(section::CLASS_INDEX)?;
        let mut c = Cursor::new(index, base);
        let entries = c.u32_le("class index count")? as usize;
        if index.len() != 4 + entries * INDEX_ENTRY_LEN {
            return Err(FrozenError::InvalidOffset {
                offset: base,
                context: "class index size",
            });
        }
        let fw = FrozenFramework { image, entries };
        if !verify {
            return Ok(fw);
        }
        // Validate every entry once at attach: names in-bounds and
        // UTF-8, blobs in-bounds, (name, level) strictly sorted. After
        // this pass a query can only fail if the caller asks for an
        // out-of-range index.
        let mut prev: Option<(&str, u32)> = None;
        for i in 0..entries {
            let e = fw.entry(i)?;
            if let Some((pn, pl)) = prev {
                if (pn, pl) >= (e.name, e.level) {
                    return Err(FrozenError::InvalidOffset {
                        offset: base + 4 + i * INDEX_ENTRY_LEN,
                        context: "class index order",
                    });
                }
            }
            let _ = fw
                .image
                .slice(section::CLASS_BLOBS, e.blob_off, e.blob_len, "class blob")?;
            prev = Some((e.name, e.level));
        }
        Ok(fw)
    }

    fn entry(&self, i: usize) -> Result<IndexEntry<'_>, FrozenError> {
        let (index, base) = self.image.section(section::CLASS_INDEX)?;
        let at = 4 + i * INDEX_ENTRY_LEN;
        let mut c = Cursor::new(
            index
                .get(at..at + INDEX_ENTRY_LEN)
                .ok_or(FrozenError::UnexpectedEof {
                    offset: base + at,
                    context: "class index entry",
                })?,
            base + at,
        );
        let name_off = c.u64_le("name offset")?;
        let name_len = c.u32_le("name length")?;
        let level = c.u32_le("entry level")?;
        let blob_off = c.u64_le("blob offset")?;
        let blob_len = c.u64_le("blob length")?;
        let raw = self.image.slice(
            section::STR_BYTES,
            name_off,
            u64::from(name_len),
            "class name",
        )?;
        let name =
            std::str::from_utf8(raw).map_err(|_| FrozenError::InvalidUtf8 { offset: base + at })?;
        Ok(IndexEntry {
            name,
            level,
            blob_off,
            blob_len,
        })
    }

    /// The spec fingerprint recorded at compile time.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.image.fingerprint()
    }

    /// Total image size in bytes.
    #[must_use]
    pub fn bytes_len(&self) -> u64 {
        self.image.len() as u64
    }

    /// Whether the image is served by an actual page mapping (vs the
    /// owned-buffer fallback).
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        self.image.is_mapped()
    }

    /// Number of `(level, class)` entries in the class index.
    #[must_use]
    pub fn class_entry_count(&self) -> usize {
        self.entries
    }

    /// Reconstructs the API database from the frozen tables — a single
    /// linear decode, no per-level surface materialization.
    ///
    /// # Errors
    ///
    /// Malformed table payloads yield typed [`FrozenError`]s.
    pub fn database(&self) -> Result<ApiDatabase, FrozenError> {
        let (bytes, base) = self.image.section(section::API_METHODS)?;
        let mut c = Cursor::new(bytes, base);
        let n = c.len("method count")?;
        let mut methods = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let class = c.str("method class")?;
            let name = c.str("method name")?;
            let desc = c.str("method descriptor")?;
            let life = read_life(&mut c)?;
            methods.insert(MethodRef::new(class, name, desc), life);
        }
        let (bytes, base) = self.image.section(section::API_CLASSES)?;
        let mut c = Cursor::new(bytes, base);
        let n = c.len("class count")?;
        let mut classes = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let name = c.str("class name")?;
            let life = read_life(&mut c)?;
            classes.insert(ClassName::new(name), life);
        }
        let (bytes, base) = self.image.section(section::API_SUPERS)?;
        let mut c = Cursor::new(bytes, base);
        let n = c.len("super count")?;
        let mut supers = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let name = c.str("super class name")?;
            let sup = match c.u8("super flag")? {
                0 => None,
                _ => Some(ClassName::new(c.str("super class target")?)),
            };
            supers.insert(ClassName::new(name), sup);
        }
        Ok(ApiDatabase::from_parts(methods, classes, supers))
    }

    /// Reconstructs the permission map from the frozen table.
    ///
    /// # Errors
    ///
    /// Malformed table payloads yield typed [`FrozenError`]s.
    pub fn permission_map(&self) -> Result<PermissionMap, FrozenError> {
        let (bytes, base) = self.image.section(section::PERMISSIONS)?;
        let mut c = Cursor::new(bytes, base);
        let n = c.len("permission entry count")?;
        let mut map = PermissionMap::new();
        for _ in 0..n {
            let class = c.str("permission class")?;
            let name = c.str("permission method")?;
            let desc = c.str("permission descriptor")?;
            let np = c.len("permission count")?;
            let mut ps = Vec::with_capacity(np.min(64));
            for _ in 0..np {
                ps.push(Permission::new(c.str("permission name")?));
            }
            map.insert(MethodRef::new(class, name, desc), ps);
        }
        Ok(map)
    }

    /// The zero-copy SAPK class blob for `(level, name)`, or `None`
    /// when the class has no body at that level.
    ///
    /// # Errors
    ///
    /// Only on index corruption that slipped past attach validation
    /// (never for a well-formed image).
    pub fn lookup(&self, level: ApiLevel, name: &str) -> Result<Option<&[u8]>, FrozenError> {
        let want = (name, u32::from(level.get()));
        let mut lo = 0usize;
        let mut hi = self.entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.entry(mid)?;
            if (e.name, e.level) < want {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.entries {
            let e = self.entry(lo)?;
            if (e.name, e.level) == want {
                return Ok(Some(self.image.slice(
                    section::CLASS_BLOBS,
                    e.blob_off,
                    e.blob_len,
                    "class blob",
                )?));
            }
        }
        Ok(None)
    }

    /// Whether the image has a body for `name` at *any* level — used to
    /// answer "class known but absent at this level" authoritatively.
    ///
    /// # Errors
    ///
    /// Only on index corruption that slipped past attach validation.
    pub fn knows_class(&self, name: &str) -> Result<bool, FrozenError> {
        let mut lo = 0usize;
        let mut hi = self.entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let e = self.entry(mid)?;
            if e.name < name {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < self.entries {
            return Ok(self.entry(lo)?.name == name);
        }
        Ok(false)
    }

    /// Decodes the class body for `(level, name)`.
    ///
    /// # Errors
    ///
    /// Blob decode failures yield [`FrozenError::Codec`].
    pub fn decode_class_at(
        &self,
        level: ApiLevel,
        name: &str,
    ) -> Result<Option<ClassDef>, FrozenError> {
        match self.lookup(level, name)? {
            Some(blob) => Ok(Some(codec::decode_class(blob)?)),
            None => Ok(None),
        }
    }

    /// Visits every `(level, name, blob)` entry — the bulk-preload path
    /// engines use to warm a shared class cache. Identical blobs share
    /// an offset, so `f` receives a stable `blob_off` key it can use to
    /// decode each unique body once.
    ///
    /// # Errors
    ///
    /// Only on index corruption that slipped past attach validation.
    pub fn for_each_class(
        &self,
        mut f: impl FnMut(ApiLevel, &str, u64, &[u8]),
    ) -> Result<(), FrozenError> {
        for i in 0..self.entries {
            let e = self.entry(i)?;
            let blob =
                self.image
                    .slice(section::CLASS_BLOBS, e.blob_off, e.blob_len, "class blob")?;
            f(
                ApiLevel::new(e.level.min(255) as u8),
                e.name,
                e.blob_off,
                blob,
            );
        }
        Ok(())
    }

    /// Attach-time compatibility check against the live spec: refuses
    /// an image compiled from a different framework.
    ///
    /// # Errors
    ///
    /// [`FrozenError::SpecMismatch`] when fingerprints differ.
    pub fn verify_spec(&self, spec: &FrameworkSpec) -> Result<(), FrozenError> {
        let live = spec_fingerprint(spec);
        if live != self.fingerprint() {
            return Err(FrozenError::SpecMismatch {
                image: self.fingerprint(),
                live,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for FrozenFramework {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenFramework")
            .field("bytes", &self.bytes_len())
            .field("class_entries", &self.entries)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

fn read_life(c: &mut Cursor<'_>) -> Result<LifeSpan, FrozenError> {
    let since = ApiLevel::new(c.u8("lifespan since")?);
    let removed = match c.u8("lifespan removed flag")? {
        0 => None,
        _ => Some(ApiLevel::new(c.u8("lifespan removed")?)),
    };
    Ok(LifeSpan { since, removed })
}

/// A [`ClassSource`] view over a frozen image: authoritative for every
/// class the image knows, silent (falling back to the spec) otherwise.
/// Decode failures also fall back rather than fail the scan — after
/// attach-time checksum and bounds validation they indicate a torn
/// file, and the spec still holds the ground truth.
pub struct FrozenClassSource {
    inner: Arc<FrozenFramework>,
}

impl FrozenClassSource {
    /// Wraps an attached image.
    #[must_use]
    pub fn new(inner: Arc<FrozenFramework>) -> Self {
        FrozenClassSource { inner }
    }
}

impl ClassSource for FrozenClassSource {
    fn class_at(&self, level: ApiLevel, name: &ClassName) -> Option<Option<Arc<ClassDef>>> {
        match self.inner.lookup(level, name.as_str()) {
            Ok(Some(blob)) => match codec::decode_class(blob) {
                Ok(def) => Some(Some(Arc::new(def))),
                Err(_) => None,
            },
            Ok(None) => match self.inner.knows_class(name.as_str()) {
                Ok(true) => Some(None),
                _ => None,
            },
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frozen_curated() -> (AndroidFramework, FrozenFramework) {
        let fw = AndroidFramework::curated();
        let bytes = freeze_framework(&fw);
        let frozen = FrozenFramework::from_bytes(bytes).unwrap();
        (fw, frozen)
    }

    #[test]
    fn freeze_is_deterministic() {
        let fw = AndroidFramework::curated();
        assert_eq!(freeze_framework(&fw), freeze_framework(&fw));
    }

    #[test]
    fn database_round_trips_through_image() {
        let (fw, frozen) = frozen_curated();
        let mined = fw.database();
        let thawed = frozen.database().unwrap();
        assert_eq!(mined.method_count(), thawed.method_count());
        assert_eq!(mined.class_count(), thawed.class_count());
        for (m, life) in mined.methods() {
            assert_eq!(thawed.method_lifespan(m), Some(life), "lifespan of {m:?}");
        }
        for (c, life) in mined.classes() {
            assert_eq!(thawed.class_lifespan(c), Some(life));
        }
        for (c, s) in mined.supers() {
            assert_eq!(thawed.super_class(c), s);
        }
    }

    #[test]
    fn permission_map_round_trips_through_image() {
        let (fw, frozen) = frozen_curated();
        let built = fw.permission_map();
        let thawed = frozen.permission_map().unwrap();
        assert_eq!(built.len(), thawed.len());
        for (m, ps) in built.iter() {
            assert_eq!(thawed.required(m), ps);
        }
    }

    #[test]
    fn class_blobs_decode_to_materialized_definitions() {
        let (fw, frozen) = frozen_curated();
        for class in fw.spec().classes() {
            for level in [ApiLevel::new(2), ApiLevel::new(23), ApiLevel::new(29)] {
                let expected = fw.spec().materialize_class(&class.name, level);
                let got = frozen.decode_class_at(level, class.name.as_str()).unwrap();
                assert_eq!(expected, got, "{} at {level}", class.name.as_str());
            }
        }
    }

    #[test]
    fn lookup_unknown_class_is_none_not_error() {
        let (_, frozen) = frozen_curated();
        assert_eq!(
            frozen.lookup(ApiLevel::new(28), "no.such.Class").unwrap(),
            None
        );
        assert!(!frozen.knows_class("no.such.Class").unwrap());
        assert!(frozen.knows_class("android.app.Activity").unwrap());
    }

    #[test]
    fn spec_mismatch_is_refused() {
        let (_, frozen) = frozen_curated();
        let other = AndroidFramework::with_scale(&saint_adf::SynthConfig::small());
        assert!(matches!(
            frozen.verify_spec(other.spec()),
            Err(FrozenError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn class_source_serves_frozen_bodies() {
        let (fw, frozen) = frozen_curated();
        let source = FrozenClassSource::new(Arc::new(frozen));
        let name = ClassName::new("android.app.Activity");
        let got = source.class_at(ApiLevel::new(28), &name).unwrap().unwrap();
        let expected = fw
            .spec()
            .materialize_class(&name, ApiLevel::new(28))
            .map(Arc::new);
        assert_eq!(Some(got), expected);
        // NotificationChannel exists only since 26: authoritative None below.
        let nc = ClassName::new("android.app.NotificationChannel");
        assert_eq!(source.class_at(ApiLevel::new(25), &nc), Some(None));
        // Unknown names: no opinion.
        assert_eq!(
            source.class_at(ApiLevel::new(25), &ClassName::new("x.Y")),
            None
        );
    }

    #[test]
    fn identical_per_level_blobs_are_deduplicated() {
        let fw = AndroidFramework::curated();
        let bytes = freeze_framework(&fw);
        let frozen = FrozenFramework::from_bytes(bytes.clone()).unwrap();
        // Entries far outnumber unique blobs: most classes are stable
        // across most level transitions.
        let mut unique = std::collections::HashSet::new();
        frozen
            .for_each_class(|_, _, blob_off, _| {
                unique.insert(blob_off);
            })
            .unwrap();
        assert!(
            unique.len() * 2 < frozen.class_entry_count(),
            "dedup ineffective: {} unique of {}",
            unique.len(),
            frozen.class_entry_count()
        );
    }

    #[test]
    fn attach_via_file_maps_pages() {
        let fw = AndroidFramework::curated();
        let bytes = freeze_framework(&fw);
        let path =
            std::env::temp_dir().join(format!("saint-frozen-fw-{}.sfrz", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let frozen = FrozenFramework::open(&path).unwrap();
        assert_eq!(frozen.bytes_len(), bytes.len() as u64);
        assert!(frozen.is_mapped());
        assert!(frozen.verify_spec(fw.spec()).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
