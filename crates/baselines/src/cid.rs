//! CID (Li et al., "CiD: automating the detection of API-related
//! compatibility issues in Android apps") — reimplemented from its
//! published strategy, including the blind spots the SAINTDroid paper
//! documents:
//!
//! * **monolithic loading** (paper §II-D): CID "first load[s] all code
//!   in the project and then perform[s] analysis on the loaded code" —
//!   here the entire app *and* the framework snapshot are materialized
//!   and graphed up front, which is what costs it the 4× memory and the
//!   Table-III time;
//! * **first-level only** (paper §II-D): "CID only analyzes the initial
//!   API call and does not analyze subsequent calls within the ADF" —
//!   deep facade paths are invisible;
//! * **intraprocedural guards** (paper §V-A): "CID is not
//!   context-sensitive and does not track guard conditions across
//!   function calls" — a guard in the caller does not protect a call in
//!   the callee;
//! * **API level ceiling** (paper §VII): "CID supports compatibility
//!   analysis up to API level 25" — APIs introduced later are simply
//!   absent from its model;
//! * **fragility**: CID "fails to completely analyze four apps"
//!   (Table III dashes); the reproduced failure mode is multi-dex /
//!   late-bound payloads, which its loader cannot process.

use std::sync::Arc;
use std::time::Instant;

use saint_adf::spec::LifeSpan;
use saint_adf::{AndroidFramework, ApiDatabase};
use saint_analysis::{
    AbsState, BlockRanges, Cfg, Clvm, FrameworkProvider, PrimaryDexProvider, Resolution,
};
use saint_ir::{ApiLevel, Apk, ClassOrigin, Instr, LevelRange, MethodRef};
use saintdroid::{missing_levels_in, Capabilities, CompatDetector, Mismatch, MismatchKind, Report};

/// The highest API level CID's model covers.
pub const CID_MAX_LEVEL: ApiLevel = ApiLevel::new(25);

/// The CID baseline detector.
pub struct Cid {
    framework: Arc<AndroidFramework>,
}

impl Cid {
    /// Creates CID over a framework model.
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        Cid { framework }
    }

    /// CID's view of an API lifetime: unknown beyond level 25.
    fn lifespan(&self, db: &ApiDatabase, api: &MethodRef) -> Option<LifeSpan> {
        let life = db.method_lifespan(api)?;
        (life.since <= CID_MAX_LEVEL).then_some(life)
    }
}

impl CompatDetector for Cid {
    fn name(&self) -> &'static str {
        "CID"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            api: true,
            apc: false,
            prm: false,
            dsd: false,
        }
    }

    fn analyze(&self, apk: &Apk) -> Option<Report> {
        // Reproduced failure mode: CID's dex loader chokes on apps that
        // ship late-bound secondary payloads (the Table III dashes).
        if !apk.secondary.is_empty() {
            return None;
        }
        let start = Instant::now();
        let mut report = Report::new(apk.manifest.package.clone(), self.name());

        // Monolithic phase: load EVERYTHING — the entire app dex plus
        // the full framework snapshot (at CID's level ceiling) — and
        // build graphs for every loaded method before any detection.
        let level = apk.manifest.target_sdk.clamp_modeled().min(CID_MAX_LEVEL);
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(apk)));
        clvm.add_provider(Box::new(FrameworkProvider::new(
            Arc::clone(&self.framework),
            level,
        )));
        clvm.load_everything();

        let names = clvm.available_class_names();
        let mut app_method_graphs: Vec<(Arc<saint_ir::ClassDef>, usize)> = Vec::new();
        for name in names {
            let Some(class) = clvm.load_class(&name) else {
                continue;
            };
            for (idx, m) in class.methods.iter().enumerate() {
                let Some(body) = &m.body else { continue };
                let cfg = Cfg::build(body);
                let abs = AbsState::analyze(body, &cfg);
                clvm.meter_ref()
                    .record_method(cfg.size_bytes() + abs.size_bytes());
                if matches!(class.origin, ClassOrigin::App | ClassOrigin::Library) {
                    app_method_graphs.push((Arc::clone(&class), idx));
                }
            }
        }

        // Detection phase: the conditional call graph. Every app method
        // is checked independently against the full supported range —
        // guards are honored within the method (backward data-flow to
        // the level check) but never across calls.
        let db = self.framework.database();
        let supported = apk.manifest.supported_levels();
        let supported = supported
            .intersect(LevelRange::new(ApiLevel::MIN, CID_MAX_LEVEL))
            .unwrap_or(supported);
        let mut mismatches = Vec::new();
        for (class, idx) in &app_method_graphs {
            let def = &class.methods[*idx];
            let body = def
                .body
                .as_ref()
                .expect("filtered to body-carrying methods");
            let caller = def.reference(&class.name);
            let cfg = Cfg::build(body);
            let abs = AbsState::analyze(body, &cfg);
            let ranges = BlockRanges::analyze(body, &cfg, &abs, supported);
            for (block, range) in ranges.iter() {
                for instr in &body.block(block).instrs {
                    let Instr::Invoke { method: target, .. } = instr else {
                        continue;
                    };
                    // First level only: resolve the call; if it lands in
                    // the framework, check it; never walk into the body.
                    let api = match clvm.resolve_virtual(target) {
                        Resolution::Found { declaring, method } => {
                            matches!(declaring.origin, ClassOrigin::Framework)
                                .then(|| self.lifespan(&db, &method).map(|l| (method, l)))
                                .flatten()
                        }
                        // Not in the snapshot: maybe a removed API CID's
                        // model still knows about.
                        _ => db
                            .resolve(&target.class, &target.signature())
                            .and_then(|(m, l)| {
                                self.lifespan(&db, &m).map(|l2| (m, l2.min_removed(l)))
                            }),
                    };
                    let Some((api_ref, life)) = api else { continue };
                    let missing = missing_levels_in(range, life);
                    if missing.is_empty() {
                        continue;
                    }
                    mismatches.push(Mismatch {
                        kind: MismatchKind::ApiInvocation,
                        site: caller.clone(),
                        api: api_ref,
                        api_life: Some(life),
                        missing_levels: missing,
                        context: Some(range),
                        permission: None,
                        via: Vec::new(),
                    });
                }
            }
        }
        report.extend_deduped(mismatches);
        report.duration = start.elapsed();
        report.meter = clvm.meter();
        Some(report)
    }
}

trait MinRemoved {
    fn min_removed(self, other: LifeSpan) -> LifeSpan;
}

impl MinRemoved for LifeSpan {
    // When both the snapshot-resolution and DB views exist, keep the
    // DB's removal information.
    fn min_removed(self, other: LifeSpan) -> LifeSpan {
        LifeSpan {
            since: self.since,
            removed: self.removed.or(other.removed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_adf::well_known;
    use saint_ir::{ApkBuilder, BodyBuilder, ClassBuilder, DexFile};

    fn cid() -> Cid {
        Cid::new(Arc::new(AndroidFramework::curated()))
    }

    fn apk_with_oncreate(min: u8, target: u8, f: impl FnOnce(&mut BodyBuilder)) -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", f)
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(target))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn detects_direct_unguarded_mismatch() {
        let apk = apk_with_oncreate(21, 25, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let r = cid().analyze(&apk).unwrap();
        assert_eq!(r.api_count(), 1);
    }

    #[test]
    fn respects_same_method_guard() {
        let apk = apk_with_oncreate(21, 25, |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
            b.switch_to(then_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        });
        assert!(cid().analyze(&apk).unwrap().is_clean());
    }

    #[test]
    fn cross_method_guard_false_positive() {
        // Caller guards, helper calls: CID flags the helper anyway —
        // the documented false-alarm source (paper §V-A).
        let helper = ClassBuilder::new("p.Helper", ClassOrigin::App)
            .static_method("tint", "()V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
                let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
                b.switch_to(then_blk);
                b.invoke_static(MethodRef::new("p.Helper", "tint", "()V"), &[], None);
                b.goto(join);
                b.switch_to(join);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(25))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .class(helper)
            .unwrap()
            .build();
        let r = cid().analyze(&apk).unwrap();
        assert_eq!(r.api_count(), 1, "CID reports the context-protected call");
    }

    #[test]
    fn misses_deep_framework_path() {
        let apk = apk_with_oncreate(21, 25, |b| {
            b.invoke_virtual(well_known::tint_helper_apply_tint(), &[], None);
            b.ret_void();
        });
        assert!(cid().analyze(&apk).unwrap().is_clean(), "first-level only");
    }

    #[test]
    fn misses_apis_beyond_level_25() {
        let apk = apk_with_oncreate(21, 28, |b| {
            b.invoke_virtual(well_known::create_notification_channel(), &[], None);
            b.ret_void();
        });
        assert!(
            cid().analyze(&apk).unwrap().is_clean(),
            "API 26 is beyond CID's model ceiling"
        );
    }

    #[test]
    fn fails_on_multidex_apps() {
        let mut apk = apk_with_oncreate(21, 25, |b| {
            b.ret_void();
        });
        apk.secondary.push(DexFile::new("assets/extra.dex"));
        assert!(cid().analyze(&apk).is_none());
    }

    #[test]
    fn eager_loading_dominates_meter() {
        let apk = apk_with_oncreate(21, 25, |b| {
            b.ret_void();
        });
        let fw = Arc::new(AndroidFramework::curated());
        let r = Cid::new(Arc::clone(&fw)).analyze(&apk).unwrap();
        // CID loaded essentially the whole framework.
        assert!(r.meter.classes_loaded > fw.class_count() / 2);
    }

    #[test]
    fn capabilities_match_table_iv() {
        let c = cid().capabilities();
        assert!(c.api && !c.apc && !c.prm);
    }
}
