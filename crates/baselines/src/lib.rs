//! # saint-baselines — the compared tools
//!
//! Reimplementations of the three baselines the SAINTDroid paper
//! evaluates against, each built from its published strategy *including
//! its documented blind spots* — the comparison is about strategy
//! (eager vs. lazy loading, modeled vs. mined API knowledge,
//! guard-sensitive vs. not), so the blind spots are the point:
//!
//! | Tool | API | APC | PRM | DSD | Strategy |
//! |------|-----|-----|-----|-----|----------|
//! | [`Cid`] | ✓ | ✗ | ✗ | ✗ | monolithic load, conditional call graph, first framework level only, model ceiling at API 25 |
//! | [`Cider`] | ✗ | ✓ | ✗ | ✗ | hand-built PI-graph callback models of four classes |
//! | [`Lint`] | ✓ | ✗ | ✗ | ✗ | source build + direct-call scan, no control-flow awareness |
//!
//! All three implement [`saintdroid::CompatDetector`], so the
//! experiment harnesses can run the full tool matrix uniformly. No
//! baseline covers the declared-SDK consistency (DSD) family — that
//! column exists only on the DSD-enabled SAINTDroid row, which is the
//! comparative angle the [`harness`] measures: [`harness::compare`]
//! runs the whole matrix against a labeled ground-truth corpus and
//! tallies per-family precision/recall/F1 (the `saintdroid compare`
//! verb and the CI recall floor).
//!
//! ```
//! use std::sync::Arc;
//! use saint_adf::AndroidFramework;
//! use saint_baselines::{all_detectors, Cid};
//! use saintdroid::CompatDetector;
//!
//! let fw = Arc::new(AndroidFramework::curated());
//! let tools = all_detectors(&fw);
//! let names: Vec<&str> = tools.iter().map(|t| t.name()).collect();
//! assert_eq!(names, vec!["SAINTDroid", "CID", "CIDER", "Lint"]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cid;
mod cider;
pub mod harness;
mod lint;

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saintdroid::{CompatDetector, SaintDroid};

pub use cid::{Cid, CID_MAX_LEVEL};
pub use cider::{pi_model, Cider, ModeledCallback, MODELED_CLASSES};
pub use harness::{compare, comparison_detectors, Comparison, FamilyId, FamilyScore, ToolRow};
pub use lint::Lint;

/// The full tool matrix of the paper's evaluation, SAINTDroid first.
#[must_use]
pub fn all_detectors(framework: &Arc<AndroidFramework>) -> Vec<Box<dyn CompatDetector>> {
    vec![
        Box::new(SaintDroid::new(Arc::clone(framework))),
        Box::new(Cid::new(Arc::clone(framework))),
        Box::new(Cider::new(Arc::clone(framework))),
        Box::new(Lint::new(Arc::clone(framework))),
    ]
}
