//! CIDER (Huang et al., "Understanding and detecting callback
//! compatibility issues for Android applications") — reimplemented from
//! its published strategy and the limitations the SAINTDroid paper
//! documents:
//!
//! * detection is driven by **manually built PI-graph models** of
//!   "common compatibility callbacks of only four API classes" —
//!   `Activity`, `Fragment`, `Service` and `WebView` (paper §II-D,
//!   §VII); callbacks on any other class (View, WebViewClient,
//!   BroadcastReceiver, …) are invisible;
//! * the models are compiled from the **Android documentation, which is
//!   known to be incomplete** (paper §VII) — the model below carries a
//!   documentation bug on purpose;
//! * like the other monolithic tools it loads the entire app up front
//!   (paper §III-A: such tools "directly load the entire code base into
//!   memory").
//!
//! CIDER detects only APC issues (paper Table IV row: ✗ ✓ ✗).

use std::sync::Arc;
use std::time::Instant;

use saint_adf::spec::LifeSpan;
use saint_adf::AndroidFramework;
use saint_analysis::{AbsState, Cfg, Clvm, PrimaryDexProvider, SecondaryDexProvider};
use saint_ir::{Apk, ClassName, MethodSig};
use saintdroid::{missing_levels_in, Capabilities, CompatDetector, Mismatch, MismatchKind, Report};

/// One modeled callback in a PI-graph.
#[derive(Debug, Clone)]
pub struct ModeledCallback {
    /// Owning modeled class.
    pub class: &'static str,
    /// Callback name.
    pub name: &'static str,
    /// Callback descriptor.
    pub descriptor: &'static str,
    /// The level the *documentation* says introduced it.
    pub since: u8,
}

/// The four classes CIDER's authors modeled.
pub const MODELED_CLASSES: [&str; 4] = [
    "android.app.Activity",
    "android.app.Fragment",
    "android.app.Service",
    "android.webkit.WebView",
];

/// The hand-built callback model (PI-graphs). Compare with the mined
/// database in `saint-adf`: this list is narrower (four classes only)
/// and carries a deliberate documentation error on `WebView.onPause`
/// (modeled as API 12; the platform shipped it in 11) to reproduce the
/// incomplete-documentation failure mode.
pub fn pi_model() -> Vec<ModeledCallback> {
    macro_rules! cb {
        ($class:expr, $name:expr, $desc:expr, $since:expr) => {
            ModeledCallback {
                class: $class,
                name: $name,
                descriptor: $desc,
                since: $since,
            }
        };
    }
    vec![
        // Activity lifecycle.
        cb!(
            "android.app.Activity",
            "onCreate",
            "(Landroid/os/Bundle;)V",
            2
        ),
        cb!("android.app.Activity", "onStart", "()V", 2),
        cb!("android.app.Activity", "onResume", "()V", 2),
        cb!("android.app.Activity", "onPause", "()V", 2),
        cb!("android.app.Activity", "onStop", "()V", 2),
        cb!("android.app.Activity", "onDestroy", "()V", 2),
        cb!(
            "android.app.Activity",
            "onSaveInstanceState",
            "(Landroid/os/Bundle;)V",
            2
        ),
        cb!("android.app.Activity", "onBackPressed", "()V", 5),
        cb!("android.app.Activity", "onAttachedToWindow", "()V", 5),
        cb!(
            "android.app.Activity",
            "onMultiWindowModeChanged",
            "(Z)V",
            24
        ),
        cb!(
            "android.app.Activity",
            "onPictureInPictureModeChanged",
            "(Z)V",
            24
        ),
        cb!(
            "android.app.Activity",
            "onRequestPermissionsResult",
            "(I[Ljava/lang/String;[I)V",
            23
        ),
        cb!(
            "android.app.Activity",
            "onTopResumedActivityChanged",
            "(Z)V",
            29
        ),
        // Fragment.
        cb!(
            "android.app.Fragment",
            "onAttach",
            "(Landroid/app/Activity;)V",
            11
        ),
        cb!(
            "android.app.Fragment",
            "onAttach",
            "(Landroid/content/Context;)V",
            23
        ),
        cb!(
            "android.app.Fragment",
            "onCreate",
            "(Landroid/os/Bundle;)V",
            11
        ),
        cb!(
            "android.app.Fragment",
            "onViewCreated",
            "(Landroid/view/View;Landroid/os/Bundle;)V",
            13
        ),
        cb!("android.app.Fragment", "onDestroyView", "()V", 11),
        // Service.
        cb!("android.app.Service", "onCreate", "()V", 2),
        cb!(
            "android.app.Service",
            "onStartCommand",
            "(Landroid/content/Intent;II)I",
            5
        ),
        cb!(
            "android.app.Service",
            "onTaskRemoved",
            "(Landroid/content/Intent;)V",
            14
        ),
        cb!("android.app.Service", "onTrimMemory", "(I)V", 14),
        // WebView — with the deliberate documentation bug on onPause.
        cb!("android.webkit.WebView", "onPause", "()V", 12),
        cb!("android.webkit.WebView", "onResume", "()V", 11),
        cb!(
            "android.webkit.WebView",
            "onProvideVirtualStructure",
            "(Landroid/view/ViewStructure;)V",
            23
        ),
    ]
}

/// The CIDER baseline detector.
pub struct Cider {
    framework: Arc<AndroidFramework>,
    model: Vec<ModeledCallback>,
}

impl Cider {
    /// Creates CIDER over a framework model (used only to walk class
    /// hierarchies; detection relies on the hand-built model).
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        Cider {
            framework,
            model: pi_model(),
        }
    }

    fn lookup(&self, class: &str, sig: &MethodSig) -> Option<&ModeledCallback> {
        self.model
            .iter()
            .find(|m| m.class == class && m.name == &*sig.name && m.descriptor == &*sig.descriptor)
    }
}

impl CompatDetector for Cider {
    fn name(&self) -> &'static str {
        "CIDER"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            api: false,
            apc: true,
            prm: false,
            dsd: false,
        }
    }

    fn analyze(&self, apk: &Apk) -> Option<Report> {
        let start = Instant::now();
        let mut report = Report::new(apk.manifest.package.clone(), self.name());
        // Monolithic app loading (no framework code — models replace it).
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(apk)));
        for dex in &apk.secondary {
            clvm.add_provider(Box::new(SecondaryDexProvider::new(dex)));
        }
        clvm.load_everything();
        // CIDER still builds per-method graphs over the whole app.
        for name in clvm.available_class_names() {
            if let Some(class) = clvm.load_class(&name) {
                for m in &class.methods {
                    if let Some(body) = &m.body {
                        let cfg = Cfg::build(body);
                        let abs = AbsState::analyze(body, &cfg);
                        clvm.meter_ref()
                            .record_method(cfg.size_bytes() + abs.size_bytes());
                    }
                }
            }
        }

        let supported = apk.manifest.supported_levels();
        let mut mismatches = Vec::new();
        for class in apk.primary.classes() {
            if class.name.is_anonymous_inner() {
                continue;
            }
            // Walk app-side supers until we leave the package; the
            // first framework name must be one of the four modeled
            // classes for CIDER to say anything.
            let mut cursor: Option<ClassName> = class.super_class.clone();
            let mut modeled: Option<&'static str> = None;
            for _ in 0..32 {
                let Some(name) = cursor else { break };
                if let Some(hit) = MODELED_CLASSES.iter().find(|m| **m == name.as_str()) {
                    modeled = Some(hit);
                    break;
                }
                if name.is_framework_namespace() {
                    break; // some other framework class: not modeled
                }
                cursor = apk.any_class(&name).and_then(|c| c.super_class.clone());
            }
            let Some(modeled_class) = modeled else {
                continue;
            };
            for method in &class.methods {
                if method.flags.is_static || method.name.starts_with('<') {
                    continue;
                }
                let Some(cb) = self.lookup(modeled_class, &method.signature()) else {
                    continue;
                };
                let life = LifeSpan::since(cb.since);
                let missing = missing_levels_in(supported, life);
                if missing.is_empty() {
                    continue;
                }
                mismatches.push(Mismatch {
                    kind: MismatchKind::ApiCallback,
                    site: method.reference(&class.name),
                    api: saint_ir::MethodRef::new(cb.class, cb.name, cb.descriptor),
                    api_life: Some(life),
                    missing_levels: missing,
                    context: Some(supported),
                    permission: None,
                    via: Vec::new(),
                });
            }
        }
        report.extend_deduped(mismatches);
        report.duration = start.elapsed();
        report.meter = clvm.meter();
        // Keep the framework handle alive in the type; CIDER does not
        // load framework code.
        let _ = &self.framework;
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_ir::{ApiLevel, ApkBuilder, ClassBuilder, ClassOrigin};

    fn cider() -> Cider {
        Cider::new(Arc::new(AndroidFramework::curated()))
    }

    fn apk(min: u8, target: u8, classes: Vec<saint_ir::ClassDef>) -> Apk {
        let mut b = ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(target));
        for c in classes {
            b = b.class(c).unwrap();
        }
        b.build()
    }

    #[test]
    fn detects_modeled_fragment_callback() {
        let frag = ClassBuilder::new("p.F", ClassOrigin::App)
            .extends("android.app.Fragment")
            .method("onAttach", "(Landroid/content/Context;)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let r = cider().analyze(&apk(14, 27, vec![frag])).unwrap();
        assert_eq!(r.apc_count(), 1);
    }

    #[test]
    fn misses_view_callbacks_not_modeled() {
        // drawableHotspotChanged (the FOSDEM case): View is not among
        // the four modeled classes.
        let layout = ClassBuilder::new("p.L", ClassOrigin::App)
            .extends("android.widget.LinearLayout")
            .method("drawableHotspotChanged", "(FF)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let r = cider().analyze(&apk(15, 27, vec![layout])).unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn misses_subclass_of_unmodeled_framework_intermediate() {
        // PreferenceActivity → ListActivity → Activity: the first
        // framework ancestor is not a modeled class, so CIDER is blind
        // even though the callback ultimately belongs to Activity.
        let prefs = ClassBuilder::new("p.Prefs", ClassOrigin::App)
            .extends("android.preference.PreferenceActivity")
            .method("onMultiWindowModeChanged", "(Z)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let r = cider().analyze(&apk(21, 27, vec![prefs])).unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn documentation_bug_yields_false_positive() {
        // WebView.onPause shipped in API 11 but CIDER's model says 12:
        // an app with minSdkVersion 11 gets a false alarm.
        let web = ClassBuilder::new("p.W", ClassOrigin::App)
            .extends("android.webkit.WebView")
            .method("onPause", "()V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let r = cider().analyze(&apk(11, 27, vec![web])).unwrap();
        assert_eq!(
            r.apc_count(),
            1,
            "doc-driven model misfires at the boundary"
        );
    }

    #[test]
    fn no_api_invocation_capability() {
        let c = cider().capabilities();
        assert!(!c.api && c.apc && !c.prm);
    }

    #[test]
    fn app_hierarchy_hop_to_modeled_class_followed() {
        let base = ClassBuilder::new("p.Base", ClassOrigin::App)
            .extends("android.app.Activity")
            .build();
        let sub = ClassBuilder::new("p.Sub", ClassOrigin::App)
            .extends("p.Base")
            .method("onMultiWindowModeChanged", "(Z)V", |b| {
                b.ret_void();
            })
            .unwrap()
            .build();
        let r = cider().analyze(&apk(21, 27, vec![base, sub])).unwrap();
        assert_eq!(r.apc_count(), 1);
    }
}
