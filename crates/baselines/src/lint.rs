//! Android Lint's `NewApi`-style check — reimplemented as the
//! SAINTDroid paper characterizes it:
//!
//! * **requires buildable source** (paper §IV-A): apps without source
//!   cannot be analyzed at all (the Table II/III dashes), and the
//!   mandatory build dominates analysis time for larger apps;
//! * **direct calls only, no context or control flow** (paper §V-C:
//!   "its analysis only examines direct calls to the API without
//!   considering the context or control flow") — guards are ignored
//!   entirely, producing the documented false alarms on guarded calls;
//! * **source-module scope**: binary libraries bundled with the app and
//!   late-bound payloads are outside the source tree and unscanned;
//! * **static receiver types only**: calls reaching framework APIs
//!   through app-level subclasses are not attributed to the API.
//!
//! Lint detects only API invocation issues (paper Table IV: ✓ ✗ ✗).

use std::sync::Arc;
use std::time::Instant;

use saint_adf::AndroidFramework;
use saint_analysis::{AbsState, Cfg, Clvm, LoadMeter, PrimaryDexProvider};
use saint_ir::{codec, Apk, ClassOrigin};
use saintdroid::{missing_levels_in, Capabilities, CompatDetector, Mismatch, MismatchKind, Report};

/// How many build passes the simulated Gradle build performs. Each pass
/// re-serializes and re-parses the whole package and rebuilds every
/// method graph — standing in for compilation, which the real Lint
/// cannot skip (the paper ran four Lint builds per app and averaged the
/// last three).
const BUILD_PASSES: usize = 12;

/// The Android Lint baseline detector.
pub struct Lint {
    framework: Arc<AndroidFramework>,
}

impl Lint {
    /// Creates Lint over a framework model (its API database stands in
    /// for the SDK's `api-versions.xml`).
    #[must_use]
    pub fn new(framework: Arc<AndroidFramework>) -> Self {
        Lint { framework }
    }

    /// The simulated build: repeatedly round-trips the package through
    /// the codec and rebuilds all graphs, charging the meter like a
    /// compiler materializing the whole module.
    fn build(&self, apk: &Apk, meter: &mut LoadMeter) {
        for _ in 0..BUILD_PASSES {
            let bytes = codec::encode_apk(apk);
            let rebuilt = codec::decode_apk(&bytes).expect("in-memory apk re-parses");
            for class in rebuilt.primary.classes() {
                meter.record_class(class.size_bytes());
                for m in &class.methods {
                    if let Some(body) = &m.body {
                        let cfg = Cfg::build(body);
                        let abs = AbsState::analyze(body, &cfg);
                        meter.record_method(cfg.size_bytes() + abs.size_bytes());
                    }
                }
            }
        }
    }
}

impl CompatDetector for Lint {
    fn name(&self) -> &'static str {
        "Lint"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            api: true,
            apc: false,
            prm: false,
            dsd: false,
        }
    }

    fn requires_source(&self) -> bool {
        true
    }

    fn analyze(&self, apk: &Apk) -> Option<Report> {
        if !apk.has_source {
            return None; // cannot build: excluded (paper §IV-A)
        }
        let start = Instant::now();
        let mut report = Report::new(apk.manifest.package.clone(), self.name());
        let mut meter = LoadMeter::new();
        self.build(apk, &mut meter);

        // Scan phase: App-origin classes only (the source module);
        // bundled binary libraries and payloads are invisible.
        let mut clvm = Clvm::new();
        clvm.add_provider(Box::new(PrimaryDexProvider::new(apk)));
        let db = self.framework.database();
        let supported = apk.manifest.supported_levels();
        let mut mismatches = Vec::new();
        for class in apk.primary.classes() {
            if !matches!(class.origin, ClassOrigin::App) {
                continue;
            }
            for m in &class.methods {
                let Some(body) = &m.body else { continue };
                for target in body.call_sites() {
                    // Static receiver types only: the written class must
                    // itself be a framework API owner (walking the
                    // framework's own hierarchy mirrors javac's static
                    // type resolution; app subclasses do not resolve).
                    if !db.is_api_class(&target.class) {
                        continue;
                    }
                    let Some((api_ref, life)) = db.resolve(&target.class, &target.signature())
                    else {
                        continue;
                    };
                    // No control-flow awareness: the whole declared
                    // range applies to every call site, guarded or not.
                    let missing = missing_levels_in(supported, life);
                    if missing.is_empty() {
                        continue;
                    }
                    mismatches.push(Mismatch {
                        kind: MismatchKind::ApiInvocation,
                        site: m.reference(&class.name),
                        api: api_ref,
                        api_life: Some(life),
                        missing_levels: missing,
                        context: None,
                        permission: None,
                        via: Vec::new(),
                    });
                }
            }
        }
        report.extend_deduped(mismatches);
        report.duration = start.elapsed();
        report.meter = meter;
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_adf::well_known;
    use saint_ir::{ApiLevel, ApkBuilder, BodyBuilder, ClassBuilder, MethodRef};

    fn lint() -> Lint {
        Lint::new(Arc::new(AndroidFramework::curated()))
    }

    fn apk_with_oncreate(min: u8, f: impl FnOnce(&mut BodyBuilder)) -> Apk {
        let main = ClassBuilder::new("p.Main", ClassOrigin::App)
            .extends("android.app.Activity")
            .method("onCreate", "(Landroid/os/Bundle;)V", f)
            .unwrap()
            .build();
        ApkBuilder::new("p", ApiLevel::new(min), ApiLevel::new(28))
            .activity("p.Main")
            .class(main)
            .unwrap()
            .build()
    }

    #[test]
    fn detects_direct_unguarded_call() {
        let apk = apk_with_oncreate(21, |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        });
        let r = lint().analyze(&apk).unwrap();
        assert_eq!(r.api_count(), 1);
    }

    #[test]
    fn guard_insensitive_false_positive() {
        // The guarded Listing-1 pattern: safe code, but Lint (as the
        // paper characterizes it) has no control-flow awareness.
        let apk = apk_with_oncreate(21, |b| {
            let (then_blk, join) = b.guard_sdk_at_least(ApiLevel::new(23));
            b.switch_to(then_blk);
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.goto(join);
            b.switch_to(join);
            b.ret_void();
        });
        let r = lint().analyze(&apk).unwrap();
        assert_eq!(r.api_count(), 1, "guarded call still flagged");
    }

    #[test]
    fn refuses_apps_without_source() {
        let mut apk = apk_with_oncreate(21, |b| {
            b.ret_void();
        });
        apk.has_source = false;
        assert!(lint().analyze(&apk).is_none());
    }

    #[test]
    fn library_classes_not_scanned() {
        let lib = ClassBuilder::new("libx.Widget", ClassOrigin::Library)
            .method("tint", "()V", |b| {
                b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                b.ret_void();
            })
            .unwrap()
            .build();
        let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
            .class(lib)
            .unwrap()
            .build();
        assert!(lint().analyze(&apk).unwrap().is_clean());
    }

    #[test]
    fn inherited_receiver_not_attributed() {
        // this.getFragmentManager() written against the app subclass:
        // Lint's static-type view does not land on the framework API.
        let apk = apk_with_oncreate(8, |b| {
            b.invoke_virtual(
                MethodRef::new(
                    "p.Main",
                    "getFragmentManager",
                    "()Landroid/app/FragmentManager;",
                ),
                &[],
                None,
            );
            b.ret_void();
        });
        assert!(lint().analyze(&apk).unwrap().is_clean());
    }

    #[test]
    fn no_apc_or_prm() {
        let c = lint().capabilities();
        assert!(c.api && !c.apc && !c.prm);
        assert!(lint().requires_source());
    }

    #[test]
    fn build_cost_scales_with_app_size() {
        let small = apk_with_oncreate(21, |b| {
            b.ret_void();
        });
        let mut big_class = ClassBuilder::new("p.Big", ClassOrigin::App);
        for i in 0..40 {
            big_class = big_class
                .method(format!("m{i}"), "()V", |b| {
                    b.pad(200);
                    b.ret_void();
                })
                .unwrap();
        }
        let big = ApkBuilder::new("p.big", ApiLevel::new(21), ApiLevel::new(28))
            .class(big_class.build())
            .unwrap()
            .build();
        let l = lint();
        let rs = l.analyze(&small).unwrap();
        let rb = l.analyze(&big).unwrap();
        assert!(rb.meter.total_bytes() > rs.meter.total_bytes() * 5);
    }
}
