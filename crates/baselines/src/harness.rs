//! The comparative-analysis harness.
//!
//! Runs every detector of the tool matrix against a labeled
//! ground-truth corpus and tallies per-family precision/recall/F1 —
//! the machinery behind `saintdroid compare` and the CI recall floor.
//! Tools are scored only on the families their
//! [`Capabilities`](saintdroid::Capabilities) row claims (the dashes
//! in the paper's Table II): CID is never penalized for missing a
//! callback defect it does not look for, and only the DSD-enabled
//! SAINTDroid row is scored on the declared-SDK family.

use std::sync::Arc;

use saint_adf::AndroidFramework;
use saint_corpus::{score, Accuracy, BenchApp};
use saintdroid::{Capabilities, CompatDetector, DetectorSet, MismatchKind, SaintDroid};
use serde::Serialize;

use crate::{Cid, Cider, Lint};

/// One scored mismatch family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FamilyId {
    /// API invocation mismatches (paper Algorithm 2).
    Api,
    /// API callback mismatches (paper Algorithm 3).
    Apc,
    /// Permission-induced mismatches (paper Algorithm 4).
    Prm,
    /// Declared-SDK consistency mismatches (DSD overuse/underuse).
    Dsd,
}

impl FamilyId {
    /// Every family, scoring order.
    pub const ALL: [FamilyId; 4] = [FamilyId::Api, FamilyId::Apc, FamilyId::Prm, FamilyId::Dsd];

    /// Display name matching the capability matrix columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FamilyId::Api => "API",
            FamilyId::Apc => "APC",
            FamilyId::Prm => "PRM",
            FamilyId::Dsd => "DSD",
        }
    }

    /// The mismatch kinds this family groups.
    #[must_use]
    pub fn kinds(self) -> &'static [MismatchKind] {
        match self {
            FamilyId::Api => &[MismatchKind::ApiInvocation],
            FamilyId::Apc => &[MismatchKind::ApiCallback],
            FamilyId::Prm => &[
                MismatchKind::PermissionRequest,
                MismatchKind::PermissionRevocation,
            ],
            FamilyId::Dsd => &[MismatchKind::DsdOveruse, MismatchKind::DsdUnderuse],
        }
    }

    /// Whether a tool's capability row claims this family.
    #[must_use]
    pub fn covered_by(self, caps: Capabilities) -> bool {
        match self {
            FamilyId::Api => caps.api,
            FamilyId::Apc => caps.apc,
            FamilyId::Prm => caps.prm,
            FamilyId::Dsd => caps.dsd,
        }
    }
}

impl std::fmt::Display for FamilyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tool's tally on one family, with the derived rates denormalized
/// for the JSON artifact.
#[derive(Debug, Clone, Serialize)]
pub struct FamilyScore {
    /// Family column.
    pub family: FamilyId,
    /// Raw confusion tally over the whole corpus.
    pub accuracy: Accuracy,
    /// `Accuracy::precision`, denormalized.
    pub precision: f64,
    /// `Accuracy::recall`, denormalized.
    pub recall: f64,
    /// `Accuracy::f_measure`, denormalized.
    pub f1: f64,
}

impl FamilyScore {
    fn of(family: FamilyId, accuracy: Accuracy) -> Self {
        FamilyScore {
            family,
            accuracy,
            precision: accuracy.precision(),
            recall: accuracy.recall(),
            f1: accuracy.f_measure(),
        }
    }
}

/// One tool's row of the comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ToolRow {
    /// Tool display name.
    pub tool: String,
    /// Apps the tool could not analyze at all (missing source — the
    /// dashes of the paper's tables). Skipped apps do not count
    /// against recall.
    pub skipped_apps: usize,
    /// Per-family scores, covered families only.
    pub families: Vec<FamilyScore>,
    /// Sum over the covered families.
    pub overall: Accuracy,
}

/// The full comparison artifact (`BENCH_compare.json`).
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// Corpus label (e.g. `planted`, `benchmark`).
    pub corpus: String,
    /// Apps scored.
    pub apps: usize,
    /// One row per tool, SAINTDroid first.
    pub tools: Vec<ToolRow>,
}

impl Comparison {
    /// The row for `tool`, if it ran.
    #[must_use]
    pub fn row(&self, tool: &str) -> Option<&ToolRow> {
        self.tools.iter().find(|r| r.tool == tool)
    }
}

impl std::fmt::Display for Comparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "corpus {} ({} apps)", self.corpus, self.apps)?;
        for row in &self.tools {
            write!(f, "  {:<10}", row.tool)?;
            for fam in &row.families {
                write!(
                    f,
                    " {} P {:.0}% R {:.0}% F1 {:.0}% |",
                    fam.family,
                    fam.precision * 100.0,
                    fam.recall * 100.0,
                    fam.f1 * 100.0
                )?;
            }
            if row.skipped_apps > 0 {
                write!(f, " ({} apps skipped)", row.skipped_apps)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The tool matrix the comparison runs: SAINTDroid with **all four**
/// families enabled (the comparison is where the DSD family earns its
/// keep), then the three baselines as published.
#[must_use]
pub fn comparison_detectors(framework: &Arc<AndroidFramework>) -> Vec<Box<dyn CompatDetector>> {
    vec![
        Box::new(SaintDroid::new(Arc::clone(framework)).with_detectors(DetectorSet::all())),
        Box::new(Cid::new(Arc::clone(framework))),
        Box::new(Cider::new(Arc::clone(framework))),
        Box::new(Lint::new(Arc::clone(framework))),
    ]
}

/// Runs the full tool matrix over `apps` and tallies per-family
/// accuracy. Each tool is scored only on families it claims; apps a
/// tool cannot analyze (source-requiring tools on source-less apps)
/// are counted in `skipped_apps` and excluded from its tallies.
#[must_use]
pub fn compare(
    corpus: impl Into<String>,
    framework: &Arc<AndroidFramework>,
    apps: &[BenchApp],
) -> Comparison {
    let mut tools = Vec::new();
    for tool in comparison_detectors(framework) {
        let caps = tool.capabilities();
        let covered: Vec<FamilyId> = FamilyId::ALL
            .into_iter()
            .filter(|f| f.covered_by(caps))
            .collect();
        let mut tallies = vec![Accuracy::default(); covered.len()];
        let mut skipped = 0usize;
        for app in apps {
            let Some(report) = tool.analyze(&app.apk) else {
                skipped += 1;
                continue;
            };
            for (slot, family) in covered.iter().enumerate() {
                tallies[slot].absorb(score(&report, &app.truth, Some(family.kinds())));
            }
        }
        let mut overall = Accuracy::default();
        for t in &tallies {
            overall.absorb(*t);
        }
        tools.push(ToolRow {
            tool: tool.name().to_string(),
            skipped_apps: skipped,
            families: covered
                .into_iter()
                .zip(tallies)
                .map(|(f, a)| FamilyScore::of(f, a))
                .collect(),
            overall,
        });
    }
    Comparison {
        corpus: corpus.into(),
        apps: apps.len(),
        tools,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saint_corpus::planted_suite;

    fn planted_comparison() -> Comparison {
        let fw = Arc::new(AndroidFramework::curated());
        compare("planted", &fw, &planted_suite())
    }

    #[test]
    fn family_coverage_follows_capabilities() {
        let cmp = planted_comparison();
        let fams = |tool: &str| -> Vec<FamilyId> {
            cmp.row(tool)
                .expect(tool)
                .families
                .iter()
                .map(|f| f.family)
                .collect()
        };
        assert_eq!(
            fams("SAINTDroid"),
            vec![FamilyId::Api, FamilyId::Apc, FamilyId::Prm, FamilyId::Dsd]
        );
        assert_eq!(fams("CID"), vec![FamilyId::Api]);
        assert_eq!(fams("CIDER"), vec![FamilyId::Apc]);
        assert_eq!(fams("Lint"), vec![FamilyId::Api]);
    }

    /// The golden pin: on the planted corpus, the DSD-enabled
    /// SAINTDroid row is exact on every family.
    #[test]
    fn saintdroid_is_exact_on_the_planted_corpus() {
        let cmp = planted_comparison();
        let row = cmp.row("SAINTDroid").expect("row");
        assert_eq!(row.skipped_apps, 0);
        for fam in &row.families {
            assert_eq!(
                (fam.accuracy.fp, fam.accuracy.fn_),
                (0, 0),
                "family {} must be exact, got {}",
                fam.family,
                fam.accuracy
            );
            assert!((fam.f1 - 1.0).abs() < 1e-9, "family {}", fam.family);
        }
        let dsd = row
            .families
            .iter()
            .find(|f| f.family == FamilyId::Dsd)
            .expect("dsd family scored");
        assert_eq!(dsd.accuracy.tp, 3, "all three planted DSD defects");
    }

    /// No baseline can see the DSD family at all — the comparative
    /// angle of the new detector.
    #[test]
    fn baselines_never_score_the_dsd_family() {
        let cmp = planted_comparison();
        for row in &cmp.tools {
            if row.tool != "SAINTDroid" {
                assert!(
                    row.families.iter().all(|f| f.family != FamilyId::Dsd),
                    "{} must not claim DSD",
                    row.tool
                );
            }
        }
    }

    #[test]
    fn comparison_serializes_for_the_artifact() {
        let cmp = planted_comparison();
        let json = serde_json::to_string(&cmp).expect("serialize comparison");
        assert!(json.contains("\"corpus\":\"planted\""));
        assert!(json.contains("\"Dsd\""));
        let text = cmp.to_string();
        assert!(text.contains("SAINTDroid"));
        assert!(text.contains("DSD"));
    }
}
