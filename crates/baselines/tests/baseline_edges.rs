//! Edge-case behavior of the baseline tools beyond their unit tests:
//! the blind spots the paper documents, exercised one by one.

use std::sync::Arc;

use saint_adf::{well_known, AndroidFramework};
use saint_baselines::{all_detectors, Cid, Cider, Lint, CID_MAX_LEVEL};
use saint_ir::{
    ApiLevel, Apk, ApkBuilder, ClassBuilder, ClassOrigin, DexFile, MethodRef, MethodSig,
};
use saintdroid::{CompatDetector, MismatchKind};

fn fw() -> Arc<AndroidFramework> {
    Arc::new(AndroidFramework::curated())
}

#[test]
fn detector_roster_and_capability_disjointness() {
    let tools = all_detectors(&fw());
    assert_eq!(tools.len(), 4);
    // Only SAINTDroid covers everything; every baseline has at least
    // one ✗ (Table IV's point).
    for t in &tools[1..] {
        let c = t.capabilities();
        assert!(
            !(c.api && c.apc && c.prm),
            "{} claims full coverage",
            t.name()
        );
    }
}

#[test]
fn cid_truncates_missing_levels_at_its_ceiling() {
    // App min 21, target 28 calls getColorStateList (23). CID analyzes
    // only up to level 25, so its reported missing set stays within
    // 21..=25 — SAINTDroid's reaches 22.
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    let r = Cid::new(fw()).analyze(&apk).unwrap();
    assert_eq!(r.api_count(), 1);
    for m in &r.mismatches {
        for l in &m.missing_levels {
            assert!(
                *l <= CID_MAX_LEVEL,
                "CID reported level {l} beyond its model"
            );
        }
    }
}

#[test]
fn cider_ignores_anonymous_classes_like_everyone() {
    let anon = ClassBuilder::new("p.Main$1", ClassOrigin::App)
        .extends("android.app.Fragment")
        .method("onAttach", "(Landroid/content/Context;)V", |b| {
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(14), ApiLevel::new(27))
        .class(anon)
        .unwrap()
        .build();
    assert!(Cider::new(fw()).analyze(&apk).unwrap().is_clean());
}

#[test]
fn cider_analyzes_apps_cid_crashes_on() {
    // Multi-dex kills CID but not CIDER (different loaders).
    let frag = ClassBuilder::new("p.F", ClassOrigin::App)
        .extends("android.app.Fragment")
        .method("onAttach", "(Landroid/content/Context;)V", |b| {
            b.ret_void();
        })
        .unwrap()
        .build();
    let mut apk: Apk = ApkBuilder::new("p", ApiLevel::new(14), ApiLevel::new(27))
        .class(frag)
        .unwrap()
        .build();
    apk.secondary.push(DexFile::new("assets/x.dex"));
    assert!(Cid::new(fw()).analyze(&apk).is_none());
    let r = Cider::new(fw()).analyze(&apk).unwrap();
    assert_eq!(r.apc_count(), 1);
}

#[test]
fn lint_ignores_secondary_dex_payloads() {
    let mut payload = DexFile::new("assets/plugin.dex");
    payload
        .add_class(
            ClassBuilder::new("plug.P", ClassOrigin::DynamicPayload)
                .method("go", "()V", |b| {
                    b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
                    b.ret_void();
                })
                .unwrap()
                .build(),
        )
        .unwrap();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .secondary_dex(payload)
        .build();
    assert!(Lint::new(fw()).analyze(&apk).unwrap().is_clean());
}

#[test]
fn lint_reports_without_context_ranges() {
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::context_get_color_state_list(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(21), ApiLevel::new(28))
        .class(main)
        .unwrap()
        .build();
    let r = Lint::new(fw()).analyze(&apk).unwrap();
    assert_eq!(r.api_count(), 1);
    // Flow-insensitive: no context interval attached.
    assert!(r.mismatches[0].context.is_none());
}

#[test]
fn baselines_agree_with_saintdroid_on_the_trivial_case() {
    // A plain unguarded direct call in app code is the one scenario
    // every API-capable tool catches identically.
    let main = ClassBuilder::new("p.Main", ClassOrigin::App)
        .extends("android.app.Activity")
        .method("onCreate", "(Landroid/os/Bundle;)V", |b| {
            b.invoke_virtual(well_known::context_get_drawable(), &[], None);
            b.ret_void();
        })
        .unwrap()
        .build();
    let apk = ApkBuilder::new("p", ApiLevel::new(19), ApiLevel::new(25))
        .class(main)
        .unwrap()
        .build();
    for tool in all_detectors(&fw()) {
        if !tool.capabilities().api {
            continue;
        }
        let r = tool.analyze(&apk).unwrap();
        assert_eq!(r.api_count(), 1, "{} missed the trivial case", tool.name());
        let m = r.of_kind(MismatchKind::ApiInvocation).next().unwrap();
        assert_eq!(
            m.api.signature(),
            MethodSig::new("getDrawable", "(I)Landroid/graphics/drawable/Drawable;")
        );
        assert_eq!(
            m.site,
            MethodRef::new("p.Main", "onCreate", "(Landroid/os/Bundle;)V")
        );
    }
}
