//! Root reproduction package: hosts the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`). See the member
//! crates for the actual library surface.
